"""Incremental pipelined query operators — the unified execution stack.

The paper's engine evaluates queries *while* traversal is still adding
triples: "the actual query processing happens in parallel over the
continuously growing internal triple source", with "pipelined
implementations of all monotonic SPARQL operators".  This module provides
exactly that, plus incremental physical forms of the *non-monotonic*
operators, so every query — OPTIONAL, MINUS, ORDER BY, GROUP BY, EXISTS,
DESCRIBE included — compiles into one operator tree that consumes *deltas*
(batches of newly added quads) during traversal.

Monotonic operators emit every new solution immediately:

* :class:`ScanNode` — matches delta quads against a triple pattern.
* :class:`PathScanNode` — property paths; re-evaluates the path over the
  grown snapshot per delta and emits unseen endpoint pairs.
* :class:`JoinNode` — symmetric hash join: each side keeps a table of all
  bindings seen; new left bindings probe the right table and vice versa.
* Union / Filter / Extend / Project / Distinct / Limit — straightforward
  streaming forms.
* :class:`DescribeNode` — DESCRIBE is monotonic: concise bounded
  descriptions only grow, so CBD triples stream as roots are discovered.

Non-monotonic operators are *blocking*: they fold deltas into per-operator
state during traversal and release their held-back output in a single
O(result) ``finalize`` pass at traversal quiescence — no snapshot
re-evaluation:

* :class:`LeftJoinNode` — OPTIONAL; matched merges stream (they stay
  valid), bare unmatched lefts wait for finalize.
* :class:`MinusNode` — incremental anti-join; exclusion flags update per
  delta, survivors emit at finalize.
* :class:`ExistsFilterNode` — (NOT) EXISTS filters; positive EXISTS under
  conjunction/disjunction emits eagerly (it is monotone-true), everything
  else defers the decision to finalize.
* :class:`GroupAggregateNode` — running :class:`AggregateState` per group
  key; finalize evaluates output expressions from the states.
* :class:`OrderSliceNode` — ORDER BY (+ OFFSET/LIMIT); with a LIMIT it
  keeps only a top-k heap during traversal.

The *blocking boundary* (see :func:`repro.sparql.planner.blocking_boundary`)
is where streaming stops: below it, deltas flow and results reach the user
mid-traversal; on and above it, ``Pipeline.finalize`` flushes at
quiescence.  A plan with no blocking nodes behaves exactly as before.

Delta dispatch is *predicate-routed*: at compile time every scan registers
its concrete predicate with the pipeline's :class:`DeltaRouter`; each
``advance`` buckets the incoming quads once by predicate
(:class:`DeltaBatch`) and every scan then reads only its own bucket —
wildcard-predicate scans get the full delta.

EXISTS inside expressions is evaluated against the *current* growing
dataset through :class:`CurrentDatasetExists`, which lends the snapshot
evaluator's pattern matcher to the expression evaluator without copying
any data (the dataset grows in place).

:class:`NotStreamable` survives only as a safety net for algebra operators
with no physical implementation; no SPARQL form produced by the parser
triggers it.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Optional, Sequence, Union as TypingUnion

from ..rdf.dataset import Dataset
from ..rdf.terms import BlankNode, Literal, NamedNode, Term, Variable
from ..rdf.triples import Quad, Triple, TriplePattern
from ..sparql.aggregates import (
    AggregateState,
    collect_aggregates,
    compute_aggregates,
    evaluate_having,
    evaluate_with_states,
    group_solutions,
    having_with_states,
)
from ..sparql.algebra import (
    BGP,
    AggregateExpr,
    And,
    Arithmetic,
    Compare,
    Distinct,
    ExistsExpr,
    Extend,
    Filter,
    FunctionCall,
    GraphOp,
    GroupBy,
    InExpr,
    Join,
    LeftJoin,
    Minus,
    Not,
    Operator,
    Or,
    OrderBy,
    OrderCondition,
    PathPattern,
    Project,
    Query,
    Reduced,
    Slice,
    SubSelect,
    UnaryMinus,
    UnaryPlus,
    Union,
    ValuesOp,
    VariableExpr,
    expression_contains_exists,
    operator_children,
    operator_variables,
)
from ..sparql.bindings import EMPTY_BINDING, Binding
from ..sparql.eval import SnapshotEvaluator, order_sort_key
from ..sparql.expr import ExpressionError, ExpressionEvaluator
from ..sparql.paths import evaluate_path, path_predicates
from ..sparql.planner import plan_bgp_order

__all__ = [
    "NotStreamable",
    "IncrementalNode",
    "DeltaRouter",
    "DeltaBatch",
    "CurrentDatasetExists",
    "LeftJoinNode",
    "MinusNode",
    "ExistsFilterNode",
    "GroupAggregateNode",
    "OrderSliceNode",
    "DescribeNode",
    "Pipeline",
    "compile_pipeline",
    "compile_query_pipeline",
    "total_work",
]


class NotStreamable(ValueError):
    """The operator tree contains an operator with no physical form.

    Every SPARQL operator the parser produces compiles; this remains only
    as a guard against future algebra additions outpacing the compiler.
    """


_EMPTY_QUADS: tuple[Quad, ...] = ()


class DeltaBatch:
    """One advance's worth of quads, bucketed by predicate at most once.

    Scans with a concrete predicate read only their bucket via
    :meth:`for_predicate`; wildcard scans iterate :attr:`quads` directly.
    Buckets are built lazily (a delta that reaches no predicate-routed scan
    never pays for bucketing) and cover only the predicates the router has
    registered — everything else in the delta is noise to this pipeline.
    Iterable and sized, so code written against ``Sequence[Quad]`` deltas
    keeps working.

    Batches carry a *polarity*: ``sign`` is ``+1`` for insertions (the
    only kind traversal produces) and ``-1`` for retractions (live
    refreshes of changed documents).  All quads in one batch share the
    sign — the dataset's signed log is dispatched as maximal same-sign
    runs (:meth:`repro.rdf.dataset.Dataset.signed_runs`).
    """

    __slots__ = ("quads", "sign", "_routed", "_buckets")

    def __init__(
        self,
        quads: Sequence[Quad],
        routed_predicates: Optional[frozenset] = None,
        sign: int = 1,
    ) -> None:
        self.quads = quads
        self.sign = sign
        self._routed = routed_predicates
        self._buckets: Optional[dict] = None

    def __len__(self) -> int:
        return len(self.quads)

    def __iter__(self) -> Iterator[Quad]:
        return iter(self.quads)

    def __bool__(self) -> bool:
        return bool(self.quads)

    def for_predicate(self, predicate: Term) -> Sequence[Quad]:
        """The delta quads carrying ``predicate`` (empty when none do)."""
        buckets = self._buckets
        if buckets is None:
            buckets = self._build_buckets()
        return buckets.get(predicate, _EMPTY_QUADS)

    def _build_buckets(self) -> dict:
        routed = self._routed
        buckets: dict = {}
        for quad in self.quads:
            predicate = quad.predicate
            if routed is not None and predicate not in routed:
                continue
            bucket = buckets.get(predicate)
            if bucket is None:
                buckets[predicate] = bucket = []
            bucket.append(quad)
        self._buckets = buckets
        return buckets


class DeltaRouter:
    """Compile-time registry of the (predicate, graph) keys scans listen on.

    The router lives at the :class:`Pipeline` root.  Scans register
    themselves while the pipeline is built (and re-register automatically
    when the adaptive engine recompiles, because recompiling constructs a
    fresh ``Pipeline`` and therefore a fresh router).  Per advance it wraps
    the raw delta in a :class:`DeltaBatch` restricted to the registered
    predicates.
    """

    __slots__ = ("_predicates", "_wildcard_listeners", "_frozen")

    def __init__(self) -> None:
        self._predicates: set = set()
        self._wildcard_listeners = 0
        self._frozen: Optional[frozenset] = None

    def register(self, predicate: Optional[Term]) -> None:
        """Declare a listener; ``None`` means wildcard (gets every quad)."""
        if predicate is None:
            self._wildcard_listeners += 1
        else:
            self._predicates.add(predicate)
        self._frozen = None

    @property
    def predicates(self) -> frozenset:
        """The concrete predicates any scan listens on."""
        if self._frozen is None:
            self._frozen = frozenset(self._predicates)
        return self._frozen

    @property
    def wildcard_listeners(self) -> int:
        return self._wildcard_listeners

    def batch(self, quads: Sequence[Quad], sign: int = 1) -> DeltaBatch:
        """Wrap one advance's delta for routed dispatch."""
        return DeltaBatch(quads, self.predicates, sign=sign)


Delta = TypingUnion[Sequence[Quad], DeltaBatch]

#: The live-maintenance currency: ``(binding, count)`` where ``count`` is a
#: non-zero signed multiplicity change — ``+n`` adds *n* occurrences of the
#: binding to a node's output multiset, ``-n`` removes *n*.
Change = tuple[Binding, int]


def _diff_multisets(
    old: dict[Binding, int], new: dict[Binding, int]
) -> list[Change]:
    """The signed changes turning multiset ``old`` into ``new``."""
    changes: list[Change] = []
    for binding, count in old.items():
        delta = new.get(binding, 0) - count
        if delta:
            changes.append((binding, delta))
    for binding, count in new.items():
        if count and binding not in old:
            changes.append((binding, count))
    return changes


def _bump(multiset: dict[Binding, int], binding: Binding, count: int) -> int:
    """Adjust one multiset entry; returns the new total (0 = removed)."""
    total = multiset.get(binding, 0) + count
    if total:
        multiset[binding] = total
    else:
        multiset.pop(binding, None)
    return total


class CurrentDatasetExists:
    """EXISTS scope for the growing dataset.

    The pipeline's expression evaluator needs to answer ``EXISTS { … }``
    against whatever the traversal has discovered *so far* (and, at
    finalize, against the complete snapshot).  This binder lends a
    :class:`SnapshotEvaluator` over the live dataset: the dataset grows in
    place and its union graph is maintained incrementally, so one evaluator
    stays valid for the whole execution — ``bind`` only rebuilds it when
    pointed at a different dataset object.
    """

    __slots__ = ("_dataset", "_evaluator")

    def __init__(self) -> None:
        self._dataset: Optional[Dataset] = None
        self._evaluator: Optional[SnapshotEvaluator] = None

    def bind(self, dataset: Dataset) -> None:
        if dataset is not self._dataset:
            self._dataset = dataset
            self._evaluator = SnapshotEvaluator(dataset)

    def __call__(self, pattern: Operator, binding: Binding) -> bool:
        evaluator = self._evaluator
        if evaluator is None:
            raise ExpressionError("EXISTS evaluated before any data arrived")
        return evaluator.exists(pattern, binding)


class IncrementalNode:
    """Base class: push-based delta processing with a finalize phase.

    ``certain_variables`` are bound in every emitted solution — the safe
    hash-key basis for joins above this node.  ``blocking`` marks nodes
    that hold (part of) their output until :meth:`finalize`; the default
    finalize just closes out children (leaves have nothing held back —
    the pipeline cursor guarantees every quad was already processed).
    """

    #: Class-level default; blocking physical nodes override it.
    blocking = False

    def __init__(self, certain_variables: frozenset[Variable]) -> None:
        self.certain_variables = certain_variables
        self.produced_total = 0

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        """Consume newly added quads; return newly derivable solutions."""
        raise NotImplementedError

    def finalize(self, dataset: Dataset) -> list[Binding]:
        """Release held-back solutions at traversal quiescence."""
        return []

    def prepare_live(self, dataset: Dataset) -> None:
        """Build post-quiescence state for signed maintenance (:meth:`apply`).

        Called once by :meth:`Pipeline.prepare_live` after :meth:`finalize`
        on a live-compiled pipeline.  The default is a no-op — most nodes
        either retain everything :meth:`apply` needs during traversal or
        are stateless transforms.
        """

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        """Maintain this node's output under one *signed* delta batch.

        Only legal after :meth:`finalize` on a live pipeline (see
        :meth:`Pipeline.poll_changes`).  Returns the signed changes to this
        node's output multiset; unlike :meth:`process` the result can
        carry retractions, so consumers must handle both polarities.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support signed maintenance"
        )

    def register(self, router: DeltaRouter) -> None:
        """Declare this subtree's delta interests to the router."""
        for child in self.children():
            child.register(router)

    def _count(self, produced: list[Binding]) -> list[Binding]:
        self.produced_total += len(produced)
        return produced

    def children(self) -> tuple["IncrementalNode", ...]:
        return ()


class ScanNode(IncrementalNode):
    """A triple-pattern leaf fed directly by the delta stream.

    The pattern is decomposed at construction into per-slot checks: concrete
    terms to compare (``_s``/``_p``/``_o``), variable slots to bind, and any
    repeated-variable position pairs — no per-quad ``zip``/``isinstance``
    walk over the pattern.
    """

    _GETTERS = (
        lambda quad: quad.subject,
        lambda quad: quad.predicate,
        lambda quad: quad.object,
    )

    def __init__(self, pattern: TriplePattern, graph: Optional[Term] = None) -> None:
        variables = pattern.variables()
        if isinstance(graph, Variable):
            variables = variables | {graph}
        super().__init__(frozenset(variables))
        self._pattern = pattern
        self._graph = graph
        #: Binding → number of matching quads (cross-graph duplicates give
        #: multiplicity > 1).  Doubles as the dedup set during traversal
        #: and as the support count signed retraction decrements: a
        #: binding leaves the output only when its last supporting quad
        #: does.
        self._support: dict[Binding, int] = {}

        # Precomputed slot checks.
        def concrete(term: Optional[Term]) -> Optional[Term]:
            return term if term is not None and not isinstance(term, Variable) else None

        self._s = concrete(pattern.subject)
        self._p = concrete(pattern.predicate)
        self._o = concrete(pattern.object)
        self._var_slots: tuple[tuple[Variable, object], ...] = tuple(
            (term, self._GETTERS[position])
            for position, term in enumerate(pattern)
            if isinstance(term, Variable)
        )
        self._graph_concrete = (
            graph if graph is not None and not isinstance(graph, Variable) else None
        )
        self._graph_variable = graph if isinstance(graph, Variable) else None

    def register(self, router: DeltaRouter) -> None:
        router.register(self._p)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if isinstance(delta, DeltaBatch):
            quads = delta.for_predicate(self._p) if self._p is not None else delta.quads
        else:
            quads = delta
        if not quads:
            return []
        produced: list[Binding] = []
        support = self._support
        graph_term = self._graph_concrete
        for quad in quads:
            if graph_term is not None and quad.graph != graph_term:
                continue
            binding = self._match(quad)
            if binding is not None:
                count = support.get(binding, 0)
                support[binding] = count + 1
                if count == 0:
                    produced.append(binding)
        return self._count(produced)

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        if isinstance(delta, DeltaBatch):
            quads = delta.for_predicate(self._p) if self._p is not None else delta.quads
            sign = delta.sign
        else:
            quads, sign = delta, 1
        if not quads:
            return []
        changes: list[Change] = []
        support = self._support
        graph_term = self._graph_concrete
        for quad in quads:
            if graph_term is not None and quad.graph != graph_term:
                continue
            binding = self._match(quad)
            if binding is None:
                continue
            if sign > 0:
                count = support.get(binding, 0)
                support[binding] = count + 1
                if count == 0:
                    changes.append((binding, 1))
            else:
                count = support[binding]
                if count == 1:
                    del support[binding]
                    changes.append((binding, -1))
                else:
                    support[binding] = count - 1
        return changes

    def _match(self, quad: Quad) -> Optional[Binding]:
        if self._s is not None and quad.subject != self._s:
            return None
        if self._p is not None and quad.predicate != self._p:
            return None
        if self._o is not None and quad.object != self._o:
            return None
        items: dict[Variable, Term] = {}
        for variable, getter in self._var_slots:
            term = getter(quad)
            bound = items.get(variable)
            if bound is None:
                items[variable] = term
            elif bound != term:
                return None
        graph_variable = self._graph_variable
        if graph_variable is not None:
            if quad.graph is None:
                return None
            items[graph_variable] = quad.graph
        return Binding._adopt(items)


class PathScanNode(IncrementalNode):
    """A property-path leaf, re-evaluated over the grown snapshot per delta."""

    def __init__(self, pattern: PathPattern, graph: Optional[Term] = None) -> None:
        super().__init__(frozenset(pattern.variables()))
        self._pattern = pattern
        self._graph = graph if isinstance(graph, NamedNode) else None
        self._relevant = path_predicates(pattern.path)
        self._negated = _is_negated(pattern.path)
        self._emitted: set[tuple[Term, Term]] = set()

    def register(self, router: DeltaRouter) -> None:
        if self._negated or not self._relevant:
            router.register(None)  # negated sets can match any predicate
        else:
            for predicate in self._relevant:
                router.register(predicate)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if isinstance(delta, DeltaBatch):
            if not delta.quads:
                return []
            if not self._negated and not any(
                delta.for_predicate(predicate) for predicate in self._relevant
            ):
                return []
        elif not self._delta_relevant(delta):
            return []
        graph = dataset.union if self._graph is None else dataset.graph(self._graph)
        produced: list[Binding] = []
        subject = self._pattern.subject
        object_term = self._pattern.object
        for start, end in evaluate_path(graph, subject, self._pattern.path, object_term):
            pair = (start, end)
            if pair in self._emitted:
                continue
            self._emitted.add(pair)
            binding = self._pair_binding(start, end)
            if binding is not None:
                produced.append(binding)
        return self._count(produced)

    def _pair_binding(self, start: Term, end: Term) -> Optional[Binding]:
        subject = self._pattern.subject
        object_term = self._pattern.object
        items: dict[Variable, Term] = {}
        if isinstance(subject, Variable):
            items[subject] = start
        if isinstance(object_term, Variable):
            if object_term in items and items[object_term] != end:
                return None
            items[object_term] = end
        return Binding(items)

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        # Property paths are not incrementally maintainable in general (a
        # retracted edge can sever arbitrarily many derived pairs), so the
        # path is re-evaluated over the current snapshot and the endpoint
        # pairs diffed against what was previously emitted.
        if isinstance(delta, DeltaBatch):
            if not delta.quads:
                return []
            if not self._negated and not any(
                delta.for_predicate(predicate) for predicate in self._relevant
            ):
                return []
        elif not self._delta_relevant(delta):
            return []
        graph = dataset.union if self._graph is None else dataset.graph(self._graph)
        current = set(
            evaluate_path(graph, self._pattern.subject, self._pattern.path, self._pattern.object)
        )
        changes: list[Change] = []
        for pair in sorted(self._emitted - current, key=repr):
            binding = self._pair_binding(*pair)
            if binding is not None:
                changes.append((binding, -1))
        for pair in sorted(current - self._emitted, key=repr):
            binding = self._pair_binding(*pair)
            if binding is not None:
                changes.append((binding, 1))
        self._emitted = current
        return changes

    def _delta_relevant(self, delta: Sequence[Quad]) -> bool:
        if self._negated:
            return bool(delta)  # negated sets can match any predicate
        for quad in delta:
            if quad.predicate in self._relevant:
                return True
        return False


def _is_negated(path) -> bool:
    from ..sparql.algebra import (
        AlternativePath,
        InversePath,
        NegatedPropertySet,
        OneOrMorePath,
        SequencePath,
        ZeroOrMorePath,
        ZeroOrOnePath,
    )

    if isinstance(path, NegatedPropertySet):
        return True
    if isinstance(path, (InversePath, ZeroOrMorePath, OneOrMorePath, ZeroOrOnePath)):
        return _is_negated(path.path)
    if isinstance(path, SequencePath):
        return any(_is_negated(step) for step in path.steps)
    if isinstance(path, AlternativePath):
        return any(_is_negated(option) for option in path.options)
    return False


class ValuesNode(IncrementalNode):
    """Inline data: emits its rows exactly once, on the first delta.

    A traversal that discovers nothing never delivers a delta, so
    :meth:`finalize` emits the rows as a backstop.
    """

    def __init__(self, op: ValuesOp) -> None:
        certain = frozenset(
            variable
            for index, variable in enumerate(op.variables)
            if all(row[index] is not None for row in op.rows)
        )
        super().__init__(certain)
        self._rows = [
            Binding({v: t for v, t in zip(op.variables, row) if t is not None})
            for row in op.rows
        ]
        self._emitted = False

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if self._emitted:
            return []
        self._emitted = True
        return self._count(list(self._rows))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        if self._emitted:
            return []
        self._emitted = True
        return self._count(list(self._rows))

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        return []  # inline data never changes


class JoinNode(IncrementalNode):
    """Symmetric hash join on the certainly-bound shared variables."""

    #: Class-level default: tracing is off unless a Pipeline with an
    #: enabled tracer installs an instance attribute (zero hot-path cost
    #: beyond one identity check).
    _tracer = None

    def __init__(self, left: IncrementalNode, right: IncrementalNode) -> None:
        super().__init__(left.certain_variables | right.certain_variables)
        self._left = left
        self._right = right
        self._key_variables = tuple(
            sorted(left.certain_variables & right.certain_variables, key=lambda v: v.value)
        )
        self._left_table: dict[tuple, list[Binding]] = {}
        self._right_table: dict[tuple, list[Binding]] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        tracer = self._tracer
        if tracer is None:
            return self._process(delta, dataset)
        with tracer.span(
            "join", key=" ".join(v.value for v in self._key_variables)
        ) as span:
            produced = self._process(delta, dataset)
            span.args["produced"] = len(produced)
        return produced

    def _process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(
            self._consume(
                self._left.process(delta, dataset), self._right.process(delta, dataset)
            )
        )

    def finalize(self, dataset: Dataset) -> list[Binding]:
        # Blocking children may release rows at quiescence; join them against
        # everything seen so far exactly like a late delta.
        return self._count(
            self._consume(self._left.finalize(dataset), self._right.finalize(dataset))
        )

    def _consume(self, new_left: list[Binding], new_right: list[Binding]) -> list[Binding]:
        produced: list[Binding] = []

        # New left rows join the right table as it stood before this delta…
        for binding in new_left:
            key = binding.key(self._key_variables)
            for other in self._right_table.get(key, ()):
                merged = binding.merged(other)
                if merged is not None:
                    produced.append(merged)
        for binding in new_left:
            self._left_table.setdefault(binding.key(self._key_variables), []).append(binding)

        # …and new right rows join the left table *including* this delta's
        # left rows, so each new-new pair is produced exactly once.
        for binding in new_right:
            key = binding.key(self._key_variables)
            for other in self._left_table.get(key, ()):
                merged = other.merged(binding)
                if merged is not None:
                    produced.append(merged)
        for binding in new_right:
            self._right_table.setdefault(binding.key(self._key_variables), []).append(binding)
        return produced

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        # Signed symmetric hash join: each change probes the *current*
        # other-side table, then lands in its own — processing changes one
        # at a time keeps the exactly-once algebra (ΔL ⋈ R, then L' ⋈ ΔR)
        # correct even when one batch mixes polarities.
        left_changes = self._left.apply(delta, dataset)
        right_changes = self._right.apply(delta, dataset)
        if not left_changes and not right_changes:
            return []
        changes: list[Change] = []
        key_variables = self._key_variables
        for binding, count in left_changes:
            key = binding.key(key_variables)
            for other in self._right_table.get(key, ()):
                merged = binding.merged(other)
                if merged is not None:
                    changes.append((merged, count))
            self._update_table(self._left_table, key, binding, count)
        for binding, count in right_changes:
            key = binding.key(key_variables)
            for other in self._left_table.get(key, ()):
                merged = other.merged(binding)
                if merged is not None:
                    changes.append((merged, count))
            self._update_table(self._right_table, key, binding, count)
        return changes

    @staticmethod
    def _update_table(
        table: dict[tuple, list[Binding]], key: tuple, binding: Binding, count: int
    ) -> None:
        if count > 0:
            table.setdefault(key, []).extend([binding] * count)
            return
        bucket = table[key]
        for _ in range(-count):
            bucket.remove(binding)
        if not bucket:
            del table[key]

    def children(self):
        return (self._left, self._right)


class UnionNode(IncrementalNode):
    def __init__(self, left: IncrementalNode, right: IncrementalNode) -> None:
        super().__init__(left.certain_variables & right.certain_variables)
        self._left = left
        self._right = right

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(self._left.process(delta, dataset) + self._right.process(delta, dataset))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        return self._count(self._left.finalize(dataset) + self._right.finalize(dataset))

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        return self._left.apply(delta, dataset) + self._right.apply(delta, dataset)

    def children(self):
        return (self._left, self._right)


class FilterNode(IncrementalNode):
    """EXISTS-free FILTER; EXISTS filters compile to :class:`ExistsFilterNode`."""

    def __init__(self, input_node: IncrementalNode, expression, evaluator: ExpressionEvaluator) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._expression = expression
        self._evaluator = evaluator

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(self._apply(self._input.process(delta, dataset)))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        return self._count(self._apply(self._input.finalize(dataset)))

    def _apply(self, bindings: list[Binding]) -> list[Binding]:
        return [
            binding
            for binding in bindings
            if self._evaluator.satisfied(self._expression, binding)
        ]

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        # EXISTS-free, so the verdict depends only on the binding: a
        # retraction filters exactly as its original insertion did.
        return [
            (binding, count)
            for binding, count in self._input.apply(delta, dataset)
            if self._evaluator.satisfied(self._expression, binding)
        ]

    def children(self):
        return (self._input,)


class ExistsFilterNode(IncrementalNode):
    """FILTER whose expression contains (NOT) EXISTS.

    A positive ``EXISTS`` is monotone-true over a growing dataset: once a
    binding passes, it passes forever.  When every EXISTS in the expression
    is non-negated and reached only through AND/OR, bindings that pass are
    emitted immediately and the rest wait in a pending set, retested when a
    delta touches the EXISTS pattern's predicates and finally at
    quiescence.  ``NOT EXISTS`` (or EXISTS under negation) can flip from
    true to false as data arrives, so those filters defer every decision to
    :meth:`finalize`.
    """

    blocking = True

    def __init__(self, input_node: IncrementalNode, expression, evaluator: ExpressionEvaluator) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._expression = expression
        self._evaluator = evaluator
        self._eager = _exists_eagerly_emittable(expression)
        self._exists_predicates = _exists_pattern_predicates(expression)
        self._pending: list[Binding] = []
        #: Every input binding ever seen, kept past finalize: the live
        #: maintenance base (EXISTS verdicts are dataset-dependent, so a
        #: relevant delta re-tests the full candidate multiset).
        self._candidates: dict[Binding, int] = {}
        self._live_passing: dict[Binding, int] = {}

    def register(self, router: DeltaRouter) -> None:
        super().register(router)
        # The EXISTS pattern's predicates matter even when no scan wants
        # them: a delta carrying one can flip pending bindings to passing.
        if self._exists_predicates is None:
            router.register(None)
        else:
            for predicate in self._exists_predicates:
                router.register(predicate)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        new = self._input.process(delta, dataset)
        for binding in new:
            self._candidates[binding] = self._candidates.get(binding, 0) + 1
        if not self._eager:
            self._pending.extend(new)
            return []
        produced: list[Binding] = []
        if self._pending and self._delta_relevant(delta):
            still_pending: list[Binding] = []
            for binding in self._pending:
                if self._evaluator.satisfied(self._expression, binding):
                    produced.append(binding)
                else:
                    still_pending.append(binding)
            self._pending = still_pending
        for binding in new:
            if self._evaluator.satisfied(self._expression, binding):
                produced.append(binding)
            else:
                self._pending.append(binding)
        return self._count(produced)

    def finalize(self, dataset: Dataset) -> list[Binding]:
        finals = self._input.finalize(dataset)
        for binding in finals:
            self._candidates[binding] = self._candidates.get(binding, 0) + 1
        candidates = self._pending + finals
        self._pending = []
        return self._count(
            [
                binding
                for binding in candidates
                if self._evaluator.satisfied(self._expression, binding)
            ]
        )

    def prepare_live(self, dataset: Dataset) -> None:
        self._live_passing = {
            binding: count
            for binding, count in self._candidates.items()
            if self._evaluator.satisfied(self._expression, binding)
        }

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        input_changes = self._input.apply(delta, dataset)
        candidates = self._candidates
        for binding, count in input_changes:
            total = candidates.get(binding, 0) + count
            if total:
                candidates[binding] = total
            else:
                candidates.pop(binding, None)
        if self._delta_relevant(delta):
            # A quad the EXISTS pattern can match (dis)appeared: any
            # candidate's verdict may have flipped — re-test them all and
            # diff against the previously passing multiset.
            new_passing = {
                binding: count
                for binding, count in candidates.items()
                if self._evaluator.satisfied(self._expression, binding)
            }
            changes = _diff_multisets(self._live_passing, new_passing)
            self._live_passing = new_passing
            return changes
        # Verdicts of existing candidates are stable; only the input
        # changes themselves need testing.
        changes: list[Change] = []
        passing = self._live_passing
        for binding, count in input_changes:
            if not self._evaluator.satisfied(self._expression, binding):
                continue
            changes.append((binding, count))
            total = passing.get(binding, 0) + count
            if total:
                passing[binding] = total
            else:
                passing.pop(binding, None)
        return changes

    def _delta_relevant(self, delta: Delta) -> bool:
        if not delta:
            return False
        predicates = self._exists_predicates
        if predicates is None:
            return True
        if isinstance(delta, DeltaBatch):
            return any(delta.for_predicate(predicate) for predicate in predicates)
        return any(quad.predicate in predicates for quad in delta)

    def children(self):
        return (self._input,)


def _exists_eagerly_emittable(expression) -> bool:
    """True when a pass decision is stable as the dataset grows."""
    if not expression_contains_exists(expression):
        return True  # dataset-independent subexpression
    if isinstance(expression, ExistsExpr):
        return not expression.negated
    if isinstance(expression, (And, Or)):
        return _exists_eagerly_emittable(expression.left) and _exists_eagerly_emittable(
            expression.right
        )
    return False


def _collect_exists_patterns(expression, found: list) -> None:
    if isinstance(expression, ExistsExpr):
        found.append(expression.pattern)
    elif isinstance(expression, (And, Or, Compare, Arithmetic)):
        _collect_exists_patterns(expression.left, found)
        _collect_exists_patterns(expression.right, found)
    elif isinstance(expression, (Not, UnaryMinus, UnaryPlus)):
        _collect_exists_patterns(expression.operand, found)
    elif isinstance(expression, FunctionCall):
        for argument in expression.args:
            _collect_exists_patterns(argument, found)
    elif isinstance(expression, InExpr):
        _collect_exists_patterns(expression.operand, found)
        for choice in expression.choices:
            _collect_exists_patterns(choice, found)


def _exists_pattern_predicates(expression) -> Optional[frozenset]:
    """Concrete predicates the EXISTS patterns can match; None = wildcard."""
    patterns: list[Operator] = []
    _collect_exists_patterns(expression, patterns)
    predicates: set = set()
    stack = list(patterns)
    while stack:
        op = stack.pop()
        if isinstance(op, BGP):
            for pattern in op.patterns:
                predicate = pattern.predicate
                if predicate is None or isinstance(predicate, Variable):
                    return None
                predicates.add(predicate)
            for path in op.path_patterns:
                if _is_negated(path.path):
                    return None
                relevant = path_predicates(path.path)
                if not relevant:
                    return None
                predicates.update(relevant)
        else:
            stack.extend(operator_children(op))
    return frozenset(predicates)


class LeftJoinNode(IncrementalNode):
    """OPTIONAL as an incremental left outer hash join.

    Matched merges are monotone (a join partner never disappears), so they
    stream the moment both sides exist.  Whether a left row ends up *bare*
    (unmatched) is only decidable at quiescence; each left row carries a
    matched flag that deltas flip, and :meth:`finalize` emits the rows
    whose flag never flipped.  An ON-expression containing EXISTS defers
    all matching to finalize, since the expression's verdict can change as
    the dataset grows.
    """

    blocking = True

    def __init__(
        self,
        left: IncrementalNode,
        right: IncrementalNode,
        expression,
        evaluator: ExpressionEvaluator,
    ) -> None:
        # Only the required side's variables are certain: bare lefts carry
        # nothing from the optional side.
        super().__init__(left.certain_variables)
        self._left = left
        self._right = right
        self._expression = expression
        self._evaluator = evaluator
        self._defer = expression is not None and expression_contains_exists(expression)
        self._key_variables = tuple(
            sorted(left.certain_variables & right.certain_variables, key=lambda v: v.value)
        )
        #: Every left row as a mutable [binding, matched] entry.
        self._lefts: list[list] = []
        self._left_buckets: dict[tuple, list[list]] = {}
        self._right_table: dict[tuple, list[Binding]] = {}
        # -- live-maintenance state (built by prepare_live) --------------
        #: Unique left binding → mutable [multiplicity, partner count].
        self._live_lefts: dict[Binding, list[int]] = {}
        #: Key → unique left bindings (probe index for right changes).
        self._live_left_keys: dict[tuple, list[Binding]] = {}
        #: Current output multiset — maintained only in the defer case,
        #: where every delta forces a recompute-and-diff.
        self._live_output: dict[Binding, int] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        new_left = self._left.process(delta, dataset)
        new_right = self._right.process(delta, dataset)
        if self._defer:
            self._insert(new_left, new_right)
            return []
        return self._count(self._consume(new_left, new_right))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        final_left = self._left.finalize(dataset)
        final_right = self._right.finalize(dataset)
        produced: list[Binding] = []
        if self._defer:
            self._insert(final_left, final_right)
            # All pairs match at once against the final dataset.
            for entry in self._lefts:
                binding = entry[0]
                for other in self._right_table.get(binding.key(self._key_variables), ()):
                    merged = self._try_match(binding, other)
                    if merged is not None:
                        entry[1] = True
                        produced.append(merged)
        else:
            produced.extend(self._consume(final_left, final_right))
        for entry in self._lefts:
            if not entry[1]:
                produced.append(entry[0])
        return self._count(produced)

    def _insert(self, new_left: list[Binding], new_right: list[Binding]) -> None:
        for binding in new_left:
            entry = [binding, False]
            self._lefts.append(entry)
            self._left_buckets.setdefault(binding.key(self._key_variables), []).append(entry)
        for binding in new_right:
            self._right_table.setdefault(binding.key(self._key_variables), []).append(binding)

    def _try_match(self, left_binding: Binding, right_binding: Binding) -> Optional[Binding]:
        merged = left_binding.merged(right_binding)
        if merged is None:
            return None
        if self._expression is not None and not self._evaluator.satisfied(
            self._expression, merged
        ):
            return None
        return merged

    def _consume(self, new_left: list[Binding], new_right: list[Binding]) -> list[Binding]:
        produced: list[Binding] = []

        # New left rows probe the right table as it stood before this delta…
        for binding in new_left:
            entry = [binding, False]
            for other in self._right_table.get(binding.key(self._key_variables), ()):
                merged = self._try_match(binding, other)
                if merged is not None:
                    entry[1] = True
                    produced.append(merged)
            self._lefts.append(entry)
            self._left_buckets.setdefault(binding.key(self._key_variables), []).append(entry)

        # …and new right rows probe every left row seen so far (including
        # this delta's), flipping matched flags as they land.
        for binding in new_right:
            key = binding.key(self._key_variables)
            for entry in self._left_buckets.get(key, ()):
                merged = self._try_match(entry[0], binding)
                if merged is not None:
                    entry[1] = True
                    produced.append(merged)
            self._right_table.setdefault(key, []).append(binding)
        return produced

    def prepare_live(self, dataset: Dataset) -> None:
        key_variables = self._key_variables
        for entry in self._lefts:
            binding = entry[0]
            slot = self._live_lefts.get(binding)
            if slot is None:
                partners = sum(
                    1
                    for other in self._right_table.get(binding.key(key_variables), ())
                    if self._try_match(binding, other) is not None
                )
                slot = self._live_lefts[binding] = [0, partners]
                self._live_left_keys.setdefault(binding.key(key_variables), []).append(binding)
            slot[0] += 1
        if self._defer:
            self._live_output = self._compute_output()

    def _compute_output(self) -> dict[Binding, int]:
        output: dict[Binding, int] = {}
        key_variables = self._key_variables
        for binding, slot in self._live_lefts.items():
            multiplicity = slot[0]
            matched = False
            for other in self._right_table.get(binding.key(key_variables), ()):
                merged = self._try_match(binding, other)
                if merged is not None:
                    matched = True
                    _bump(output, merged, multiplicity)
            if not matched:
                _bump(output, binding, multiplicity)
        return output

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        left_changes = self._left.apply(delta, dataset)
        right_changes = self._right.apply(delta, dataset)
        key_variables = self._key_variables
        if self._defer:
            # The ON-expression contains EXISTS: any delta can flip any
            # pair's verdict, so recompute the whole output and diff.
            for binding, count in left_changes:
                self._live_adjust_left(binding, count)
            for binding, count in right_changes:
                JoinNode._update_table(
                    self._right_table, binding.key(key_variables), binding, count
                )
            if not left_changes and not right_changes and not delta:
                return []
            new_output = self._compute_output()
            changes = _diff_multisets(self._live_output, new_output)
            self._live_output = new_output
            return changes
        changes: list[Change] = []
        rights = self._right_table
        for binding, count in left_changes:
            matches = [
                merged
                for other in rights.get(binding.key(key_variables), ())
                if (merged := self._try_match(binding, other)) is not None
            ]
            self._live_adjust_left(binding, count, partners=len(matches))
            if matches:
                changes.extend((merged, count) for merged in matches)
            else:
                changes.append((binding, count))
        for binding, count in right_changes:
            key = binding.key(key_variables)
            for left_binding in self._live_left_keys.get(key, ()):
                merged = self._try_match(left_binding, binding)
                if merged is None:
                    continue
                slot = self._live_lefts[left_binding]
                old_partners = slot[1]
                slot[1] = old_partners + count
                if count > 0 and old_partners == 0:
                    # First partner arrived: the bare left row retracts.
                    changes.append((left_binding, -slot[0]))
                changes.append((merged, count * slot[0]))
                if count < 0 and slot[1] == 0:
                    # Last partner left: the bare left row returns.
                    changes.append((left_binding, slot[0]))
            JoinNode._update_table(rights, key, binding, count)
        return changes

    def _live_adjust_left(
        self, binding: Binding, count: int, partners: int = 0
    ) -> None:
        slot = self._live_lefts.get(binding)
        if slot is None:
            slot = self._live_lefts[binding] = [0, partners]
            self._live_left_keys.setdefault(
                binding.key(self._key_variables), []
            ).append(binding)
        slot[0] += count
        if slot[0] == 0:
            del self._live_lefts[binding]
            key = binding.key(self._key_variables)
            bucket = self._live_left_keys[key]
            bucket.remove(binding)
            if not bucket:
                del self._live_left_keys[key]

    def children(self):
        return (self._left, self._right)


class MinusNode(IncrementalNode):
    """MINUS as an incremental anti-join.

    A left row is excluded iff some right row shares at least one bound
    variable with it and is compatible.  Exclusion is monotone (more data
    can only add excluders), so each left row carries an excluded flag that
    deltas flip; survivors emit at :meth:`finalize`.  When the two sides
    certainly share variables, candidate excluders come from an exact-key
    bucket (rows elsewhere disagree on a certainly-shared variable and are
    incompatible by construction); otherwise every right row is scanned.
    """

    blocking = True

    def __init__(self, left: IncrementalNode, right: IncrementalNode) -> None:
        super().__init__(left.certain_variables)
        self._left = left
        self._right = right
        self._key_variables = tuple(
            sorted(left.certain_variables & right.certain_variables, key=lambda v: v.value)
        )
        self._lefts: list[list] = []
        self._left_buckets: dict[tuple, list[list]] = {}
        self._rights: list[Binding] = []
        self._right_buckets: dict[tuple, list[Binding]] = {}
        # -- live-maintenance state (built by prepare_live) --------------
        #: Unique left binding → mutable [multiplicity, excluder count].
        self._live_lefts: dict[Binding, list[int]] = {}
        self._live_left_keys: dict[tuple, list[Binding]] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        self._consume(self._left.process(delta, dataset), self._right.process(delta, dataset))
        return []

    def finalize(self, dataset: Dataset) -> list[Binding]:
        self._consume(self._left.finalize(dataset), self._right.finalize(dataset))
        return self._count([entry[0] for entry in self._lefts if not entry[1]])

    @staticmethod
    def _excludes(left_binding: Binding, right_binding: Binding) -> bool:
        if not set(left_binding) & set(right_binding):
            return False
        return left_binding.compatible(right_binding)

    def _consume(self, new_left: list[Binding], new_right: list[Binding]) -> None:
        keyed = bool(self._key_variables)
        for binding in new_left:
            entry = [binding, False]
            candidates = (
                self._right_buckets.get(binding.key(self._key_variables), ())
                if keyed
                else self._rights
            )
            for other in candidates:
                if self._excludes(binding, other):
                    entry[1] = True
                    break
            self._lefts.append(entry)
            if keyed:
                self._left_buckets.setdefault(binding.key(self._key_variables), []).append(entry)
        for binding in new_right:
            if keyed:
                key = binding.key(self._key_variables)
                self._right_buckets.setdefault(key, []).append(binding)
                targets = self._left_buckets.get(key, ())
            else:
                self._rights.append(binding)
                targets = self._lefts
            for entry in targets:
                if not entry[1] and self._excludes(entry[0], binding):
                    entry[1] = True

    def _right_candidates(self, binding: Binding) -> Iterable[Binding]:
        if self._key_variables:
            return self._right_buckets.get(binding.key(self._key_variables), ())
        return self._rights

    def prepare_live(self, dataset: Dataset) -> None:
        key_variables = self._key_variables
        for entry in self._lefts:
            binding = entry[0]
            slot = self._live_lefts.get(binding)
            if slot is None:
                excluders = sum(
                    1
                    for other in self._right_candidates(binding)
                    if self._excludes(binding, other)
                )
                slot = self._live_lefts[binding] = [0, excluders]
                self._live_left_keys.setdefault(binding.key(key_variables), []).append(binding)
            slot[0] += 1

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        left_changes = self._left.apply(delta, dataset)
        right_changes = self._right.apply(delta, dataset)
        changes: list[Change] = []
        key_variables = self._key_variables
        keyed = bool(key_variables)
        for binding, count in left_changes:
            excluders = sum(
                1 for other in self._right_candidates(binding) if self._excludes(binding, other)
            )
            slot = self._live_lefts.get(binding)
            if slot is None:
                slot = self._live_lefts[binding] = [0, excluders]
                self._live_left_keys.setdefault(binding.key(key_variables), []).append(binding)
            slot[0] += count
            if slot[0] == 0:
                del self._live_lefts[binding]
                key = binding.key(key_variables)
                bucket = self._live_left_keys[key]
                bucket.remove(binding)
                if not bucket:
                    del self._live_left_keys[key]
            if excluders == 0:
                changes.append((binding, count))
        for binding, count in right_changes:
            if keyed:
                key = binding.key(key_variables)
                JoinNode._update_table(self._right_buckets, key, binding, count)
                targets = self._live_left_keys.get(key, ())
            else:
                if count > 0:
                    self._rights.extend([binding] * count)
                else:
                    for _ in range(-count):
                        self._rights.remove(binding)
                targets = [
                    left
                    for bucket in self._live_left_keys.values()
                    for left in bucket
                ]
            for left_binding in targets:
                if not self._excludes(left_binding, binding):
                    continue
                slot = self._live_lefts[left_binding]
                old_excluders = slot[1]
                slot[1] = old_excluders + count
                if count > 0 and old_excluders == 0:
                    changes.append((left_binding, -slot[0]))  # now excluded
                elif count < 0 and slot[1] == 0:
                    changes.append((left_binding, slot[0]))  # survives again
        return changes

    def children(self):
        return (self._left, self._right)


class GroupAggregateNode(IncrementalNode):
    """GROUP BY with running aggregate states per group key.

    Each delta folds new member solutions into per-group
    :class:`AggregateState` accumulators; :meth:`finalize` evaluates the
    output expressions from those states in O(groups), never re-scanning
    members.  Expressions containing EXISTS are dataset-dependent, so that
    (rare) case buffers members and falls back to the batch helpers against
    the final snapshot.
    """

    blocking = True

    def __init__(
        self,
        input_node: IncrementalNode,
        op: GroupBy,
        evaluator: ExpressionEvaluator,
        live: bool = False,
    ) -> None:
        certain = set()
        for expression, alias in op.keys:
            if (
                isinstance(expression, VariableExpr)
                and expression.variable in input_node.certain_variables
            ):
                certain.add(alias if alias is not None else expression.variable)
        super().__init__(frozenset(certain))
        self._input = input_node
        self._op = op
        self._evaluator = evaluator
        aggregates: list[AggregateExpr] = []
        for _, expression in op.bindings:
            collect_aggregates(expression, aggregates)
        for condition in op.having:
            collect_aggregates(condition, aggregates)
        self._aggregates = tuple(aggregates)
        expressions = [expression for expression, _ in op.keys]
        expressions += [expression for _, expression in op.bindings]
        expressions += list(op.having)
        self._defer = any(expression_contains_exists(e) for e in expressions)
        self._held: list[Binding] = []
        self._groups: dict[tuple, tuple[Binding, dict]] = {}
        if not op.keys and not self._defer:
            # Aggregates over no keys produce one row even for zero members.
            self._groups[()] = (EMPTY_BINDING, self._new_states())
        # -- live-maintenance state -------------------------------------
        #: When live, every group also remembers its member multiset so a
        #: retraction that no :meth:`AggregateState.retract` can absorb
        #: (DISTINCT, MIN/MAX, …) rebuilds the states from survivors.
        self._live = live
        self._members: dict[tuple, dict[Binding, int]] = {}
        #: Group key → its currently-emitted output row (HAVING-passing).
        self._live_rows: dict[tuple, Binding] = {}
        #: Defer case: the whole output multiset, re-diffed per batch.
        self._live_defer_rows: dict[Binding, int] = {}

    def _new_states(self) -> dict:
        return {aggregate: AggregateState(aggregate) for aggregate in self._aggregates}

    def _key_of(self, member: Binding) -> tuple[tuple, Binding]:
        """The group key and key binding one member falls into."""
        op = self._op
        if not op.keys:
            return (), EMPTY_BINDING
        key_terms: list[Optional[Term]] = []
        items: dict[Variable, Term] = {}
        for expression, alias in op.keys:
            try:
                value: Optional[Term] = self._evaluator.evaluate(expression, member)
            except ExpressionError:
                value = None
            key_terms.append(value)
            if value is not None:
                if alias is not None:
                    items[alias] = value
                elif isinstance(expression, VariableExpr):
                    items[expression.variable] = value
        return tuple(key_terms), Binding(items)

    def _member(self, member: Binding) -> None:
        key, key_binding = self._key_of(member)
        group = self._groups.get(key)
        if group is None:
            group = self._groups[key] = (key_binding, self._new_states())
        for state in group[1].values():
            state.update(member, self._evaluator)
        if self._live:
            _bump(self._members.setdefault(key, {}), member, 1)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        new = self._input.process(delta, dataset)
        if self._defer:
            self._held.extend(new)
        else:
            for member in new:
                self._member(member)
        return []

    def finalize(self, dataset: Dataset) -> list[Binding]:
        finals = self._input.finalize(dataset)
        if self._defer:
            self._held.extend(finals)
            return self._count(self._finalize_batch())
        for member in finals:
            self._member(member)
        produced: list[Binding] = []
        for key in self._groups:
            row = self._group_row(key)
            if row is not None:
                produced.append(row)
        return self._count(produced)

    def _group_row(self, key: tuple) -> Optional[Binding]:
        """One group's output row from its running states; ``None`` when
        HAVING rejects it (or the group no longer exists)."""
        group = self._groups.get(key)
        if group is None:
            return None
        key_binding, states = group
        result = dict(key_binding)
        for variable, expression in self._op.bindings:
            try:
                value = evaluate_with_states(expression, states, key_binding, self._evaluator)
            except ExpressionError:
                continue  # aggregate error leaves the variable unbound
            result[variable] = value
        result_binding = Binding(result)
        if all(
            having_with_states(condition, states, result_binding, self._evaluator)
            for condition in self._op.having
        ):
            return result_binding
        return None

    def prepare_live(self, dataset: Dataset) -> None:
        if self._defer:
            for row in self._finalize_batch():
                _bump(self._live_defer_rows, row, 1)
            return
        for key in self._groups:
            row = self._group_row(key)
            if row is not None:
                self._live_rows[key] = row

    def _rebuild_group(self, key: tuple) -> None:
        """Recompute one group's states from its surviving members (the
        fallback when an aggregate cannot un-apply a retraction)."""
        key_binding = self._groups[key][0]
        states = self._new_states()
        for member, count in self._members.get(key, {}).items():
            for _ in range(count):
                for state in states.values():
                    state.update(member, self._evaluator)
        self._groups[key] = (key_binding, states)

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        member_changes = self._input.apply(delta, dataset)
        if self._defer:
            # EXISTS in keys/bindings/HAVING is dataset-dependent: any
            # delta can flip a row, so re-derive the whole (small) output
            # from the held member multiset and diff against last time.
            for binding, count in member_changes:
                if count > 0:
                    self._held.extend([binding] * count)
                else:
                    for _ in range(-count):
                        self._held.remove(binding)
            new_rows: dict[Binding, int] = {}
            for row in self._finalize_batch():
                _bump(new_rows, row, 1)
            changes = _diff_multisets(self._live_defer_rows, new_rows)
            self._live_defer_rows = new_rows
            return changes
        dirty: set[tuple] = set()
        for member, count in member_changes:
            key, key_binding = self._key_of(member)
            dirty.add(key)
            members = self._members.setdefault(key, {})
            if count > 0:
                group = self._groups.get(key)
                if group is None:
                    group = self._groups[key] = (key_binding, self._new_states())
                for _ in range(count):
                    for state in group[1].values():
                        state.update(member, self._evaluator)
                _bump(members, member, count)
                continue
            if members.get(member, 0) < -count:
                raise ValueError(
                    f"retraction of unseen group member {member!r}"
                )
            _bump(members, member, count)
            states = self._groups[key][1]
            clean = True
            for _ in range(-count):
                for state in states.values():
                    if not state.retract(member, self._evaluator):
                        clean = False
            if not clean:
                self._rebuild_group(key)
        changes: list[Change] = []
        # Sorted so change order is deterministic across processes.
        for key in sorted(dirty, key=repr):
            old_row = self._live_rows.get(key)
            if self._op.keys and not self._members.get(key):
                # Keyed group emptied out: it no longer exists at all.
                self._members.pop(key, None)
                self._groups.pop(key, None)
                new_row = None
            else:
                new_row = self._group_row(key)
            if new_row == old_row:
                continue
            if old_row is not None:
                changes.append((old_row, -1))
                del self._live_rows[key]
            if new_row is not None:
                changes.append((new_row, 1))
                self._live_rows[key] = new_row
        return changes

    def _finalize_batch(self) -> list[Binding]:
        op = self._op
        produced: list[Binding] = []
        for key_binding, members in group_solutions(self._held, op.keys, self._evaluator):
            result = compute_aggregates(key_binding, members, op.bindings, self._evaluator)
            if result is None:
                continue
            if all(
                evaluate_having(condition, members, result, self._evaluator)
                for condition in op.having
            ):
                produced.append(result)
        return produced

    def children(self):
        return (self._input,)


class _MaxHeapEntry:
    """Inverts comparison so ``heapq``'s min-heap keeps the k *smallest*
    entries with the current worst at the root."""

    __slots__ = ("entry",)

    def __init__(self, entry: tuple) -> None:
        self.entry = entry

    def __lt__(self, other: "_MaxHeapEntry") -> bool:
        # entry[:2] is (sort_key, arrival_seq): never compares bindings.
        return other.entry[:2] < self.entry[:2]


class OrderSliceNode(IncrementalNode):
    """ORDER BY, optionally fused with OFFSET/LIMIT (top-k).

    Without a LIMIT every solution is keyed on arrival and sorted once at
    :meth:`finalize`.  With a LIMIT only the best ``offset + limit``
    entries survive traversal in a bounded heap — the common
    ORDER BY + LIMIT page costs O(n log k) instead of buffering
    everything.  Arrival sequence breaks key ties, keeping the emitted
    order deterministic for a given delta schedule.  ORDER conditions
    containing EXISTS compute their keys only at finalize (no pruning),
    since a key could change as the dataset grows.
    """

    blocking = True

    def __init__(
        self,
        input_node: IncrementalNode,
        conditions: Sequence[OrderCondition],
        offset: int,
        limit: Optional[int],
        evaluator: ExpressionEvaluator,
        live: bool = False,
    ) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._conditions = tuple(conditions)
        self._offset = offset
        self._limit = limit
        self._evaluator = evaluator
        self._defer_keys = any(
            expression_contains_exists(condition.expression) for condition in self._conditions
        )
        self._seq = 0
        self._heap: list[_MaxHeapEntry] = []
        self._entries: list[tuple] = []
        self._held: list[Binding] = []
        #: Live executions keep *every* keyed entry (no top-k pruning): a
        #: retraction inside the page must be refillable from below it.
        self._live = live
        #: The currently-emitted page as a multiset (built by prepare_live).
        self._live_page: dict[Binding, int] = {}

    @property
    def _capacity(self) -> Optional[int]:
        return None if self._limit is None else self._offset + self._limit

    def _admit(self, bindings: list[Binding]) -> None:
        if self._defer_keys:
            self._held.extend(bindings)
            return
        capacity = self._capacity
        for binding in bindings:
            key = order_sort_key(self._conditions, binding, self._evaluator)
            entry = (key, self._seq, binding)
            self._seq += 1
            if capacity is None or self._live:
                self._entries.append(entry)
            elif capacity == 0:
                continue
            elif len(self._heap) < capacity:
                heapq.heappush(self._heap, _MaxHeapEntry(entry))
            elif entry[:2] < self._heap[0].entry[:2]:
                heapq.heapreplace(self._heap, _MaxHeapEntry(entry))

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        self._admit(self._input.process(delta, dataset))
        return []

    def finalize(self, dataset: Dataset) -> list[Binding]:
        self._admit(self._input.finalize(dataset))
        if self._defer_keys:
            entries = []
            for binding in self._held:
                key = order_sort_key(self._conditions, binding, self._evaluator)
                entries.append((key, self._seq, binding))
                self._seq += 1
        elif self._limit is None or self._live:
            entries = self._entries
        else:
            entries = [wrapper.entry for wrapper in self._heap]
        entries.sort(key=lambda entry: entry[:2])
        stop = None if self._limit is None else self._offset + self._limit
        return self._count([entry[2] for entry in entries[self._offset : stop]])

    def _page(self, entries: list[tuple]) -> dict[Binding, int]:
        """The OFFSET/LIMIT window of ``entries`` as a multiset."""
        ordered = sorted(entries, key=lambda entry: entry[:2])
        stop = None if self._limit is None else self._offset + self._limit
        page: dict[Binding, int] = {}
        for entry in ordered[self._offset : stop]:
            _bump(page, entry[2], 1)
        return page

    def _keyed_held(self) -> list[tuple]:
        entries = []
        for index, binding in enumerate(self._held):
            key = order_sort_key(self._conditions, binding, self._evaluator)
            entries.append((key, index, binding))
        return entries

    def prepare_live(self, dataset: Dataset) -> None:
        entries = self._keyed_held() if self._defer_keys else self._entries
        self._live_page = self._page(entries)

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        input_changes = self._input.apply(delta, dataset)
        if self._defer_keys:
            # EXISTS in an ORDER key: re-key everything against the
            # current dataset — any delta can reorder the page.
            for binding, count in input_changes:
                if count > 0:
                    self._held.extend([binding] * count)
                else:
                    for _ in range(-count):
                        self._held.remove(binding)
            entries = self._keyed_held()
        else:
            if not input_changes:
                return []
            for binding, count in input_changes:
                if count > 0:
                    key = order_sort_key(self._conditions, binding, self._evaluator)
                    for _ in range(count):
                        self._entries.append((key, self._seq, binding))
                        self._seq += 1
                else:
                    for _ in range(-count):
                        for index, entry in enumerate(self._entries):
                            if entry[2] == binding:
                                del self._entries[index]
                                break
                        else:
                            raise ValueError(
                                f"retraction of unseen ordered binding {binding!r}"
                            )
            entries = self._entries
        new_page = self._page(entries)
        changes = _diff_multisets(self._live_page, new_page)
        self._live_page = new_page
        return changes

    def children(self):
        return (self._input,)


class DescribeNode(IncrementalNode):
    """DESCRIBE as a *streaming* operator.

    A concise bounded description only grows with the dataset, so DESCRIBE
    is monotonic: as traversal discovers root resources (constant targets
    immediately, WHERE-bound ones as solutions arrive) their CBD triples
    stream out, and each delta quad whose subject is already a root emits
    directly.  Blank-node objects join the root set so descriptions recurse
    exactly as the snapshot evaluator's CBD does; an emitted-triple set
    dedupes across overlapping descriptions.
    """

    _SUBJECT = Variable("subject")
    _PREDICATE = Variable("predicate")
    _OBJECT = Variable("object")

    def __init__(self, input_node: IncrementalNode, query: Query) -> None:
        super().__init__(frozenset((self._SUBJECT, self._PREDICATE, self._OBJECT)))
        self._input = input_node
        targets = query.describe_targets
        variables = [t for t in targets if isinstance(t, Variable)]
        self._constants = [t for t in targets if not isinstance(t, Variable)]
        if variables:
            self._scope: tuple[Variable, ...] = tuple(variables)
        elif not targets:
            self._scope = tuple(
                sorted(operator_variables(query.where), key=lambda v: v.value)
            )
        else:
            self._scope = ()
        self._roots: set[Term] = set()
        self._emitted: set[Triple] = set()
        self._seeded = False
        #: WHERE-bound root resource → how many scope bindings support it
        #: (maintained during traversal; lets :meth:`apply` drop a root
        #: whose last supporting solution is retracted).
        self._scope_support: dict[Term, int] = {}

    def register(self, router: DeltaRouter) -> None:
        super().register(router)
        # CBD expansion needs every quad whose subject is a known root.
        router.register(None)

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        graph = dataset.union
        produced: list[Triple] = []
        if not self._seeded:
            self._seeded = True
            for constant in self._constants:
                self._add_root(constant, graph, produced)
        self._harvest(self._input.process(delta, dataset), graph, produced)
        quads = delta.quads if isinstance(delta, DeltaBatch) else delta
        for quad in quads:
            if quad.subject in self._roots:
                triple = quad.triple
                if triple not in self._emitted:
                    self._emitted.add(triple)
                    produced.append(triple)
                obj = triple.object
                if isinstance(obj, BlankNode) and obj not in self._roots:
                    self._add_root(obj, graph, produced)
        return self._count(self._to_bindings(produced))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        graph = dataset.union
        produced: list[Triple] = []
        if not self._seeded:
            self._seeded = True
            for constant in self._constants:
                self._add_root(constant, graph, produced)
        self._harvest(self._input.finalize(dataset), graph, produced)
        return self._count(self._to_bindings(produced))

    def _harvest(self, bindings: list[Binding], graph, produced: list[Triple]) -> None:
        for binding in bindings:
            for variable in self._scope:
                term = binding.get(variable)
                if term is not None and not isinstance(term, Literal):
                    self._scope_support[term] = self._scope_support.get(term, 0) + 1
                    self._add_root(term, graph, produced)

    def _add_root(self, resource: Term, graph, produced: list[Triple]) -> None:
        if resource in self._roots:
            return
        self._roots.add(resource)
        frontier = [resource]
        while frontier:
            node = frontier.pop()
            for triple in graph.match(node, None, None):
                if triple not in self._emitted:
                    self._emitted.add(triple)
                    produced.append(triple)
                obj = triple.object
                if isinstance(obj, BlankNode) and obj not in self._roots:
                    self._roots.add(obj)
                    frontier.append(obj)

    def _to_bindings(self, triples: list[Triple]) -> list[Binding]:
        return [
            Binding(
                {
                    self._SUBJECT: triple.subject,
                    self._PREDICATE: triple.predicate,
                    self._OBJECT: triple.object,
                }
            )
            for triple in triples
        ]

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        # A description is not monotonic under retraction (a root's CBD
        # can shrink, a root itself can vanish): recompute the description
        # set from the surviving roots and diff against what was emitted.
        graph = dataset.union
        for binding, count in self._input.apply(delta, dataset):
            for variable in self._scope:
                term = binding.get(variable)
                if term is not None and not isinstance(term, Literal):
                    _bump(self._scope_support, term, count)
        roots: set[Term] = set(self._constants)
        roots.update(self._scope_support)
        emitted: set[Triple] = set()
        frontier = list(roots)
        while frontier:
            node = frontier.pop()
            for triple in graph.match(node, None, None):
                if triple not in emitted:
                    emitted.add(triple)
                    obj = triple.object
                    if isinstance(obj, BlankNode) and obj not in roots:
                        roots.add(obj)
                        frontier.append(obj)
        sort_key = lambda t: (repr(t.subject), repr(t.predicate), repr(t.object))  # noqa: E731
        removed = sorted(self._emitted - emitted, key=sort_key)
        added = sorted(emitted - self._emitted, key=sort_key)
        self._emitted = emitted
        self._roots = roots
        changes: list[Change] = [(b, -1) for b in self._to_bindings(removed)]
        changes.extend((b, 1) for b in self._to_bindings(added))
        return changes

    def children(self):
        return (self._input,)


class ProjectNode(IncrementalNode):
    def __init__(self, input_node: IncrementalNode, variables: tuple[Variable, ...]) -> None:
        super().__init__(input_node.certain_variables & frozenset(variables))
        self._input = input_node
        self._variables = variables

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(
            [b.projected(self._variables) for b in self._input.process(delta, dataset)]
        )

    def finalize(self, dataset: Dataset) -> list[Binding]:
        return self._count(
            [b.projected(self._variables) for b in self._input.finalize(dataset)]
        )

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        return [
            (binding.projected(self._variables), count)
            for binding, count in self._input.apply(delta, dataset)
        ]

    def children(self):
        return (self._input,)


class DistinctNode(IncrementalNode):
    def __init__(self, input_node: IncrementalNode) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        #: Distinct binding → input multiplicity.  ``process`` emits on the
        #: 0→1 transition; ``apply`` additionally retracts on 1→0.
        self._seen: dict[Binding, int] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        return self._count(self._dedupe(self._input.process(delta, dataset)))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        return self._count(self._dedupe(self._input.finalize(dataset)))

    def _dedupe(self, bindings: list[Binding]) -> list[Binding]:
        produced: list[Binding] = []
        seen = self._seen
        for binding in bindings:
            count = seen.get(binding, 0)
            seen[binding] = count + 1
            if count == 0:
                produced.append(binding)
        return produced

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        changes: list[Change] = []
        seen = self._seen
        for binding, count in self._input.apply(delta, dataset):
            if count < 0 and seen.get(binding, 0) < -count:
                raise ValueError(f"retraction of unseen distinct binding {binding!r}")
            before = seen.get(binding, 0)
            after = _bump(seen, binding, count)
            if before == 0 and after > 0:
                changes.append((binding, 1))
            elif before > 0 and after == 0:
                changes.append((binding, -1))
        return changes

    def children(self):
        return (self._input,)


class LimitNode(IncrementalNode):
    """LIMIT without OFFSET: any N results are a correct answer prefix.

    Live executions keep consuming input past satisfaction into a *pool*:
    when a retraction later removes an emitted row, the page refills from
    pooled surplus instead of under-delivering.
    """

    def __init__(self, input_node: IncrementalNode, limit: int, live: bool = False) -> None:
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._limit = limit
        self._taken = 0
        self._live = live
        #: Every input row ever seen (live only), insertion-ordered.
        self._pool: dict[Binding, int] = {}
        #: What is currently emitted (live only); total ≤ ``limit``.
        self._out: dict[Binding, int] = {}

    @property
    def satisfied(self) -> bool:
        return self._taken >= self._limit

    def _counted(self, produced: list[Binding]) -> list[Binding]:
        self.produced_total += len(produced)
        return produced

    def children(self):
        return (self._input,)

    def _admit(self, produced: list[Binding]) -> list[Binding]:
        if self._live:
            for binding in produced:
                _bump(self._pool, binding, 1)
        remaining = self._limit - self._taken
        produced = produced[:remaining]
        self._taken += len(produced)
        if self._live:
            for binding in produced:
                _bump(self._out, binding, 1)
        return produced

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        if self.satisfied and not self._live:
            return []
        return self._counted(self._admit(self._input.process(delta, dataset)))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        if self.satisfied and not self._live:
            return []
        return self._counted(self._admit(self._input.finalize(dataset)))

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        changes: list[Change] = []
        for binding, count in self._input.apply(delta, dataset):
            if count < 0 and self._pool.get(binding, 0) < -count:
                raise ValueError(f"retraction of unseen limited binding {binding!r}")
            _bump(self._pool, binding, count)
        # Clamp emissions to what the pool still holds…
        for binding in list(self._out):
            excess = self._out[binding] - self._pool.get(binding, 0)
            if excess > 0:
                _bump(self._out, binding, -excess)
                changes.append((binding, -excess))
        # …then refill up to the limit from pooled surplus.
        total = sum(self._out.values())
        if total < self._limit:
            for binding, available in self._pool.items():
                surplus = available - self._out.get(binding, 0)
                if surplus <= 0:
                    continue
                take = min(surplus, self._limit - total)
                _bump(self._out, binding, take)
                changes.append((binding, take))
                total += take
                if total >= self._limit:
                    break
        self._taken = total
        return changes


class ExtendNode(IncrementalNode):
    def __init__(
        self,
        input_node: IncrementalNode,
        variable: Variable,
        expression,
        evaluator: ExpressionEvaluator,
    ) -> None:
        # The extended variable is not *certain*: the expression may error.
        super().__init__(input_node.certain_variables)
        self._input = input_node
        self._variable = variable
        self._expression = expression
        self._evaluator = evaluator
        # BIND(EXISTS{…} AS ?x) can change value as data arrives; hold the
        # inputs and bind against the final snapshot.
        self.blocking = expression_contains_exists(expression)
        self._held: list[Binding] = []
        #: Blocking (EXISTS) live state: input multiset and emitted output.
        self._candidates: dict[Binding, int] = {}
        self._live_out: dict[Binding, int] = {}

    def process(self, delta: Delta, dataset: Dataset) -> list[Binding]:
        new = self._input.process(delta, dataset)
        if self.blocking:
            self._held.extend(new)
            return []
        return self._count(self._apply(new))

    def finalize(self, dataset: Dataset) -> list[Binding]:
        finals = self._input.finalize(dataset)
        if self.blocking:
            finals = self._held + finals
            self._held = []
            for binding in finals:
                _bump(self._candidates, binding, 1)
        return self._count(self._apply(finals))

    def _apply(self, bindings: list[Binding]) -> list[Binding]:
        produced: list[Binding] = []
        for binding in bindings:
            try:
                value = self._evaluator.evaluate(self._expression, binding)
            except ExpressionError:
                produced.append(binding)
                continue
            if self._variable in binding:
                if binding[self._variable] == value:
                    produced.append(binding)
                continue
            produced.append(binding.extended(self._variable, value))
        return produced

    def _recompute_out(self) -> dict[Binding, int]:
        out: dict[Binding, int] = {}
        for binding, count in self._candidates.items():
            for mapped in self._apply([binding]):
                _bump(out, mapped, count)
        return out

    def prepare_live(self, dataset: Dataset) -> None:
        if self.blocking:
            self._live_out = self._recompute_out()

    def apply(self, delta: Delta, dataset: Dataset) -> list[Change]:
        input_changes = self._input.apply(delta, dataset)
        if not self.blocking:
            changes: list[Change] = []
            for binding, count in input_changes:
                for mapped in self._apply([binding]):
                    changes.append((mapped, count))
            return changes
        # EXISTS inside the expression: its value depends on the dataset,
        # so any delta can flip an output — re-derive and diff.
        for binding, count in input_changes:
            if count < 0 and self._candidates.get(binding, 0) < -count:
                raise ValueError(f"retraction of unseen extend input {binding!r}")
            _bump(self._candidates, binding, count)
        out = self._recompute_out()
        changes = _diff_multisets(self._live_out, out)
        self._live_out = out
        return changes

    def children(self):
        return (self._input,)


def total_work(node: IncrementalNode) -> int:
    """Sum of bindings produced by every node in a pipeline tree.

    A proxy for evaluation effort: bad join orders inflate intermediate
    results, which this counter exposes (used by the adaptive-planning
    bench E10).
    """
    return node.produced_total + sum(total_work(child) for child in node.children())


class Pipeline:
    """A compiled incremental operator tree plus its feeding cursor.

    Construction walks the tree once so every scan registers its predicate
    key with the pipeline's :class:`DeltaRouter`; each :meth:`advance` then
    buckets the delta once and dispatches only the matching slices.
    ``blocking_nodes`` lists the physical operators that hold output for
    the :meth:`finalize` pass — empty means the whole plan streams.
    """

    def __init__(
        self,
        root: IncrementalNode,
        exists_context: Optional[CurrentDatasetExists] = None,
        live: bool = False,
    ) -> None:
        self._root = root
        #: Live pipelines stay open past quiescence and maintain their
        #: result multiset under signed deltas (:meth:`poll_changes`).
        self.live = live
        self._cursor = 0
        self._router = DeltaRouter()
        root.register(self._router)
        self._exists = exists_context
        blocking: list[IncrementalNode] = []
        stack: list[IncrementalNode] = [root]
        while stack:
            node = stack.pop()
            if node.blocking:
                blocking.append(node)
            stack.extend(node.children())
        self.blocking_nodes: tuple[IncrementalNode, ...] = tuple(blocking)
        self._tracer = None
        self._trace_parent = None

    def enable_tracing(self, tracer, parent=None) -> None:
        """Record one ``advance-batch`` span per :meth:`advance` (under
        ``parent``) with nested ``join`` spans per join operator."""
        self._tracer = tracer
        self._trace_parent = parent
        stack: list[IncrementalNode] = [self._root]
        while stack:
            node = stack.pop()
            if isinstance(node, JoinNode):
                node._tracer = tracer
            stack.extend(node.children())

    @property
    def root(self) -> IncrementalNode:
        return self._root

    @property
    def router(self) -> DeltaRouter:
        return self._router

    @property
    def complete(self) -> bool:
        """True once a top-level LIMIT has been satisfied.

        Always false for live pipelines: maintenance needs the traversal
        to reach true quiescence (a satisfied LIMIT still pools surplus
        rows for later refills), so early termination is disabled.
        """
        if self.live:
            return False
        return isinstance(self._root, LimitNode) and self._root.satisfied

    def advance(self, dataset: Dataset) -> list[Binding]:
        """Feed all quads logged since the last call; return new solutions."""
        position = dataset.log_position
        if position == self._cursor:
            return []
        delta = dataset.log_slice(self._cursor, position)
        self._cursor = position
        if not delta:
            return []
        if self._exists is not None:
            self._exists.bind(dataset)
        tracer = self._tracer
        if tracer is None:
            return self._root.process(self._router.batch(delta), dataset)
        with tracer.span(
            "advance-batch", parent=self._trace_parent, quads=len(delta)
        ) as span:
            produced = self._root.process(self._router.batch(delta), dataset)
            span.args["produced"] = len(produced)
        return produced

    def finalize(self, dataset: Dataset) -> list[Binding]:
        """Quiescence flush: drain the cursor, then release blocked output.

        Returns the tail of the result stream — any solutions from the
        final delta plus everything the blocking operators held back.
        Runs in O(held results); no operator re-scans its inputs.
        """
        produced = self.advance(dataset)
        if self._exists is not None:
            self._exists.bind(dataset)
        tracer = self._tracer
        if tracer is None:
            return produced + self._root.finalize(dataset)
        with tracer.span(
            "finalize",
            parent=self._trace_parent,
            blocking=len(self.blocking_nodes),
        ) as span:
            finals = self._root.finalize(dataset)
            span.args["produced"] = len(finals)
        return produced + finals

    def prepare_live(self, dataset: Dataset) -> None:
        """Arm signed maintenance: every node builds its apply-time state.

        Call exactly once, after :meth:`finalize`, on a live-compiled
        pipeline.  From then on :meth:`poll_changes` maintains the result
        multiset under signed dataset deltas.
        """
        if self._exists is not None:
            self._exists.bind(dataset)
        stack: list[IncrementalNode] = [self._root]
        while stack:
            node = stack.pop()
            node.prepare_live(dataset)
            stack.extend(node.children())

    def poll_changes(self, dataset: Dataset) -> list[Change]:
        """Feed signed log growth since the last call through the tree.

        The slice is split into maximal same-sign runs so each
        :meth:`IncrementalNode.apply` batch has a single polarity; the
        returned changes are the net signed adjustments to the query's
        result multiset.
        """
        position = dataset.log_position
        if position == self._cursor:
            return []
        runs = dataset.signed_runs(self._cursor, position)
        self._cursor = position
        if self._exists is not None:
            self._exists.bind(dataset)
        tracer = self._tracer
        changes: list[Change] = []
        for sign, quads in runs:
            batch = self._router.batch(quads, sign)
            if tracer is None:
                changes.extend(self._root.apply(batch, dataset))
                continue
            with tracer.span(
                "apply-batch",
                parent=self._trace_parent,
                quads=len(quads),
                sign=sign,
            ) as span:
                produced = self._root.apply(batch, dataset)
                span.args["changes"] = len(produced)
            changes.extend(produced)
        return changes


def compile_pipeline(
    where: Operator,
    evaluator: Optional[ExpressionEvaluator] = None,
    seed_iris: Iterable[str] = (),
    bgp_order=None,
    live: bool = False,
) -> Pipeline:
    """Compile an algebra tree into an incremental pipeline.

    Monotonic operators stream; non-monotonic ones compile into blocking
    physical nodes that release held output via ``Pipeline.finalize`` at
    traversal quiescence.

    ``bgp_order`` optionally overrides join ordering: a callable taking the
    list of (triple & path) patterns of a BGP and returning them in the
    order the left-deep join tree should use.  The default is the
    zero-knowledge planner.  The adaptive engine (see
    :mod:`repro.ltqp.adaptive`) re-compiles with a cardinality-informed
    order mid-execution.
    """
    exists_context: Optional[CurrentDatasetExists] = None
    if evaluator is None:
        exists_context = CurrentDatasetExists()
        evaluator = ExpressionEvaluator(exists_evaluator=exists_context)
    if bgp_order is None:
        seeds = tuple(seed_iris)

        def bgp_order(patterns):
            return plan_bgp_order(patterns, seed_iris=seeds)

    root = _compile(where, evaluator, bgp_order, graph=None, live=live)
    return Pipeline(root, exists_context, live=live)


def compile_query_pipeline(
    query: Query,
    seed_iris: Iterable[str] = (),
    bgp_order=None,
    live: bool = False,
) -> Pipeline:
    """Compile a full parsed query — any form — into one pipeline.

    * SELECT/CONSTRUCT use the WHERE tree directly (CONSTRUCT's template is
      instantiated by the engine per solution).
    * ASK wraps the WHERE tree in ``LIMIT 1`` over an empty projection: one
      empty binding means true, none means false — and a monotonic body
      still stops traversal at the first proof.
    * DESCRIBE wraps the WHERE tree in a streaming :class:`DescribeNode`.
    """
    exists_context = CurrentDatasetExists()
    evaluator = ExpressionEvaluator(exists_evaluator=exists_context)
    if bgp_order is None:
        seeds = tuple(seed_iris)

        def bgp_order(patterns):
            return plan_bgp_order(patterns, seed_iris=seeds)

    where = query.where
    if query.form == "ASK":
        where = Slice(Project(where, ()), offset=0, limit=1)
    root = _compile(where, evaluator, bgp_order, graph=None, live=live)
    if query.form == "DESCRIBE":
        root = DescribeNode(root, query)
    return Pipeline(root, exists_context, live=live)


def _compile(
    op: Operator,
    evaluator: ExpressionEvaluator,
    bgp_order,
    graph: Optional[Term],
    live: bool = False,
) -> IncrementalNode:
    if isinstance(op, BGP):
        return _compile_bgp(op, bgp_order, graph)
    if isinstance(op, Join):
        return JoinNode(
            _compile(op.left, evaluator, bgp_order, graph, live),
            _compile(op.right, evaluator, bgp_order, graph, live),
        )
    if isinstance(op, LeftJoin):
        return LeftJoinNode(
            _compile(op.left, evaluator, bgp_order, graph, live),
            _compile(op.right, evaluator, bgp_order, graph, live),
            op.expression,
            evaluator,
        )
    if isinstance(op, Union):
        return UnionNode(
            _compile(op.left, evaluator, bgp_order, graph, live),
            _compile(op.right, evaluator, bgp_order, graph, live),
        )
    if isinstance(op, Minus):
        return MinusNode(
            _compile(op.left, evaluator, bgp_order, graph, live),
            _compile(op.right, evaluator, bgp_order, graph, live),
        )
    if isinstance(op, Filter):
        inner = _compile(op.input, evaluator, bgp_order, graph, live)
        if expression_contains_exists(op.expression):
            return ExistsFilterNode(inner, op.expression, evaluator)
        return FilterNode(inner, op.expression, evaluator)
    if isinstance(op, Extend):
        return ExtendNode(
            _compile(op.input, evaluator, bgp_order, graph, live),
            op.variable,
            op.expression,
            evaluator,
        )
    if isinstance(op, GraphOp):
        return _compile(op.input, evaluator, bgp_order, op.name, live)
    if isinstance(op, ValuesOp):
        return ValuesNode(op)
    if isinstance(op, Project):
        return ProjectNode(_compile(op.input, evaluator, bgp_order, graph, live), op.variables)
    if isinstance(op, Distinct):
        return DistinctNode(_compile(op.input, evaluator, bgp_order, graph, live))
    if isinstance(op, Reduced):
        # Streaming REDUCED: full dedup is permitted by the spec and free here.
        return DistinctNode(_compile(op.input, evaluator, bgp_order, graph, live))
    if isinstance(op, OrderBy):
        return OrderSliceNode(
            _compile(op.input, evaluator, bgp_order, graph, live),
            op.conditions,
            0,
            None,
            evaluator,
            live=live,
        )
    if isinstance(op, Slice):
        # Fuse ORDER BY + OFFSET/LIMIT into one top-k operator; sort keys
        # are computed before projection so conditions may reference
        # projected-away variables.
        if isinstance(op.input, OrderBy):
            return OrderSliceNode(
                _compile(op.input.input, evaluator, bgp_order, graph, live),
                op.input.conditions,
                op.offset,
                op.limit,
                evaluator,
                live=live,
            )
        if isinstance(op.input, Project) and isinstance(op.input.input, OrderBy):
            order = op.input.input
            return ProjectNode(
                OrderSliceNode(
                    _compile(order.input, evaluator, bgp_order, graph, live),
                    order.conditions,
                    op.offset,
                    op.limit,
                    evaluator,
                    live=live,
                ),
                op.input.variables,
            )
        inner = _compile(op.input, evaluator, bgp_order, graph, live)
        if op.offset != 0:
            return OrderSliceNode(inner, (), op.offset, op.limit, evaluator, live=live)
        if op.limit is None:
            return inner
        return LimitNode(inner, op.limit, live=live)
    if isinstance(op, GroupBy):
        return GroupAggregateNode(
            _compile(op.input, evaluator, bgp_order, graph, live), op, evaluator, live=live
        )
    if isinstance(op, SubSelect):
        return _compile(op.query.where, evaluator, bgp_order, graph, live)
    raise NotStreamable(f"operator {type(op).__name__} has no physical implementation")


def _compile_bgp(
    op: BGP, bgp_order, graph: Optional[Term]
) -> IncrementalNode:
    patterns = bgp_order(list(op.patterns) + list(op.path_patterns))
    if not patterns:
        empty = ValuesOp((), ((),))
        return ValuesNode(empty)
    nodes: list[IncrementalNode] = []
    for pattern in patterns:
        if isinstance(pattern, PathPattern):
            nodes.append(PathScanNode(pattern, graph=graph))
        else:
            nodes.append(ScanNode(pattern, graph=graph))
    root = nodes[0]
    for node in nodes[1:]:
        root = JoinNode(root, node)
    return root
