"""Link Traversal Query Processing — the paper's primary contribution.

The engine (:class:`LinkTraversalEngine`) executes SPARQL queries over
decentralized environments by recursively dereferencing links from seed
URLs (link queue + dereferencer + extractors feeding a growing triple
source) while a pipelined query plan streams results in parallel —
the architecture of the paper's Fig. 1.
"""

from .adaptive import AdaptivePipeline, observed_cardinality
from .dereference import DereferenceError, DereferenceResult, Dereferencer
from .engine import (
    EngineConfig,
    ExecutionResult,
    LinkTraversalEngine,
    QueryExecution,
    TraversalPolicy,
)
from ..net.resilience import NetworkPolicy
from .explain import explain_algebra, explain_physical, explain_plan
from .extractors import (
    AllIriExtractor,
    LdpContainerExtractor,
    LinkExtractor,
    MatchIriExtractor,
    QueryContext,
    ScopedLdpContainerExtractor,
    SOLID_AWARE_EXTRACTORS,
    StorageExtractor,
    TypeIndexExtractor,
    build_query_context,
    default_extractors,
)
from .guided import (
    CardinalityHints,
    GuidedLinkQueue,
    HintDiscoveryExtractor,
    SourceSelector,
    SubwebRule,
    SubwebSpecification,
)
from .links import (
    EXTRACTOR_RANK,
    FairLinkQueue,
    FifoLinkQueue,
    LifoLinkQueue,
    Link,
    LinkProvenance,
    LinkQueue,
    PriorityLinkQueue,
    QUEUE_POLICIES,
    QueuePolicyContext,
    QueueSample,
    build_queue,
    provenance_rank,
    queue_factory_for,
)
from .pipeline import (
    DescribeNode,
    ExistsFilterNode,
    GroupAggregateNode,
    LeftJoinNode,
    MinusNode,
    NotStreamable,
    OrderSliceNode,
    Pipeline,
    compile_pipeline,
    compile_query_pipeline,
    total_work,
)
from .live import LiveQuery, ResultChange
from .source import GrowingTripleSource
from .stats import ExecutionStats, TimedResult

__all__ = [
    "LinkTraversalEngine",
    "EngineConfig",
    "TraversalPolicy",
    "NetworkPolicy",
    "QueryExecution",
    "ExecutionResult",
    "ExecutionStats",
    "TimedResult",
    "Link",
    "LinkProvenance",
    "LinkQueue",
    "FifoLinkQueue",
    "LifoLinkQueue",
    "PriorityLinkQueue",
    "FairLinkQueue",
    "GuidedLinkQueue",
    "QUEUE_POLICIES",
    "QueuePolicyContext",
    "queue_factory_for",
    "build_queue",
    "provenance_rank",
    "EXTRACTOR_RANK",
    "QueueSample",
    "SourceSelector",
    "SubwebRule",
    "SubwebSpecification",
    "CardinalityHints",
    "HintDiscoveryExtractor",
    "GrowingTripleSource",
    "Dereferencer",
    "DereferenceResult",
    "DereferenceError",
    "LinkExtractor",
    "AllIriExtractor",
    "MatchIriExtractor",
    "LdpContainerExtractor",
    "ScopedLdpContainerExtractor",
    "StorageExtractor",
    "TypeIndexExtractor",
    "SOLID_AWARE_EXTRACTORS",
    "default_extractors",
    "build_query_context",
    "QueryContext",
    "Pipeline",
    "AdaptivePipeline",
    "observed_cardinality",
    "explain_algebra",
    "explain_physical",
    "explain_plan",
    "compile_pipeline",
    "compile_query_pipeline",
    "LeftJoinNode",
    "MinusNode",
    "ExistsFilterNode",
    "GroupAggregateNode",
    "OrderSliceNode",
    "DescribeNode",
    "total_work",
    "NotStreamable",
    "LiveQuery",
    "ResultChange",
]
