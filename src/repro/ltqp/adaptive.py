"""Adaptive query planning during traversal (paper §5, future work).

    "In future work, we will investigate further optimizations, which may
     involve adaptive query planning techniques [29] — which have only
     seen limited adoption within LTQP [30]"

Zero-knowledge planning must guess join orders before any data exists; a
bad guess only becomes visible once documents arrive.  This module adds
the classic mid-flight correction: monitor observed pattern
cardinalities, and when the running join order is badly wrong, *replan* —
recompile the pipeline with a cardinality-informed order and replay the
(locally stored) traversal log through it.  Already-delivered answers are
deduplicated, so downstream consumers never see repeats; replay is cheap
because LTQP keeps all fetched triples in the growing source.

Restriction: replanning applies per BGP — always *below* the plan's
blocking boundary (BGP join trees are the monotonic feet of the plan;
blocking operators sit above them).  Recompiling builds a fresh pipeline
whose blocking operators start empty, and replaying the traversal log
through it rebuilds their held state exactly, so OPTIONAL/MINUS/GROUP BY
queries replan as safely as plain joins.  Queries stream correctly either
way — adaptivity only changes intermediate-result volume, never answers.
Replayed results are set-deduplicated, which matches the DISTINCT
semantics of the benchmark queries; for non-DISTINCT queries replanning
is still answer-correct since the pipeline's operators are themselves
duplicate-free per derivation.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..rdf.dataset import Dataset
from ..rdf.terms import Variable
from ..rdf.triples import TriplePattern
from ..sparql.algebra import Operator, PathPattern, Query
from ..sparql.bindings import Binding
from ..sparql.planner import plan_bgp_order
from .pipeline import Pipeline, compile_pipeline, compile_query_pipeline, total_work

__all__ = ["AdaptivePipeline", "observed_cardinality"]


def observed_cardinality(pattern, dataset: Dataset) -> int:
    """How many triples in the current snapshot match ``pattern``.

    :meth:`Graph.count` answers from index bucket sizes without
    materialising matches, so sampling cardinalities on every replan check
    stays cheap even late in a large traversal.
    """
    if isinstance(pattern, PathPattern):
        # Approximate a path by the total count of its member predicates.
        from ..sparql.paths import path_predicates

        return sum(
            dataset.union.count(None, predicate, None)
            for predicate in path_predicates(pattern.path)
        )
    return dataset.union.count(pattern.subject, pattern.predicate, pattern.object)


def _cardinality_order(patterns: Sequence, dataset: Dataset) -> list:
    """Greedy connected order by ascending observed cardinality."""
    remaining = list(patterns)
    ordered: list = []
    bound: set[Variable] = set()
    counts = {id(p): observed_cardinality(p, dataset) for p in remaining}
    while remaining:
        connected = [p for p in remaining if not ordered or (p.variables() & bound)]
        candidates = connected if connected else remaining
        best = min(candidates, key=lambda p: counts[id(p)])
        remaining.remove(best)
        ordered.append(best)
        bound |= best.variables()
    return ordered


class AdaptivePipeline:
    """A :class:`~repro.ltqp.pipeline.Pipeline` wrapper that replans.

    Drop-in for ``Pipeline`` (same ``advance`` / ``complete`` interface).
    Every ``check_interval`` deltas it compares the running plan's leading
    pattern against the cardinality-optimal one; when the current leader
    is ``replan_factor`` times larger than the best available, it
    recompiles with the observed order and replays the log.
    """

    def __init__(
        self,
        where: Operator,
        seed_iris: Iterable[str] = (),
        check_interval: int = 10,
        replan_factor: float = 4.0,
        max_replans: int = 2,
        query: Optional[Query] = None,
    ) -> None:
        self._where = where
        #: When the full query is supplied, compilation goes through
        #: :func:`compile_query_pipeline` so ASK/DESCRIBE wrapping applies.
        self._query = query
        self._seed_iris = tuple(seed_iris)
        self._check_interval = max(1, check_interval)
        self._replan_factor = replan_factor
        self._max_replans = max_replans

        self._current_order: Optional[list] = None
        self._tracer = None
        self._trace_parent = None
        self._pipeline = self._compile(order=None)
        self._emitted: set[Binding] = set()
        self._deltas_seen = 0
        self._retired_work = 0
        self.replans = 0

    def enable_tracing(self, tracer, parent=None) -> None:
        """Trace the active plan (and every replanned successor)."""
        self._tracer = tracer
        self._trace_parent = parent
        self._pipeline.enable_tracing(tracer, parent)

    # -- Pipeline interface -------------------------------------------------

    @property
    def complete(self) -> bool:
        return self._pipeline.complete

    @property
    def root(self):
        return self._pipeline.root

    @property
    def router(self):
        """The *active* plan's delta router.

        Every recompile builds a fresh :class:`~repro.ltqp.pipeline.Pipeline`,
        whose constructor walks the new operator tree and re-registers every
        scan's predicate key — so after a replan the routing table always
        matches the running plan, with no stale registrations from retired
        plans.
        """
        return self._pipeline.router

    @property
    def blocking_nodes(self):
        """The active plan's blocking operators (empty = fully streaming)."""
        return self._pipeline.blocking_nodes

    @property
    def total_work(self) -> int:
        """Bindings produced across all plans, including retired ones."""
        return self._retired_work + total_work(self._pipeline.root)

    def finalize(self, dataset: Dataset) -> list[Binding]:
        """Quiescence flush through the active plan, deduplicated."""
        return self._dedupe(self._pipeline.finalize(dataset))

    def advance(self, dataset: Dataset) -> list[Binding]:
        produced = self._dedupe(self._pipeline.advance(dataset))
        self._deltas_seen += 1
        if (
            self.replans < self._max_replans
            and self._deltas_seen % self._check_interval == 0
        ):
            produced.extend(self._maybe_replan(dataset))
        return produced

    # -- internals ------------------------------------------------------------

    def _compile(self, order: Optional[list]) -> Pipeline:
        if order is None:
            def bgp_order(patterns):
                chosen = plan_bgp_order(patterns, seed_iris=self._seed_iris)
                self._current_order = chosen
                return chosen
        else:
            def bgp_order(patterns):
                # Map the stored order onto this BGP's pattern objects.
                by_key = {self._pattern_key(p): p for p in patterns}
                chosen = [
                    by_key[self._pattern_key(p)]
                    for p in order
                    if self._pattern_key(p) in by_key
                ]
                leftover = [p for p in patterns if p not in chosen]
                chosen.extend(leftover)
                self._current_order = chosen
                return chosen

        if self._query is not None:
            return compile_query_pipeline(
                self._query, seed_iris=self._seed_iris, bgp_order=bgp_order
            )
        return compile_pipeline(self._where, seed_iris=self._seed_iris, bgp_order=bgp_order)

    @staticmethod
    def _pattern_key(pattern) -> str:
        return str(pattern)

    def _dedupe(self, bindings: list[Binding]) -> list[Binding]:
        fresh = []
        for binding in bindings:
            if binding not in self._emitted:
                self._emitted.add(binding)
                fresh.append(binding)
        return fresh

    def _maybe_replan(self, dataset: Dataset) -> list[Binding]:
        order = self._current_order
        if not order or len(order) < 2:
            return []
        counts = [observed_cardinality(pattern, dataset) for pattern in order]
        best = min(counts)
        if best <= 0 or counts[0] <= best * self._replan_factor:
            return []  # current leader is fine

        better = _cardinality_order(order, dataset)
        if [self._pattern_key(p) for p in better] == [self._pattern_key(p) for p in order]:
            return []

        self.replans += 1
        self._retired_work += total_work(self._pipeline.root)
        self._pipeline = self._compile(order=better)
        if self._tracer is not None:
            self._tracer.instant(
                "replan", parent=self._trace_parent, replans=self.replans
            )
            self._pipeline.enable_tracing(self._tracer, self._trace_parent)
        # Replay everything fetched so far through the new plan; dedupe so
        # consumers never see repeated answers.
        return self._dedupe(self._pipeline.advance(dataset))
