"""Triples, quads, and triple patterns.

:class:`Triple` and :class:`Quad` are hand-rolled ``__slots__`` classes with
the hash computed once at construction (from the terms' own cached hashes),
because every insert into the dataset's three indexes and every membership
probe re-hashes the statement.  They are value-equal and must be treated as
immutable.  :class:`TriplePattern` stays a frozen dataclass — patterns are
built once per query, not per triple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from .terms import BlankNode, Literal, NamedNode, Term, Variable, term_to_ntriples

__all__ = ["Triple", "Quad", "TriplePattern", "SubjectTerm", "PredicateTerm", "ObjectTerm"]

SubjectTerm = Union[NamedNode, BlankNode]
PredicateTerm = NamedNode
ObjectTerm = Union[NamedNode, BlankNode, Literal]


class Triple:
    """An RDF triple (subject, predicate, object)."""

    __slots__ = ("subject", "predicate", "object", "_hash")

    def __init__(self, subject: SubjectTerm, predicate: PredicateTerm, object: ObjectTerm) -> None:
        self.subject = subject
        self.predicate = predicate
        self.object = object
        self._hash = hash((subject, predicate, object))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Triple:
            return (
                self.subject == other.subject  # type: ignore[attr-defined]
                and self.predicate == other.predicate  # type: ignore[attr-defined]
                and self.object == other.object  # type: ignore[attr-defined]
            )
        return NotImplemented

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def to_ntriples(self) -> str:
        return (
            f"{term_to_ntriples(self.subject)} "
            f"{term_to_ntriples(self.predicate)} "
            f"{term_to_ntriples(self.object)} ."
        )

    def __str__(self) -> str:
        return self.to_ntriples()

    def __repr__(self) -> str:
        return f"Triple({self.subject!r}, {self.predicate!r}, {self.object!r})"

    def __reduce__(self):
        # Rebuild through __init__: the cached hash is process-local (it
        # derives from salted string hashes), so it must be recomputed on
        # the receiving side rather than carried across as state.
        return (Triple, (self.subject, self.predicate, self.object))


class Quad:
    """An RDF quad: a triple plus the graph (document IRI) it came from."""

    __slots__ = ("subject", "predicate", "object", "graph", "_hash")

    def __init__(
        self,
        subject: SubjectTerm,
        predicate: PredicateTerm,
        object: ObjectTerm,
        graph: Optional[NamedNode] = None,
    ) -> None:
        self.subject = subject
        self.predicate = predicate
        self.object = object
        self.graph = graph
        self._hash = hash((subject, predicate, object, graph))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Quad:
            return (
                self.subject == other.subject  # type: ignore[attr-defined]
                and self.predicate == other.predicate  # type: ignore[attr-defined]
                and self.object == other.object  # type: ignore[attr-defined]
                and self.graph == other.graph  # type: ignore[attr-defined]
            )
        return NotImplemented

    @property
    def triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def to_nquads(self) -> str:
        parts = [
            term_to_ntriples(self.subject),
            term_to_ntriples(self.predicate),
            term_to_ntriples(self.object),
        ]
        if self.graph is not None:
            parts.append(term_to_ntriples(self.graph))
        return " ".join(parts) + " ."

    def __str__(self) -> str:
        return self.to_nquads()

    def __repr__(self) -> str:
        return f"Quad({self.subject!r}, {self.predicate!r}, {self.object!r}, {self.graph!r})"

    def __reduce__(self):
        return (Quad, (self.subject, self.predicate, self.object, self.graph))


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a :class:`Variable` or ``None``
    (wildcard).  Used both by the SPARQL algebra (variables) and by the
    dataset match API (``None`` wildcards)."""

    subject: Optional[Term]
    predicate: Optional[Term]
    object: Optional[Term]

    def variables(self) -> set[Variable]:
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)}

    def matches(self, triple: Triple) -> bool:
        """Positional match, treating variables and ``None`` as wildcards."""
        term = self.subject
        if term is not None and term.__class__ is not Variable and term != triple.subject:
            return False
        term = self.predicate
        if term is not None and term.__class__ is not Variable and term != triple.predicate:
            return False
        term = self.object
        if term is not None and term.__class__ is not Variable and term != triple.object:
            return False
        return True

    def __iter__(self) -> Iterator[Optional[Term]]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __str__(self) -> str:
        def render(term: Optional[Term]) -> str:
            return "_" if term is None else term_to_ntriples(term)

        return f"{render(self.subject)} {render(self.predicate)} {render(self.object)}"
