"""Triples, quads, and triple patterns."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Union

from .terms import BlankNode, Literal, NamedNode, Term, Variable, term_to_ntriples

__all__ = ["Triple", "Quad", "TriplePattern", "SubjectTerm", "PredicateTerm", "ObjectTerm"]

SubjectTerm = Union[NamedNode, BlankNode]
PredicateTerm = NamedNode
ObjectTerm = Union[NamedNode, BlankNode, Literal]


@dataclass(frozen=True, slots=True)
class Triple:
    """An RDF triple (subject, predicate, object)."""

    subject: SubjectTerm
    predicate: PredicateTerm
    object: ObjectTerm

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def to_ntriples(self) -> str:
        return (
            f"{term_to_ntriples(self.subject)} "
            f"{term_to_ntriples(self.predicate)} "
            f"{term_to_ntriples(self.object)} ."
        )

    def __str__(self) -> str:
        return self.to_ntriples()


@dataclass(frozen=True, slots=True)
class Quad:
    """An RDF quad: a triple plus the graph (document IRI) it came from."""

    subject: SubjectTerm
    predicate: PredicateTerm
    object: ObjectTerm
    graph: Optional[NamedNode] = None

    @property
    def triple(self) -> Triple:
        return Triple(self.subject, self.predicate, self.object)

    def __iter__(self) -> Iterator[Term]:
        yield self.subject
        yield self.predicate
        yield self.object

    def to_nquads(self) -> str:
        parts = [
            term_to_ntriples(self.subject),
            term_to_ntriples(self.predicate),
            term_to_ntriples(self.object),
        ]
        if self.graph is not None:
            parts.append(term_to_ntriples(self.graph))
        return " ".join(parts) + " ."

    def __str__(self) -> str:
        return self.to_nquads()


@dataclass(frozen=True, slots=True)
class TriplePattern:
    """A triple pattern: any position may be a :class:`Variable` or ``None``
    (wildcard).  Used both by the SPARQL algebra (variables) and by the
    dataset match API (``None`` wildcards)."""

    subject: Optional[Term]
    predicate: Optional[Term]
    object: Optional[Term]

    def variables(self) -> set[Variable]:
        return {t for t in (self.subject, self.predicate, self.object) if isinstance(t, Variable)}

    def matches(self, triple: Triple) -> bool:
        """Positional match, treating variables and ``None`` as wildcards."""
        for pattern_term, data_term in zip(self, triple):
            if pattern_term is None or isinstance(pattern_term, Variable):
                continue
            if pattern_term != data_term:
                return False
        return True

    def __iter__(self) -> Iterator[Optional[Term]]:
        yield self.subject
        yield self.predicate
        yield self.object

    def __str__(self) -> str:
        def render(term: Optional[Term]) -> str:
            return "_" if term is None else term_to_ntriples(term)

        return f"{render(self.subject)} {render(self.predicate)} {render(self.object)}"
