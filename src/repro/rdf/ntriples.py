"""N-Triples / N-Quads line-based parsing and serialization."""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Optional

from .terms import (
    XSD_STRING,
    BlankNode,
    Literal,
    NamedNode,
    intern_iri,
    unescape_string_literal,
)
from .triples import ObjectTerm, Quad, SubjectTerm, Triple

__all__ = [
    "NTriplesParseError",
    "parse_ntriples",
    "parse_nquads",
    "serialize_ntriples",
    "serialize_nquads",
]

_IRI_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_BNODE_RE = re.compile(r"_:([A-Za-z0-9_\-.]+)")
_LITERAL_RE = re.compile(
    r'"((?:[^"\\]|\\.)*)"'
    r"(?:@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)|\^\^<([^<>\s]*)>)?"
)


class NTriplesParseError(ValueError):
    """Raised on malformed N-Triples/N-Quads input."""

    def __init__(self, message: str, line_number: int) -> None:
        super().__init__(f"{message} (line {line_number})")
        self.line_number = line_number


def _parse_term(line: str, pos: int, line_number: int) -> tuple[object, int]:
    while pos < len(line) and line[pos] in " \t":
        pos += 1
    if pos >= len(line):
        raise NTriplesParseError("unexpected end of line", line_number)
    char = line[pos]
    if char == "<":
        match = _IRI_RE.match(line, pos)
        if not match:
            raise NTriplesParseError("malformed IRI", line_number)
        value = match.group(1)
        if "\\" in value:
            value = unescape_string_literal(value)
        return intern_iri(value), match.end()
    if char == "_":
        match = _BNODE_RE.match(line, pos)
        if not match:
            raise NTriplesParseError("malformed blank node", line_number)
        return BlankNode(match.group(1)), match.end()
    if char == '"':
        match = _LITERAL_RE.match(line, pos)
        if not match:
            raise NTriplesParseError("malformed literal", line_number)
        value = unescape_string_literal(match.group(1))
        language = match.group(2) or ""
        datatype = match.group(3) or ""
        if language:
            return Literal(value, language=language), match.end()
        if datatype:
            return Literal(value, datatype=datatype), match.end()
        return Literal(value, datatype=XSD_STRING), match.end()
    raise NTriplesParseError(f"unexpected character {char!r}", line_number)


def _parse_line(
    line: str, line_number: int, allow_graph: bool
) -> Optional[tuple[SubjectTerm, NamedNode, ObjectTerm, Optional[NamedNode]]]:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    subject, pos = _parse_term(line, 0, line_number)
    predicate, pos = _parse_term(line, pos, line_number)
    obj, pos = _parse_term(line, pos, line_number)
    graph: Optional[NamedNode] = None
    rest = line[pos:].strip()
    if allow_graph and rest.startswith("<"):
        match = _IRI_RE.match(rest)
        if not match:
            raise NTriplesParseError("malformed graph IRI", line_number)
        graph = intern_iri(match.group(1))
        rest = rest[match.end():].strip()
    if rest != ".":
        raise NTriplesParseError("expected terminating '.'", line_number)
    if not isinstance(subject, (NamedNode, BlankNode)):
        raise NTriplesParseError("literal subject not allowed", line_number)
    if not isinstance(predicate, NamedNode):
        raise NTriplesParseError("predicate must be an IRI", line_number)
    return subject, predicate, obj, graph  # type: ignore[return-value]


def parse_ntriples(text: str) -> Iterator[Triple]:
    """Parse N-Triples text, yielding triples line by line.

    Lines are split on ``\n`` only — ``str.splitlines`` would also split on
    Unicode separators (U+001E, U+2028, ...) that may occur raw inside
    literals.
    """
    for line_number, line in enumerate(text.split("\n"), start=1):
        parsed = _parse_line(line, line_number, allow_graph=False)
        if parsed is not None:
            subject, predicate, obj, _ = parsed
            yield Triple(subject, predicate, obj)


def parse_nquads(text: str) -> Iterator[Quad]:
    """Parse N-Quads text, yielding quads line by line."""
    for line_number, line in enumerate(text.split("\n"), start=1):
        parsed = _parse_line(line, line_number, allow_graph=True)
        if parsed is not None:
            subject, predicate, obj, graph = parsed
            yield Quad(subject, predicate, obj, graph)


def serialize_ntriples(triples: Iterable[Triple]) -> str:
    """Serialize triples to N-Triples text (one statement per line)."""
    return "".join(t.to_ntriples() + "\n" for t in triples)


def serialize_nquads(quads: Iterable[Quad]) -> str:
    """Serialize quads to N-Quads text (one statement per line)."""
    return "".join(q.to_nquads() + "\n" for q in quads)
