"""TriG parsing: Turtle plus named-graph blocks.

Supports the TriG constructs relevant to dataset exchange:

* plain Turtle statements (default graph)
* ``{ ... }`` default-graph blocks
* ``<graph> { ... }`` / ``prefix:name { ... }`` labelled blocks
* ``GRAPH <graph> { ... }`` (SPARQL-style keyword)

Everything inside a block is full Turtle (lists, blank nodes, literals),
reusing :class:`~repro.rdf.turtle.TurtleParser` — blocks simply decide
which graph the parsed triples land in.
"""

from __future__ import annotations

from typing import Optional

from .terms import NamedNode
from .triples import Quad
from .turtle import TurtleParseError, TurtleParser

__all__ = ["TriGParser", "parse_trig"]


class TriGParser(TurtleParser):
    """Parses a TriG document into quads."""

    def __init__(self, text: str, base_iri: str = "", bnode_prefix: str = "b") -> None:
        super().__init__(text, base_iri=base_iri, bnode_prefix=bnode_prefix)
        self._quads: list[Quad] = []

    def parse_quads(self) -> list[Quad]:
        """Parse the whole document, returning quads in order."""
        self._skip_ws()
        while self._pos < self._length:
            self._parse_trig_statement()
            self._skip_ws()
        return self._quads

    # ------------------------------------------------------------------

    def _parse_trig_statement(self) -> None:
        if self._peek_is("@prefix"):
            self._expect_token("@prefix")
            self._parse_prefix_directive(require_dot=True)
            return
        if self._peek_is("@base"):
            self._expect_token("@base")
            self._parse_base_directive(require_dot=True)
            return
        if self._peek_keyword_ci("PREFIX"):
            self._parse_prefix_directive(require_dot=False)
            return
        if self._peek_keyword_ci("BASE"):
            self._parse_base_directive(require_dot=False)
            return
        if self._peek_keyword_ci("GRAPH"):
            self._skip_ws()
            graph = self._read_graph_label()
            self._parse_graph_block(graph)
            return
        if self._peek_char() == "{":
            self._parse_graph_block(None)
            return

        # Either "<label> { ... }" or a plain default-graph Turtle statement.
        checkpoint = self._pos
        char = self._peek_char()
        if char == "<" or (char not in "[(_\"'0123456789+-." and not self._peek_is("true") and not self._peek_is("false")):
            try:
                graph = self._read_graph_label()
            except TurtleParseError:
                self._pos = checkpoint
            else:
                self._skip_ws()
                if self._peek_char(eof_ok=True) == "{":
                    self._parse_graph_block(graph)
                    return
                self._pos = checkpoint  # it was a subject, not a label

        self._parse_triples_block()
        self._drain(None)

    def _read_graph_label(self) -> NamedNode:
        char = self._peek_char()
        if char == "<":
            return NamedNode(self._read_iriref())
        return self._read_prefixed_name()

    def _parse_graph_block(self, graph: Optional[NamedNode]) -> None:
        self._skip_ws()
        self._expect_char("{")
        self._skip_ws()
        while self._peek_char() != "}":
            subject = self._parse_subject_entry()
            self._skip_ws()
            if self._peek_char() == ".":
                self._advance()
                self._skip_ws()
            del subject
        self._advance()  # consume "}"
        self._drain(graph)

    def _parse_subject_entry(self) -> None:
        """One triples statement inside a block (final '.' optional)."""
        char = self._peek_char()
        if char == "[":
            subject = self._parse_blank_node_property_list()
            self._skip_ws()
            if self._peek_char() not in ".}":
                self._parse_predicate_object_list(subject)
        elif char == "(":
            subject = self._parse_collection()
            self._skip_ws()
            self._parse_predicate_object_list(subject)
        else:
            subject = self._parse_subject()
            self._skip_ws()
            self._parse_predicate_object_list(subject)

    def _drain(self, graph: Optional[NamedNode]) -> None:
        for triple in self._triples:
            self._quads.append(Quad(triple.subject, triple.predicate, triple.object, graph))
        self._triples.clear()


def parse_trig(text: str, base_iri: str = "", bnode_prefix: str = "b") -> list[Quad]:
    """Parse a TriG document into a list of quads."""
    return TriGParser(text, base_iri=base_iri, bnode_prefix=bnode_prefix).parse_quads()
