"""RDF graph isomorphism (blank-node-respecting equality).

Two RDF graphs are isomorphic when a bijection between their blank nodes
makes them equal — the right notion of equality for round-trip tests and
document comparison, where blank node labels are arbitrary.

The implementation uses iterative colour refinement (signature hashing) to
narrow candidate bijections, then backtracking over the (usually tiny)
remaining choices.  Exponential in the worst case — as every isomorphism
check is — but instantaneous on real-world documents.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from .terms import BlankNode, Term
from .triples import Triple

__all__ = ["isomorphic", "find_bnode_bijection"]


def _partition(triples: Iterable[Triple]):
    """Split into ground triples and blank-node-involving triples."""
    ground: set[Triple] = set()
    with_bnodes: list[Triple] = []
    for triple in triples:
        if isinstance(triple.subject, BlankNode) or isinstance(triple.object, BlankNode):
            with_bnodes.append(triple)
        else:
            ground.add(triple)
    return ground, with_bnodes


def _signatures(triples: list[Triple], rounds: int = 3) -> dict[BlankNode, int]:
    """Colour refinement: stable hash per blank node from its neighbourhood."""
    colors: dict[BlankNode, int] = defaultdict(int)
    for _ in range(rounds):
        next_colors: dict[BlankNode, int] = {}
        for node in _bnodes_of(triples):
            parts: list[int] = [colors[node]]
            for triple in triples:
                if triple.subject == node:
                    other = triple.object
                    parts.append(
                        hash(("out", triple.predicate,
                              colors[other] if isinstance(other, BlankNode) else other))
                    )
                if triple.object == node:
                    other = triple.subject
                    parts.append(
                        hash(("in", triple.predicate,
                              colors[other] if isinstance(other, BlankNode) else other))
                    )
            next_colors[node] = hash(tuple(sorted(parts)))
        colors = defaultdict(int, next_colors)
    return dict(colors)


def _bnodes_of(triples: Iterable[Triple]) -> set[BlankNode]:
    nodes: set[BlankNode] = set()
    for triple in triples:
        if isinstance(triple.subject, BlankNode):
            nodes.add(triple.subject)
        if isinstance(triple.object, BlankNode):
            nodes.add(triple.object)
    return nodes


def _substitute(triple: Triple, mapping: dict[BlankNode, BlankNode]) -> Triple:
    subject = mapping.get(triple.subject, triple.subject) if isinstance(
        triple.subject, BlankNode
    ) else triple.subject
    object_term = mapping.get(triple.object, triple.object) if isinstance(
        triple.object, BlankNode
    ) else triple.object
    return Triple(subject, triple.predicate, object_term)


def find_bnode_bijection(
    first: Iterable[Triple], second: Iterable[Triple]
) -> Optional[dict[BlankNode, BlankNode]]:
    """A blank-node bijection making the graphs equal, or ``None``.

    The returned mapping maps blank nodes of ``first`` onto blank nodes of
    ``second``.
    """
    ground_a, bnode_a = _partition(first)
    ground_b, bnode_b = _partition(second)
    if ground_a != ground_b or len(bnode_a) != len(bnode_b):
        return None

    nodes_a = sorted(_bnodes_of(bnode_a), key=lambda n: n.value)
    nodes_b = _bnodes_of(bnode_b)
    if len(nodes_a) != len(nodes_b):
        return None
    if not nodes_a:
        return {}

    colors_a = _signatures(bnode_a)
    colors_b = _signatures(bnode_b)
    by_color_b: dict[int, list[BlankNode]] = defaultdict(list)
    for node in nodes_b:
        by_color_b[colors_b[node]].append(node)

    target = set(bnode_b)

    def backtrack(index: int, mapping: dict[BlankNode, BlankNode], used: set[BlankNode]):
        if index == len(nodes_a):
            translated = {_substitute(t, mapping) for t in bnode_a}
            return dict(mapping) if translated == target else None
        node = nodes_a[index]
        for candidate in by_color_b.get(colors_a[node], ()):
            if candidate in used:
                continue
            mapping[node] = candidate
            used.add(candidate)
            result = backtrack(index + 1, mapping, used)
            if result is not None:
                return result
            used.discard(candidate)
            del mapping[node]
        return None

    return backtrack(0, {}, set())


def isomorphic(first: Iterable[Triple], second: Iterable[Triple]) -> bool:
    """True when the two triple collections are RDF-isomorphic."""
    return find_bnode_bijection(list(first), list(second)) is not None
