"""RDF term model.

Immutable, hashable term classes following the RDF 1.1 abstract syntax:
:class:`NamedNode` (IRIs), :class:`BlankNode`, :class:`Literal`, and the
SPARQL-only :class:`Variable`.  Terms compare by value, are usable as
dictionary keys, and render to their N-Triples / SPARQL surface syntax via
:func:`term_to_ntriples`.

The module also provides typed-literal helpers (:func:`literal_from_python`,
:meth:`Literal.to_python`) covering the XSD types used by SolidBench data:
strings, booleans, integers/longs, decimals, doubles, dates and dateTimes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from datetime import date, datetime, timezone
from decimal import Decimal
from typing import Union

__all__ = [
    "Term",
    "NamedNode",
    "BlankNode",
    "Literal",
    "Variable",
    "XSD",
    "RDF_LANGSTRING",
    "XSD_STRING",
    "XSD_BOOLEAN",
    "XSD_INTEGER",
    "XSD_LONG",
    "XSD_INT",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_FLOAT",
    "XSD_DATE",
    "XSD_DATETIME",
    "literal_from_python",
    "term_to_ntriples",
    "escape_string_literal",
    "unescape_string_literal",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_BOOLEAN = XSD + "boolean"
XSD_INTEGER = XSD + "integer"
XSD_LONG = XSD + "long"
XSD_INT = XSD + "int"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_FLOAT = XSD + "float"
XSD_DATE = XSD + "date"
XSD_DATETIME = XSD + "dateTime"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_LONG,
        XSD_INT,
        XSD_DECIMAL,
        XSD_DOUBLE,
        XSD_FLOAT,
        XSD + "short",
        XSD + "byte",
        XSD + "nonNegativeInteger",
        XSD + "nonPositiveInteger",
        XSD + "negativeInteger",
        XSD + "positiveInteger",
        XSD + "unsignedLong",
        XSD + "unsignedInt",
        XSD + "unsignedShort",
        XSD + "unsignedByte",
    }
)

_INTEGER_DATATYPES = _NUMERIC_DATATYPES - {XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}


@dataclass(frozen=True, slots=True)
class NamedNode:
    """An IRI reference term.

    The ``value`` is stored as given; callers are expected to pass absolute
    IRIs (relative resolution happens in the parsers).
    """

    value: str

    def __str__(self) -> str:
        return f"<{self.value}>"

    def __repr__(self) -> str:
        return f"NamedNode({self.value!r})"


@dataclass(frozen=True, slots=True)
class BlankNode:
    """A blank node with a document/store-scoped label."""

    value: str

    def __str__(self) -> str:
        return f"_:{self.value}"

    def __repr__(self) -> str:
        return f"BlankNode({self.value!r})"


@dataclass(frozen=True, slots=True)
class Variable:
    """A SPARQL variable (``?name``); never appears in stored data."""

    value: str

    def __str__(self) -> str:
        return f"?{self.value}"

    def __repr__(self) -> str:
        return f"Variable({self.value!r})"


@dataclass(frozen=True, slots=True)
class Literal:
    """An RDF literal with lexical form, optional language tag and datatype.

    Plain literals default to ``xsd:string``; language-tagged literals get
    ``rdf:langString`` per RDF 1.1.
    """

    value: str
    language: str = ""
    datatype: str = field(default=XSD_STRING)

    def __post_init__(self) -> None:
        if self.language:
            object.__setattr__(self, "language", self.language.lower())
            object.__setattr__(self, "datatype", RDF_LANGSTRING)

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    @property
    def is_integer(self) -> bool:
        return self.datatype in _INTEGER_DATATYPES

    def to_python(self) -> Union[str, int, float, bool, Decimal, date, datetime]:
        """Convert to the closest native Python value.

        Raises :class:`ValueError` when the lexical form is invalid for the
        datatype (ill-typed literal).
        """
        dt = self.datatype
        if dt in _INTEGER_DATATYPES:
            return int(self.value)
        if dt == XSD_DECIMAL:
            return Decimal(self.value)
        if dt in (XSD_DOUBLE, XSD_FLOAT):
            return float(self.value)
        if dt == XSD_BOOLEAN:
            if self.value in ("true", "1"):
                return True
            if self.value in ("false", "0"):
                return False
            raise ValueError(f"invalid xsd:boolean lexical form: {self.value!r}")
        if dt == XSD_DATETIME:
            return _parse_datetime(self.value)
        if dt == XSD_DATE:
            return date.fromisoformat(self.value)
        return self.value

    def __str__(self) -> str:
        return term_to_ntriples(self)

    def __repr__(self) -> str:
        if self.language:
            return f"Literal({self.value!r}, language={self.language!r})"
        if self.datatype != XSD_STRING:
            return f"Literal({self.value!r}, datatype={self.datatype!r})"
        return f"Literal({self.value!r})"


Term = Union[NamedNode, BlankNode, Literal, Variable]


def _parse_datetime(lexical: str) -> datetime:
    """Parse an ``xsd:dateTime`` lexical form, handling trailing ``Z``."""
    text = lexical
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def literal_from_python(value: Union[str, int, float, bool, Decimal, date, datetime]) -> Literal:
    """Build a typed literal from a native Python value."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, Decimal):
        return Literal(str(value), datatype=XSD_DECIMAL)
    if isinstance(value, datetime):
        return Literal(value.isoformat(), datatype=XSD_DATETIME)
    if isinstance(value, date):
        return Literal(value.isoformat(), datatype=XSD_DATE)
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to an RDF literal")


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
}

_UNESCAPES = {
    "\\": "\\",
    '"': '"',
    "'": "'",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
}

_ESCAPE_RE = re.compile(r'[\\"\n\r\t\b\f]')
_UNESCAPE_RE = re.compile(r"\\(u[0-9a-fA-F]{4}|U[0-9a-fA-F]{8}|.)")


def escape_string_literal(text: str) -> str:
    """Escape a string for inclusion in a double-quoted Turtle/N-Triples literal."""
    return _ESCAPE_RE.sub(lambda match: _ESCAPES[match.group(0)], text)


def unescape_string_literal(text: str) -> str:
    """Reverse :func:`escape_string_literal`, including ``\\uXXXX`` forms."""

    def _sub(match: re.Match[str]) -> str:
        body = match.group(1)
        if body[0] in "uU":
            return chr(int(body[1:], 16))
        if body in _UNESCAPES:
            return _UNESCAPES[body]
        raise ValueError(f"invalid escape sequence: \\{body}")

    return _UNESCAPE_RE.sub(_sub, text)


def term_to_ntriples(term: Term) -> str:
    """Serialize a term to N-Triples surface syntax (SPARQL syntax for variables)."""
    if isinstance(term, NamedNode):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.value}"
    if isinstance(term, Variable):
        return f"?{term.value}"
    if isinstance(term, Literal):
        body = f'"{escape_string_literal(term.value)}"'
        if term.language:
            return f"{body}@{term.language}"
        if term.datatype and term.datatype != XSD_STRING:
            return f"{body}^^<{term.datatype}>"
        return body
    raise TypeError(f"not an RDF term: {term!r}")
