"""RDF term model.

Immutable, hashable term classes following the RDF 1.1 abstract syntax:
:class:`NamedNode` (IRIs), :class:`BlankNode`, :class:`Literal`, and the
SPARQL-only :class:`Variable`.  Terms compare by value, are usable as
dictionary keys, and render to their N-Triples / SPARQL surface syntax via
:func:`term_to_ntriples`.

Terms sit on the engine's hottest path: every triple insert hashes its
three terms into the SPO/POS/OSP indexes, and every delta match hashes
them again into bindings and join tables.  The classes here are therefore
hand-rolled ``__slots__`` classes (not dataclasses) with the hash computed
once at construction and stored, and with identity short-circuits in
``__eq__``.  Nothing mutates a term after construction; treat them as
frozen.

:func:`intern_iri` / :func:`intern` provide a bounded intern pool so bulk
producers (the Turtle/N-Triples parsers, the SolidBench generator, the
namespace factories) share one object per distinct IRI instead of
allocating millions of duplicates.

The module also provides typed-literal helpers (:func:`literal_from_python`,
:meth:`Literal.to_python`) covering the XSD types used by SolidBench data:
strings, booleans, integers/longs, decimals, doubles, dates and dateTimes.
"""

from __future__ import annotations

import re
from datetime import date, datetime, timezone
from decimal import Decimal
from typing import Union

__all__ = [
    "Term",
    "NamedNode",
    "BlankNode",
    "Literal",
    "Variable",
    "XSD",
    "RDF_LANGSTRING",
    "XSD_STRING",
    "XSD_BOOLEAN",
    "XSD_INTEGER",
    "XSD_LONG",
    "XSD_INT",
    "XSD_DECIMAL",
    "XSD_DOUBLE",
    "XSD_FLOAT",
    "XSD_DATE",
    "XSD_DATETIME",
    "intern",
    "intern_iri",
    "intern_pool_stats",
    "clear_intern_pools",
    "literal_from_python",
    "term_to_ntriples",
    "escape_string_literal",
    "unescape_string_literal",
]

XSD = "http://www.w3.org/2001/XMLSchema#"
XSD_STRING = XSD + "string"
XSD_BOOLEAN = XSD + "boolean"
XSD_INTEGER = XSD + "integer"
XSD_LONG = XSD + "long"
XSD_INT = XSD + "int"
XSD_DECIMAL = XSD + "decimal"
XSD_DOUBLE = XSD + "double"
XSD_FLOAT = XSD + "float"
XSD_DATE = XSD + "date"
XSD_DATETIME = XSD + "dateTime"
RDF_LANGSTRING = "http://www.w3.org/1999/02/22-rdf-syntax-ns#langString"

_NUMERIC_DATATYPES = frozenset(
    {
        XSD_INTEGER,
        XSD_LONG,
        XSD_INT,
        XSD_DECIMAL,
        XSD_DOUBLE,
        XSD_FLOAT,
        XSD + "short",
        XSD + "byte",
        XSD + "nonNegativeInteger",
        XSD + "nonPositiveInteger",
        XSD + "negativeInteger",
        XSD + "positiveInteger",
        XSD + "unsignedLong",
        XSD + "unsignedInt",
        XSD + "unsignedShort",
        XSD + "unsignedByte",
    }
)

_INTEGER_DATATYPES = _NUMERIC_DATATYPES - {XSD_DECIMAL, XSD_DOUBLE, XSD_FLOAT}


# Per-class hash salts keep equal-valued terms of different kinds (e.g.
# NamedNode("x") vs BlankNode("x")) from landing in the same hash bucket.
_NAMED_SALT = 0x5B1D_9E37
_BLANK_SALT = 0x2F0C_63A5
_VARIABLE_SALT = 0x7A3D_11C9


class NamedNode:
    """An IRI reference term.

    The ``value`` is stored as given; callers are expected to pass absolute
    IRIs (relative resolution happens in the parsers).
    """

    __slots__ = ("value", "_hash")

    def __init__(self, value: str) -> None:
        self.value = value
        self._hash = hash(value) ^ _NAMED_SALT

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is NamedNode:
            return self.value == other.value  # type: ignore[attr-defined]
        return NotImplemented

    def __str__(self) -> str:
        return f"<{self.value}>"

    def __repr__(self) -> str:
        return f"NamedNode({self.value!r})"

    def __reduce__(self):
        # Pickle as a call to :func:`intern_iri`, never as raw state: the
        # stored ``_hash`` is salted by the *sending* process's string
        # hash randomization, so the receiving side must recompute it —
        # and re-interning means every deserialized occurrence of an IRI
        # shares one object in the receiver's pool.
        return (intern_iri, (self.value,))


class BlankNode:
    """A blank node with a document/store-scoped label."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: str) -> None:
        self.value = value
        self._hash = hash(value) ^ _BLANK_SALT

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is BlankNode:
            return self.value == other.value  # type: ignore[attr-defined]
        return NotImplemented

    def __str__(self) -> str:
        return f"_:{self.value}"

    def __repr__(self) -> str:
        return f"BlankNode({self.value!r})"

    def __reduce__(self):
        # Reconstruct through __init__ so the hash is recomputed with the
        # receiving process's string salt (see NamedNode.__reduce__).
        return (BlankNode, (self.value,))


class Variable:
    """A SPARQL variable (``?name``); never appears in stored data."""

    __slots__ = ("value", "_hash")

    def __init__(self, value: str) -> None:
        self.value = value
        self._hash = hash(value) ^ _VARIABLE_SALT

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Variable:
            return self.value == other.value  # type: ignore[attr-defined]
        return NotImplemented

    def __str__(self) -> str:
        return f"?{self.value}"

    def __repr__(self) -> str:
        return f"Variable({self.value!r})"

    def __reduce__(self):
        return (Variable, (self.value,))


class Literal:
    """An RDF literal with lexical form, optional language tag and datatype.

    Plain literals default to ``xsd:string``; language-tagged literals get
    ``rdf:langString`` per RDF 1.1.
    """

    __slots__ = ("value", "language", "datatype", "_hash")

    def __init__(self, value: str, language: str = "", datatype: str = XSD_STRING) -> None:
        self.value = value
        if language:
            language = language.lower()
            datatype = RDF_LANGSTRING
        self.language = language
        self.datatype = datatype
        self._hash = hash((value, language, datatype))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if other.__class__ is Literal:
            return (
                self.value == other.value  # type: ignore[attr-defined]
                and self.language == other.language  # type: ignore[attr-defined]
                and self.datatype == other.datatype  # type: ignore[attr-defined]
            )
        return NotImplemented

    @property
    def is_numeric(self) -> bool:
        return self.datatype in _NUMERIC_DATATYPES

    @property
    def is_integer(self) -> bool:
        return self.datatype in _INTEGER_DATATYPES

    def to_python(self) -> Union[str, int, float, bool, Decimal, date, datetime]:
        """Convert to the closest native Python value.

        Raises :class:`ValueError` when the lexical form is invalid for the
        datatype (ill-typed literal).
        """
        dt = self.datatype
        if dt in _INTEGER_DATATYPES:
            return int(self.value)
        if dt == XSD_DECIMAL:
            return Decimal(self.value)
        if dt in (XSD_DOUBLE, XSD_FLOAT):
            return float(self.value)
        if dt == XSD_BOOLEAN:
            if self.value in ("true", "1"):
                return True
            if self.value in ("false", "0"):
                return False
            raise ValueError(f"invalid xsd:boolean lexical form: {self.value!r}")
        if dt == XSD_DATETIME:
            return _parse_datetime(self.value)
        if dt == XSD_DATE:
            return date.fromisoformat(self.value)
        return self.value

    def __reduce__(self):
        # ``language`` re-coerces the datatype to rdf:langString in
        # __init__, so passing both back is lossless.
        return (Literal, (self.value, self.language, self.datatype))

    def __str__(self) -> str:
        return term_to_ntriples(self)

    def __repr__(self) -> str:
        if self.language:
            return f"Literal({self.value!r}, language={self.language!r})"
        if self.datatype != XSD_STRING:
            return f"Literal({self.value!r}, datatype={self.datatype!r})"
        return f"Literal({self.value!r})"


Term = Union[NamedNode, BlankNode, Literal, Variable]


# ---------------------------------------------------------------------------
# interning
# ---------------------------------------------------------------------------

#: Upper bound on each intern pool.  Past this the pools stop growing (new
#: terms are still constructed, just not shared) — a safety valve for
#: adversarial workloads with unbounded distinct IRIs.
INTERN_POOL_LIMIT = 1 << 20

_IRI_POOL: dict[str, NamedNode] = {}
_TERM_POOL: dict[Term, Term] = {}


def intern_iri(value: str) -> NamedNode:
    """Return the canonical :class:`NamedNode` for ``value``.

    Repeated calls with the same IRI string return the *same* object, so
    equality checks short-circuit on identity and the hash is computed only
    once per distinct IRI across the whole process.  The pool is bounded by
    :data:`INTERN_POOL_LIMIT`.
    """
    node = _IRI_POOL.get(value)
    if node is None:
        node = NamedNode(value)
        if len(_IRI_POOL) < INTERN_POOL_LIMIT:
            _IRI_POOL[value] = node
    return node


def intern(term: Term) -> Term:
    """Return the canonical instance of any term (value- and type-equal).

    :class:`NamedNode` interning goes through the dedicated string-keyed
    pool (cheaper lookups); other term kinds share a generic pool.  Interned
    and non-interned terms compare and hash identically — interning is purely
    a memory/speed optimisation.
    """
    if term.__class__ is NamedNode:
        return intern_iri(term.value)
    canonical = _TERM_POOL.get(term)
    if canonical is None:
        canonical = term
        if len(_TERM_POOL) < INTERN_POOL_LIMIT:
            _TERM_POOL[term] = term
    return canonical


def intern_pool_stats() -> dict[str, int]:
    """Sizes of the intern pools (for diagnostics and benchmarks)."""
    return {"iris": len(_IRI_POOL), "terms": len(_TERM_POOL), "limit": INTERN_POOL_LIMIT}


def clear_intern_pools() -> None:
    """Drop all interned terms (tests and memory-pressure escape hatch)."""
    _IRI_POOL.clear()
    _TERM_POOL.clear()


def _parse_datetime(lexical: str) -> datetime:
    """Parse an ``xsd:dateTime`` lexical form, handling trailing ``Z``."""
    text = lexical
    if text.endswith("Z"):
        text = text[:-1] + "+00:00"
    parsed = datetime.fromisoformat(text)
    if parsed.tzinfo is None:
        parsed = parsed.replace(tzinfo=timezone.utc)
    return parsed


def literal_from_python(value: Union[str, int, float, bool, Decimal, date, datetime]) -> Literal:
    """Build a typed literal from a native Python value."""
    if isinstance(value, bool):
        return Literal("true" if value else "false", datatype=XSD_BOOLEAN)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, float):
        return Literal(repr(value), datatype=XSD_DOUBLE)
    if isinstance(value, Decimal):
        return Literal(str(value), datatype=XSD_DECIMAL)
    if isinstance(value, datetime):
        return Literal(value.isoformat(), datatype=XSD_DATETIME)
    if isinstance(value, date):
        return Literal(value.isoformat(), datatype=XSD_DATE)
    if isinstance(value, str):
        return Literal(value)
    raise TypeError(f"cannot convert {type(value).__name__} to an RDF literal")


_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\r": "\\r",
    "\t": "\\t",
    "\b": "\\b",
    "\f": "\\f",
}

_UNESCAPES = {
    "\\": "\\",
    '"': '"',
    "'": "'",
    "n": "\n",
    "r": "\r",
    "t": "\t",
    "b": "\b",
    "f": "\f",
}

_ESCAPE_RE = re.compile(r'[\\"\n\r\t\b\f]')
_UNESCAPE_RE = re.compile(r"\\(u[0-9a-fA-F]{4}|U[0-9a-fA-F]{8}|.)")


def escape_string_literal(text: str) -> str:
    """Escape a string for inclusion in a double-quoted Turtle/N-Triples literal."""
    return _ESCAPE_RE.sub(lambda match: _ESCAPES[match.group(0)], text)


def unescape_string_literal(text: str) -> str:
    """Reverse :func:`escape_string_literal`, including ``\\uXXXX`` forms."""

    def _sub(match: re.Match[str]) -> str:
        body = match.group(1)
        if body[0] in "uU":
            return chr(int(body[1:], 16))
        if body in _UNESCAPES:
            return _UNESCAPES[body]
        raise ValueError(f"invalid escape sequence: \\{body}")

    return _UNESCAPE_RE.sub(_sub, text)


def term_to_ntriples(term: Term) -> str:
    """Serialize a term to N-Triples surface syntax (SPARQL syntax for variables)."""
    if isinstance(term, NamedNode):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.value}"
    if isinstance(term, Variable):
        return f"?{term.value}"
    if isinstance(term, Literal):
        body = f'"{escape_string_literal(term.value)}"'
        if term.language:
            return f"{body}@{term.language}"
        if term.datatype and term.datatype != XSD_STRING:
            return f"{body}^^<{term.datatype}>"
        return body
    raise TypeError(f"not an RDF term: {term!r}")
