"""A recursive-descent Turtle parser.

Supports the Turtle constructs that appear in Solid pods and SolidBench
data — which is nearly the whole language:

* ``@prefix`` / ``@base`` and SPARQL-style ``PREFIX`` / ``BASE``
* IRIs (with relative-reference resolution against the base), prefixed names
* the ``a`` keyword
* predicate-object lists (``;``) and object lists (``,``)
* literals: short/long quoted strings (single and double quotes), language
  tags, datatype annotations, numeric shorthands (integer, decimal, double),
  booleans
* blank node labels (``_:b``), anonymous blank nodes (``[ ... ]``)
* RDF collections (``( ... )``)
* comments

Parse errors raise :class:`TurtleParseError` carrying line/column context.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional
from urllib.parse import urljoin

from .terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    BlankNode,
    Literal,
    NamedNode,
    intern_iri,
    unescape_string_literal,
)
from .namespaces import RDF
from .triples import ObjectTerm, SubjectTerm, Triple

__all__ = ["TurtleParseError", "TurtleParser", "parse_turtle"]

_RDF_FIRST = RDF.first
_RDF_REST = RDF.rest
_RDF_NIL = RDF.nil
_RDF_TYPE = RDF.type

# PN_CHARS_BASE approximation: broad enough for real-world Turtle, including
# the full Unicode letter ranges Turtle permits.
_PN_LOCAL_RE = re.compile(r"[0-9A-Za-z_\-.%À-￿:]*")
_PREFIX_NAME_RE = re.compile(r"[A-Za-z0-9_\-.À-￿]*")
_NUMBER_RE = re.compile(
    r"[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)"
)
_LANGTAG_RE = re.compile(r"@[a-zA-Z]+(?:-[a-zA-Z0-9]+)*")
_BLANK_LABEL_RE = re.compile(r"_:[A-Za-z0-9_\-.À-￿]+")
_IRIREF_RE = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")


class TurtleParseError(ValueError):
    """Raised on malformed Turtle input, with 1-based line/column info."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class TurtleParser:
    """Single-document Turtle parser producing :class:`Triple` instances.

    Blank node labels are scoped to the parser instance; distinct documents
    parsed with distinct parsers never share blank nodes, matching RDF
    document semantics.  When ``base_iri`` is set, relative IRIs are resolved
    against it (and against subsequent ``@base`` directives).
    """

    def __init__(self, text: str, base_iri: str = "", bnode_prefix: str = "b") -> None:
        self._text = text
        self._length = len(text)
        self._pos = 0
        self._base = base_iri
        self._prefixes: dict[str, str] = {}
        self._bnode_prefix = bnode_prefix
        self._bnode_counter = 0
        self._bnode_labels: dict[str, BlankNode] = {}
        self._triples: list[Triple] = []

    # -- public API --------------------------------------------------------

    def parse(self) -> list[Triple]:
        """Parse the whole document and return its triples in order."""
        self._skip_ws()
        while self._pos < self._length:
            self._parse_statement()
            self._skip_ws()
        return self._triples

    @property
    def prefixes(self) -> dict[str, str]:
        """Prefix map collected from the document's directives."""
        return dict(self._prefixes)

    # -- statement level ----------------------------------------------------

    def _parse_statement(self) -> None:
        if self._peek_is("@prefix"):
            self._expect_token("@prefix")
            self._parse_prefix_directive(require_dot=True)
            return
        if self._peek_is("@base"):
            self._expect_token("@base")
            self._parse_base_directive(require_dot=True)
            return
        if self._peek_keyword_ci("PREFIX"):
            self._parse_prefix_directive(require_dot=False)
            return
        if self._peek_keyword_ci("BASE"):
            self._parse_base_directive(require_dot=False)
            return
        self._parse_triples_block()

    def _parse_prefix_directive(self, require_dot: bool) -> None:
        self._skip_ws()
        name = self._read_prefix_name()
        self._skip_ws()
        iri = self._read_iriref()
        self._prefixes[name] = iri
        if require_dot:
            self._skip_ws()
            self._expect_char(".")

    def _parse_base_directive(self, require_dot: bool) -> None:
        self._skip_ws()
        iri = self._read_iriref()
        self._base = iri
        if require_dot:
            self._skip_ws()
            self._expect_char(".")

    def _parse_triples_block(self) -> None:
        char = self._peek_char()
        if char == "[":
            subject = self._parse_blank_node_property_list()
            self._skip_ws()
            # A bare "[...] ." statement is legal; predicates optional then.
            if self._peek_char() != ".":
                self._parse_predicate_object_list(subject)
        elif char == "(":
            subject = self._parse_collection()
            self._skip_ws()
            self._parse_predicate_object_list(subject)
        else:
            subject = self._parse_subject()
            self._skip_ws()
            self._parse_predicate_object_list(subject)
        self._skip_ws()
        self._expect_char(".")

    def _parse_predicate_object_list(self, subject: SubjectTerm) -> None:
        while True:
            self._skip_ws()
            predicate = self._parse_predicate()
            while True:
                self._skip_ws()
                obj = self._parse_object()
                self._triples.append(Triple(subject, predicate, obj))
                self._skip_ws()
                if self._peek_char() == ",":
                    self._advance()
                    continue
                break
            if self._peek_char() == ";":
                self._advance()
                self._skip_ws()
                # Trailing semicolons before "." or "]" are legal.
                if self._peek_char() in ".];,":
                    continue_chars = self._peek_char()
                    if continue_chars in ".]":
                        return
                continue
            return

    # -- term level ----------------------------------------------------------

    def _parse_subject(self) -> SubjectTerm:
        char = self._peek_char()
        if char == "<":
            return intern_iri(self._read_iriref())
        if char == "_":
            return self._read_blank_node_label()
        term = self._read_prefixed_name()
        return term

    def _parse_predicate(self) -> NamedNode:
        char = self._peek_char()
        if char == "<":
            return intern_iri(self._read_iriref())
        if char == "a" and self._is_bare_a():
            self._advance()
            return _RDF_TYPE
        term = self._read_prefixed_name()
        return term

    def _parse_object(self) -> ObjectTerm:
        char = self._peek_char()
        if char == "<":
            return intern_iri(self._read_iriref())
        if char == "_":
            return self._read_blank_node_label()
        if char == "[":
            return self._parse_blank_node_property_list()
        if char == "(":
            return self._parse_collection()
        if char in "\"'":
            return self._read_rdf_literal()
        if char.isdigit() or char in "+-." and self._looks_numeric():
            return self._read_numeric_literal()
        if self._peek_is("true") and self._boundary_after(4):
            self._pos += 4
            return Literal("true", datatype=XSD_BOOLEAN)
        if self._peek_is("false") and self._boundary_after(5):
            self._pos += 5
            return Literal("false", datatype=XSD_BOOLEAN)
        return self._read_prefixed_name()

    def _parse_blank_node_property_list(self) -> BlankNode:
        self._expect_char("[")
        node = self._fresh_bnode()
        self._skip_ws()
        if self._peek_char() != "]":
            self._parse_predicate_object_list(node)
            self._skip_ws()
        self._expect_char("]")
        return node

    def _parse_collection(self) -> SubjectTerm:
        self._expect_char("(")
        self._skip_ws()
        items: list[ObjectTerm] = []
        while self._peek_char() != ")":
            items.append(self._parse_object())
            self._skip_ws()
        self._advance()  # consume ")"
        if not items:
            return _RDF_NIL
        head = self._fresh_bnode()
        current = head
        for index, item in enumerate(items):
            self._triples.append(Triple(current, _RDF_FIRST, item))
            if index + 1 < len(items):
                next_node = self._fresh_bnode()
                self._triples.append(Triple(current, _RDF_REST, next_node))
                current = next_node
            else:
                self._triples.append(Triple(current, _RDF_REST, _RDF_NIL))
        return head

    # -- lexical level --------------------------------------------------------

    def _read_iriref(self) -> str:
        match = _IRIREF_RE.match(self._text, self._pos)
        if not match:
            self._fail("expected IRI reference")
        self._pos = match.end()
        raw = match.group(1)
        if "\\" in raw:
            raw = unescape_string_literal(raw)
        if self._base and not _is_absolute_iri(raw):
            return _resolve_relative(self._base, raw)
        return raw

    def _read_prefix_name(self) -> str:
        start = self._pos
        match = _PREFIX_NAME_RE.match(self._text, self._pos)
        if match:
            self._pos = match.end()
        name = self._text[start:self._pos]
        self._expect_char(":")
        return name

    def _read_prefixed_name(self) -> NamedNode:
        start = self._pos
        colon = -1
        # Scan prefix part up to ':'
        while self._pos < self._length:
            char = self._text[self._pos]
            if char == ":":
                colon = self._pos
                self._pos += 1
                break
            if not (char.isalnum() or char in "_-." or ord(char) >= 0xC0):
                break
            self._pos += 1
        if colon < 0:
            self._fail("expected prefixed name")
        prefix = self._text[start:colon]
        if prefix not in self._prefixes:
            self._fail(f"undefined prefix {prefix!r}")
        local_match = _PN_LOCAL_RE.match(self._text, self._pos)
        local = ""
        if local_match:
            local = local_match.group(0)
            self._pos = local_match.end()
        # PN_LOCAL cannot end with '.'; give trailing dots back to the stream.
        while local.endswith("."):
            local = local[:-1]
            self._pos -= 1
        if "\\" in local:
            local = re.sub(r"\\(.)", r"\1", local)
        local = local.replace("%%", "%")
        return intern_iri(self._prefixes[prefix] + local)

    def _read_blank_node_label(self) -> BlankNode:
        match = _BLANK_LABEL_RE.match(self._text, self._pos)
        if not match:
            self._fail("expected blank node label")
        self._pos = match.end()
        label = match.group(0)[2:]
        while label.endswith("."):
            label = label[:-1]
            self._pos -= 1
        if label not in self._bnode_labels:
            # Keyed by the document's own label, not the allocation
            # counter: re-parsing the same document yields the same term
            # for ``_:x`` regardless of statement order, so live re-diffs
            # of an edited document stay minimal.  Only anonymous ``[]``
            # nodes draw from the counter.
            self._bnode_labels[label] = BlankNode(f"{self._bnode_prefix}{label}")
        return self._bnode_labels[label]

    def _read_rdf_literal(self) -> Literal:
        value = self._read_string_body()
        language = ""
        datatype = ""
        if self._peek_char(eof_ok=True) == "@":
            match = _LANGTAG_RE.match(self._text, self._pos)
            if not match:
                self._fail("malformed language tag")
            language = match.group(0)[1:]
            self._pos = match.end()
        elif self._text.startswith("^^", self._pos):
            self._pos += 2
            if self._peek_char() == "<":
                datatype = self._read_iriref()
            else:
                datatype = self._read_prefixed_name().value
        if language:
            return Literal(value, language=language)
        if datatype:
            return Literal(value, datatype=datatype)
        return Literal(value)

    def _read_string_body(self) -> str:
        quote = self._text[self._pos]
        long_quote = quote * 3
        if self._text.startswith(long_quote, self._pos):
            end = self._text.find(long_quote, self._pos + 3)
            while end > 0 and _escaped_at(self._text, end):
                end = self._text.find(long_quote, end + 1)
            if end < 0:
                self._fail("unterminated long string literal")
            raw = self._text[self._pos + 3:end]
            self._pos = end + 3
            return unescape_string_literal(raw)
        # Short string: scan for the closing quote, honoring escapes.
        index = self._pos + 1
        while index < self._length:
            char = self._text[index]
            if char == "\\":
                index += 2
                continue
            if char == quote:
                raw = self._text[self._pos + 1:index]
                self._pos = index + 1
                return unescape_string_literal(raw)
            if char == "\n":
                break
            index += 1
        self._fail("unterminated string literal")
        raise AssertionError  # unreachable

    def _read_numeric_literal(self) -> Literal:
        match = _NUMBER_RE.match(self._text, self._pos)
        if not match:
            self._fail("malformed numeric literal")
        lexical = match.group(0)
        self._pos = match.end()
        if "e" in lexical or "E" in lexical:
            return Literal(lexical, datatype=XSD_DOUBLE)
        if "." in lexical:
            return Literal(lexical, datatype=XSD_DECIMAL)
        return Literal(lexical, datatype=XSD_INTEGER)

    def _looks_numeric(self) -> bool:
        match = _NUMBER_RE.match(self._text, self._pos)
        return match is not None and match.end() > self._pos

    def _is_bare_a(self) -> bool:
        after = self._pos + 1
        return after >= self._length or self._text[after].isspace() or self._text[after] in "<[#\"'"

    def _boundary_after(self, length: int) -> bool:
        after = self._pos + length
        if after >= self._length:
            return True
        char = self._text[after]
        return not (char.isalnum() or char in "_-:")

    # -- low-level cursor helpers ---------------------------------------------

    def _fresh_bnode(self, hint: str = "") -> BlankNode:
        self._bnode_counter += 1
        suffix = f"_{hint}" if hint else ""
        return BlankNode(f"{self._bnode_prefix}{self._bnode_counter}{suffix}")

    def _skip_ws(self) -> None:
        while self._pos < self._length:
            char = self._text[self._pos]
            if char in " \t\r\n":
                self._pos += 1
            elif char == "#":
                newline = self._text.find("\n", self._pos)
                self._pos = self._length if newline < 0 else newline + 1
            else:
                return

    def _peek_char(self, eof_ok: bool = False) -> str:
        if self._pos >= self._length:
            if eof_ok:
                return ""
            self._fail("unexpected end of input")
        return self._text[self._pos]

    def _peek_is(self, token: str) -> bool:
        return self._text.startswith(token, self._pos)

    def _peek_keyword_ci(self, keyword: str) -> bool:
        end = self._pos + len(keyword)
        if self._text[self._pos:end].upper() != keyword:
            return False
        if end < self._length and not self._text[end].isspace() and self._text[end] != "<":
            return False
        self._pos = end
        return True

    def _expect_token(self, token: str) -> None:
        if not self._peek_is(token):
            self._fail(f"expected {token!r}")
        self._pos += len(token)

    def _expect_char(self, char: str) -> None:
        if self._peek_char() != char:
            self._fail(f"expected {char!r}, found {self._peek_char()!r}")
        self._pos += 1

    def _advance(self) -> None:
        self._pos += 1

    def _fail(self, message: str) -> None:
        consumed = self._text[:self._pos]
        line = consumed.count("\n") + 1
        column = self._pos - (consumed.rfind("\n") + 1) + 1
        raise TurtleParseError(message, line, column)


def _escaped_at(text: str, index: int) -> bool:
    backslashes = 0
    index -= 1
    while index >= 0 and text[index] == "\\":
        backslashes += 1
        index -= 1
    return backslashes % 2 == 1


#: Bounded memo for relative-IRI resolution.  Documents resolve the same
#: handful of (base, reference) pairs over and over; ``urljoin`` re-parses
#: both strings every call, so a dict hit is ~20x cheaper.
_RESOLVE_CACHE: dict[tuple[str, str], str] = {}
_RESOLVE_CACHE_LIMIT = 1 << 16


def _resolve_relative(base: str, reference: str) -> str:
    key = (base, reference)
    resolved = _RESOLVE_CACHE.get(key)
    if resolved is None:
        resolved = urljoin(base, reference)
        if len(_RESOLVE_CACHE) < _RESOLVE_CACHE_LIMIT:
            _RESOLVE_CACHE[key] = resolved
    return resolved


def _is_absolute_iri(iri: str) -> bool:
    scheme_end = iri.find(":")
    if scheme_end <= 0:
        return False
    scheme = iri[:scheme_end]
    return scheme.isalpha() or all(c.isalnum() or c in "+-." for c in scheme)


def parse_turtle(text: str, base_iri: str = "", bnode_prefix: str = "b") -> list[Triple]:
    """Parse a Turtle document into a list of triples."""
    return TurtleParser(text, base_iri=base_iri, bnode_prefix=bnode_prefix).parse()
