"""Well-known RDF namespaces used throughout the Solid / SolidBench universe.

A :class:`Namespace` is a tiny helper that mints :class:`NamedNode` terms via
attribute or item access::

    FOAF = Namespace("http://xmlns.com/foaf/0.1/")
    FOAF.name          # NamedNode("http://xmlns.com/foaf/0.1/name")
    FOAF["first-name"] # for names that are not Python identifiers
"""

from __future__ import annotations

from .terms import NamedNode, intern_iri

__all__ = [
    "Namespace",
    "RDF",
    "RDFS",
    "XSD_NS",
    "FOAF",
    "LDP",
    "PIM",
    "SOLID",
    "ACL",
    "VCARD",
    "SNVOC",
    "SNTAG",
    "DBPEDIA",
    "SUBWEB",
    "RDF_TYPE",
    "PREFIXES",
]


class Namespace:
    """A factory for IRIs that share a common prefix.

    Minted nodes are cached as instance attributes, so ``FOAF.name`` pays
    the ``__getattr__`` + intern cost only on first access — hot loops
    (extractors, serializers) that mention ``NS.term`` inline then hit a
    plain attribute lookup.
    """

    def __init__(self, base: str) -> None:
        self._base = base

    @property
    def base(self) -> str:
        return self._base

    def __getattr__(self, local: str) -> NamedNode:
        if local.startswith("_"):
            raise AttributeError(local)
        node = intern_iri(self._base + local)
        object.__setattr__(self, local, node)
        return node

    def __getitem__(self, local: str) -> NamedNode:
        node = self.__dict__.get(local)
        if node is None:
            node = self.__dict__[local] = intern_iri(self._base + local)
        return node

    def __contains__(self, node: object) -> bool:
        return isinstance(node, NamedNode) and node.value.startswith(self._base)

    def local_name(self, node: NamedNode) -> str:
        """Strip the namespace base from ``node``; raises if it doesn't match."""
        if node not in self:
            raise ValueError(f"{node} is not in namespace {self._base}")
        return node.value[len(self._base):]

    def __repr__(self) -> str:
        return f"Namespace({self._base!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
XSD_NS = Namespace("http://www.w3.org/2001/XMLSchema#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
LDP = Namespace("http://www.w3.org/ns/ldp#")
PIM = Namespace("http://www.w3.org/ns/pim/space#")
SOLID = Namespace("http://www.w3.org/ns/solid/terms#")
ACL = Namespace("http://www.w3.org/ns/auth/acl#")
VCARD = Namespace("http://www.w3.org/2006/vcard/ns#")

# The LDBC SNB vocabulary as hosted by SolidBench.
SNVOC = Namespace(
    "https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/vocabulary/"
)
SNTAG = Namespace(
    "https://solidbench.linkeddatafragments.org/www.ldbc.eu/ldbc_socialnet/1.0/tag/"
)
DBPEDIA = Namespace("https://solidbench.linkeddatafragments.org/dbpedia.org/resource/")

# Subweb specifications and source summaries (after the distributed
# subweb-specification proposal): pods describe which of their containers
# hold what — class partitions, predicate sets, cardinalities — and may
# publish traversal scopes.  Guided traversal (repro.ltqp.guided) consumes
# these to prune and prioritize links.
SUBWEB = Namespace("https://w3id.org/subweb#")

RDF_TYPE = RDF.type

#: Default prefix map used by serializers and the CLI.
PREFIXES: dict[str, str] = {
    "rdf": RDF.base,
    "rdfs": RDFS.base,
    "xsd": XSD_NS.base,
    "foaf": FOAF.base,
    "ldp": LDP.base,
    "pim": PIM.base,
    "solid": SOLID.base,
    "acl": ACL.base,
    "vcard": VCARD.base,
    "snvoc": SNVOC.base,
    "sntag": SNTAG.base,
}
