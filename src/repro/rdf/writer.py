"""Turtle serialization with prefix compaction and subject grouping."""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Mapping, Optional

from .namespaces import PREFIXES, RDF
from .terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    Literal,
    NamedNode,
    Term,
    escape_string_literal,
)
from .triples import Triple

__all__ = ["TurtleWriter", "serialize_turtle"]

_RDF_TYPE = RDF.type

# Characters allowed unescaped in a PN_LOCAL tail (approximation).
_LOCAL_SAFE = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-")


class TurtleWriter:
    """Serialize triples as readable Turtle.

    Groups statements by subject with ``;``/``,`` shorthand, compacts IRIs
    using the supplied prefix map (only prefixes that are actually used are
    emitted), uses ``a`` for ``rdf:type``, and renders plain
    integer/decimal/boolean literals with their native shorthand.
    """

    def __init__(
        self,
        prefixes: Optional[Mapping[str, str]] = None,
        base_iri: str = "",
    ) -> None:
        self._prefixes = dict(prefixes if prefixes is not None else PREFIXES)
        self._base = base_iri
        # Longest-first so that nested namespaces compact correctly.
        self._sorted_prefixes = sorted(
            self._prefixes.items(), key=lambda item: len(item[1]), reverse=True
        )
        # IRI → (rendered form, prefix name used) memo: vocabulary IRIs
        # (predicates, classes) recur on nearly every line of a document.
        self._iri_cache: dict[str, tuple[str, Optional[str]]] = {}

    def serialize(self, triples: Iterable[Triple]) -> str:
        grouped: dict[Term, list[Triple]] = defaultdict(list)
        order: list[Term] = []
        for triple in triples:
            if triple.subject not in grouped:
                order.append(triple.subject)
            grouped[triple.subject].append(triple)

        used_prefixes: set[str] = set()
        body_lines: list[str] = []
        for subject in order:
            body_lines.append(self._render_subject_block(subject, grouped[subject], used_prefixes))

        header_lines = []
        if self._base:
            header_lines.append(f"@base <{self._base}> .")
        for name, iri in sorted(self._prefixes.items()):
            if name in used_prefixes:
                header_lines.append(f"@prefix {name}: <{iri}> .")
        header = "\n".join(header_lines)
        body = "\n".join(body_lines)
        if header and body:
            return header + "\n\n" + body + "\n"
        return (header or body) + ("\n" if (header or body) else "")

    def _render_subject_block(
        self, subject: Term, triples: list[Triple], used: set[str]
    ) -> str:
        by_predicate: dict[Term, list[Term]] = defaultdict(list)
        predicate_order: list[Term] = []
        for triple in triples:
            if triple.predicate not in by_predicate:
                predicate_order.append(triple.predicate)
            by_predicate[triple.predicate].append(triple.object)

        # rdf:type first, per Turtle convention.
        if _RDF_TYPE in by_predicate and predicate_order[0] != _RDF_TYPE:
            predicate_order.remove(_RDF_TYPE)
            predicate_order.insert(0, _RDF_TYPE)

        lines = [self._render_term(subject, used)]
        for index, predicate in enumerate(predicate_order):
            rendered_predicate = (
                "a" if predicate == _RDF_TYPE else self._render_term(predicate, used)
            )
            objects = ", ".join(
                self._render_term(obj, used) for obj in by_predicate[predicate]
            )
            terminator = " ;" if index + 1 < len(predicate_order) else " ."
            lines.append(f"    {rendered_predicate} {objects}{terminator}")
        return "\n".join(lines)

    def _render_term(self, term: Term, used: set[str]) -> str:
        if isinstance(term, NamedNode):
            return self._render_iri(term.value, used)
        if isinstance(term, BlankNode):
            return f"_:{term.value}"
        if isinstance(term, Literal):
            return self._render_literal(term, used)
        raise TypeError(f"cannot serialize term {term!r}")

    def _render_iri(self, iri: str, used: set[str]) -> str:
        cached = self._iri_cache.get(iri)
        if cached is not None:
            rendered, prefix_name = cached
            if prefix_name is not None:
                used.add(prefix_name)
            return rendered
        rendered, prefix_name = self._compact_iri(iri)
        self._iri_cache[iri] = (rendered, prefix_name)
        if prefix_name is not None:
            used.add(prefix_name)
        return rendered

    def _compact_iri(self, iri: str) -> tuple[str, Optional[str]]:
        for name, base in self._sorted_prefixes:
            if iri.startswith(base):
                local = iri[len(base):]
                if local and all(c in _LOCAL_SAFE for c in local):
                    return f"{name}:{local}", name
        if self._base and iri.startswith(self._base):
            return f"<{iri[len(self._base):]}>", None
        return f"<{iri}>", None

    def _render_literal(self, literal: Literal, used: set[str]) -> str:
        if literal.datatype == XSD_INTEGER and _is_plain_integer(literal.value):
            return literal.value
        if literal.datatype == XSD_BOOLEAN and literal.value in ("true", "false"):
            return literal.value
        if literal.datatype == XSD_DECIMAL and _is_plain_decimal(literal.value):
            return literal.value
        body = f'"{escape_string_literal(literal.value)}"'
        if literal.language:
            return f"{body}@{literal.language}"
        if literal.datatype and literal.datatype != XSD_STRING:
            return f"{body}^^{self._render_iri(literal.datatype, used)}"
        return body


def _is_plain_integer(lexical: str) -> bool:
    body = lexical[1:] if lexical[:1] in "+-" else lexical
    return body.isdigit() and bool(body)


def _is_plain_decimal(lexical: str) -> bool:
    body = lexical[1:] if lexical[:1] in "+-" else lexical
    if body.count(".") != 1:
        return False
    integral, fractional = body.split(".")
    return bool(fractional) and (integral or fractional).isdigit() and fractional.isdigit()


#: Writers for the default prefix map, one per base IRI, so the IRI
#: rendering memo survives across the many documents of one pod.
_WRITER_CACHE: dict[str, TurtleWriter] = {}
_WRITER_CACHE_LIMIT = 4096


def serialize_turtle(
    triples: Iterable[Triple],
    prefixes: Optional[Mapping[str, str]] = None,
    base_iri: str = "",
) -> str:
    """Serialize triples as Turtle text with the given prefix map."""
    if prefixes is None:
        writer = _WRITER_CACHE.get(base_iri)
        if writer is None:
            writer = TurtleWriter(base_iri=base_iri)
            if len(_WRITER_CACHE) < _WRITER_CACHE_LIMIT:
                _WRITER_CACHE[base_iri] = writer
        return writer.serialize(triples)
    return TurtleWriter(prefixes=prefixes, base_iri=base_iri).serialize(triples)
