"""RDF data model, storage, and serialization.

This subpackage is a self-contained RDF 1.1 stack: term model
(:mod:`repro.rdf.terms`), triples/quads (:mod:`repro.rdf.triples`), indexed
in-memory stores (:mod:`repro.rdf.dataset`), Turtle and N-Triples/N-Quads
parsing (:mod:`repro.rdf.turtle`, :mod:`repro.rdf.ntriples`), and Turtle
serialization (:mod:`repro.rdf.writer`).
"""

from .dataset import Dataset, Graph
from .isomorphism import find_bnode_bijection, isomorphic
from .namespaces import (
    ACL,
    DBPEDIA,
    FOAF,
    LDP,
    PIM,
    PREFIXES,
    RDF,
    RDFS,
    SNTAG,
    SNVOC,
    SOLID,
    VCARD,
    Namespace,
)
from .ntriples import (
    NTriplesParseError,
    parse_nquads,
    parse_ntriples,
    serialize_nquads,
    serialize_ntriples,
)
from .terms import (
    BlankNode,
    Literal,
    NamedNode,
    Term,
    Variable,
    intern,
    intern_iri,
    literal_from_python,
    term_to_ntriples,
)
from .triples import Quad, Triple, TriplePattern
from .trig import TriGParser, parse_trig
from .turtle import TurtleParseError, TurtleParser, parse_turtle
from .writer import TurtleWriter, serialize_turtle

__all__ = [
    "NamedNode",
    "BlankNode",
    "Literal",
    "Variable",
    "Term",
    "Triple",
    "Quad",
    "TriplePattern",
    "Graph",
    "Dataset",
    "Namespace",
    "RDF",
    "RDFS",
    "FOAF",
    "LDP",
    "PIM",
    "SOLID",
    "ACL",
    "VCARD",
    "SNVOC",
    "SNTAG",
    "DBPEDIA",
    "PREFIXES",
    "parse_turtle",
    "parse_trig",
    "TriGParser",
    "TurtleParser",
    "TurtleParseError",
    "parse_ntriples",
    "parse_nquads",
    "serialize_ntriples",
    "serialize_nquads",
    "NTriplesParseError",
    "TurtleWriter",
    "serialize_turtle",
    "intern",
    "intern_iri",
    "literal_from_python",
    "isomorphic",
    "find_bnode_bijection",
    "term_to_ntriples",
]
