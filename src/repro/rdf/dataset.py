"""Indexed in-memory RDF stores.

Two stores are provided:

* :class:`Graph` — a set of triples with SPO/POS/OSP hash indexes giving
  O(matching) pattern scans for any bound-position combination.
* :class:`Dataset` — a set of quads (triple + source document IRI), built on
  per-graph :class:`Graph` instances plus a union index.  This is the store
  the LTQP engine's growing triple source builds on: it is append-only in
  spirit and assigns each inserted triple a monotonically increasing
  sequence number, which restartable iterators use as cursors.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .terms import NamedNode, Term, Variable
from .triples import ObjectTerm, PredicateTerm, Quad, SubjectTerm, Triple

__all__ = ["Graph", "Dataset"]


def _is_concrete(term: Optional[Term]) -> bool:
    return term is not None and not isinstance(term, Variable)


class Graph:
    """A mutable set of triples with three hash indexes (SPO, POS, OSP)."""

    __slots__ = ("_triples", "_spo", "_pos", "_osp")

    def __init__(self, triples: Iterable[Triple] = ()) -> None:
        self._triples: set[Triple] = set()
        self._spo: dict[SubjectTerm, dict[PredicateTerm, set[ObjectTerm]]] = {}
        self._pos: dict[PredicateTerm, dict[ObjectTerm, set[SubjectTerm]]] = {}
        self._osp: dict[ObjectTerm, dict[SubjectTerm, set[PredicateTerm]]] = {}
        for triple in triples:
            self.add(triple)

    def add(self, triple: Triple) -> bool:
        """Insert; returns ``True`` when the triple was not present before.

        This is the hottest write path in the whole engine (every parsed
        quad lands here twice: named graph + union), so the three index
        insertions are spelled out with explicit ``get`` chains on plain
        dicts instead of nested defaultdicts.
        """
        triples = self._triples
        if triple in triples:
            return False
        triples.add(triple)
        s, p, o = triple.subject, triple.predicate, triple.object

        level = self._spo.get(s)
        if level is None:
            level = self._spo[s] = {}
        bucket = level.get(p)
        if bucket is None:
            bucket = level[p] = set()
        bucket.add(o)

        level = self._pos.get(p)
        if level is None:
            level = self._pos[p] = {}
        bucket = level.get(o)
        if bucket is None:
            bucket = level[o] = set()
        bucket.add(s)

        level = self._osp.get(o)
        if level is None:
            level = self._osp[o] = {}
        bucket = level.get(s)
        if bucket is None:
            bucket = level[s] = set()
        bucket.add(p)
        return True

    def discard(self, triple: Triple) -> bool:
        """Remove; returns ``True`` when the triple was present."""
        if triple not in self._triples:
            return False
        self._triples.discard(triple)
        self._discard_index(self._spo, triple.subject, triple.predicate, triple.object)
        self._discard_index(self._pos, triple.predicate, triple.object, triple.subject)
        self._discard_index(self._osp, triple.object, triple.subject, triple.predicate)
        return True

    @staticmethod
    def _discard_index(index: dict, first: Term, second: Term, third: Term) -> None:
        level_two = index[first]
        level_two[second].discard(third)
        if not level_two[second]:
            del level_two[second]
        if not level_two:
            del index[first]

    def update(self, triples: Iterable[Triple]) -> int:
        """Insert many; returns the number of newly added triples."""
        return sum(1 for triple in triples if self.add(triple))

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Yield triples matching the pattern (``None``/Variable = wildcard).

        Picks the most selective available index for the bound positions.
        """
        s = subject if _is_concrete(subject) else None
        p = predicate if _is_concrete(predicate) else None
        o = object if _is_concrete(object) else None

        if s is not None and p is not None and o is not None:
            candidate = Triple(s, p, o)  # type: ignore[arg-type]
            if candidate in self._triples:
                yield candidate
            return
        if s is not None and p is not None:
            for obj in self._spo.get(s, {}).get(p, ()):
                yield Triple(s, p, obj)  # type: ignore[arg-type]
            return
        if p is not None and o is not None:
            for subj in self._pos.get(p, {}).get(o, ()):
                yield Triple(subj, p, o)  # type: ignore[arg-type]
            return
        if s is not None and o is not None:
            for pred in self._osp.get(o, {}).get(s, ()):
                yield Triple(s, pred, o)  # type: ignore[arg-type]
            return
        if s is not None:
            for pred, objs in self._spo.get(s, {}).items():
                for obj in objs:
                    yield Triple(s, pred, obj)  # type: ignore[arg-type]
            return
        if p is not None:
            for obj, subjs in self._pos.get(p, {}).items():
                for subj in subjs:
                    yield Triple(subj, p, obj)  # type: ignore[arg-type]
            return
        if o is not None:
            for subj, preds in self._osp.get(o, {}).items():
                for pred in preds:
                    yield Triple(subj, pred, o)  # type: ignore[arg-type]
            return
        yield from self._triples

    def count(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> int:
        """Number of triples matching the pattern.

        Answered from index bucket sizes — O(1) for 0-2 bound positions with
        at most one bucket walk, never materialising the matching triples.
        The planner calls this on every BGP ordering decision, so it must
        stay cheap even on multi-million-triple stores.
        """
        s = subject if _is_concrete(subject) else None
        p = predicate if _is_concrete(predicate) else None
        o = object if _is_concrete(object) else None

        if s is not None and p is not None and o is not None:
            return 1 if Triple(s, p, o) in self._triples else 0  # type: ignore[arg-type]
        if s is not None and p is not None:
            return len(self._spo.get(s, {}).get(p, ()))
        if p is not None and o is not None:
            return len(self._pos.get(p, {}).get(o, ()))
        if s is not None and o is not None:
            return len(self._osp.get(o, {}).get(s, ()))
        if s is not None:
            return sum(len(objs) for objs in self._spo.get(s, {}).values())
        if p is not None:
            return sum(len(subjs) for subjs in self._pos.get(p, {}).values())
        if o is not None:
            return sum(len(preds) for preds in self._osp.get(o, {}).values())
        return len(self._triples)

    def subjects(self, predicate: Optional[Term] = None, object: Optional[Term] = None) -> Iterator[SubjectTerm]:
        seen: set[SubjectTerm] = set()
        for triple in self.match(None, predicate, object):
            if triple.subject not in seen:
                seen.add(triple.subject)
                yield triple.subject

    def objects(self, subject: Optional[Term] = None, predicate: Optional[Term] = None) -> Iterator[ObjectTerm]:
        seen: set[ObjectTerm] = set()
        for triple in self.match(subject, predicate, None):
            if triple.object not in seen:
                seen.add(triple.object)
                yield triple.object

    def value(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Optional[Term]:
        """Return one matching term for the single wildcard position, or None."""
        for triple in self.match(subject, predicate, object):
            if subject is None:
                return triple.subject
            if object is None:
                return triple.object
            return triple.predicate
        return None

    def __contains__(self, triple: object) -> bool:
        return triple in self._triples

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __bool__(self) -> bool:
        return bool(self._triples)

    def copy(self) -> "Graph":
        return Graph(self._triples)

    def __repr__(self) -> str:
        return f"<Graph with {len(self._triples)} triples>"


class Dataset:
    """A quad store: named graphs keyed by document IRI plus a union view.

    Every successfully inserted quad is recorded in an append-only log with a
    monotonically increasing sequence number.  :meth:`match_since` lets
    consumers resume a scan from a previous log position, which is the
    mechanism behind the LTQP engine's restartable pipelined scans.

    The log is *signed*: every entry carries a polarity (``+1`` insertion,
    ``-1`` retraction via :meth:`remove`).  During traversal the web only
    grows, so the log is all-positive and :meth:`log_slice` is the whole
    story; once documents start *changing* (live standing queries), signed
    entries appear and :meth:`signed_runs` delivers them as maximal
    same-polarity runs for incremental view maintenance.
    """

    __slots__ = ("_graphs", "_union", "_log", "_signs", "_retractions")

    def __init__(self) -> None:
        self._graphs: dict[Optional[NamedNode], Graph] = {}
        self._union = Graph()
        self._log: list[Quad] = []
        #: Parallel to ``_log``: +1 for insertions, -1 for retractions.
        self._signs: list[int] = []
        self._retractions = 0

    @property
    def union(self) -> Graph:
        """The union of all graphs (default + named)."""
        return self._union

    @property
    def log_position(self) -> int:
        """Sequence number just past the most recent insertion."""
        return len(self._log)

    def graph(self, name: Optional[NamedNode] = None) -> Graph:
        """Get (creating if needed) the graph with the given name."""
        if name not in self._graphs:
            self._graphs[name] = Graph()
        return self._graphs[name]

    def graph_names(self) -> Iterator[Optional[NamedNode]]:
        return iter(self._graphs)

    def has_graph(self, name: Optional[NamedNode]) -> bool:
        return name in self._graphs

    def add(self, quad: Quad) -> bool:
        """Insert a quad; returns ``True`` when new *in its graph*.

        The union graph deduplicates across graphs, but the log records every
        per-graph novelty so per-document provenance is never lost.
        """
        triple = quad.triple
        if not self.graph(quad.graph).add(triple):
            return False
        self._union.add(triple)
        self._log.append(quad)
        self._signs.append(1)
        return True

    def remove(self, quad: Quad) -> bool:
        """Retract a quad; returns ``True`` when it was present in its graph.

        The union graph only drops the triple when *no other* graph still
        holds it (cross-document duplicates keep the union entry alive).
        The retraction is appended to the log with sign ``-1`` so signed
        consumers (:meth:`signed_runs`) observe it in arrival order.
        """
        graph = self._graphs.get(quad.graph)
        if graph is None:
            return False
        triple = quad.triple
        if not graph.discard(triple):
            return False
        for name, other in self._graphs.items():
            if name != quad.graph and triple in other:
                break
        else:
            self._union.discard(triple)
        self._log.append(quad)
        self._signs.append(-1)
        self._retractions += 1
        return True

    def add_triples(self, triples: Iterable[Triple], graph: Optional[NamedNode] = None) -> int:
        return sum(1 for t in triples if self.add(Quad(t.subject, t.predicate, t.object, graph)))

    def update(self, quads: Iterable[Quad]) -> int:
        return sum(1 for q in quads if self.add(q))

    def match(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
        graph: Optional[NamedNode] = None,
    ) -> Iterator[Triple]:
        """Match over the union (``graph=None``) or a single named graph."""
        target = self._union if graph is None else self._graphs.get(graph)
        if target is None:
            return iter(())
        return target.match(subject, predicate, object)

    def match_since(
        self,
        position: int,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        object: Optional[Term] = None,
    ) -> Iterator[Quad]:
        """Yield logged quads at sequence >= ``position`` matching the pattern.

        Note this scans the log linearly from ``position``; consumers keep
        their cursor close to the head so the scan is effectively
        incremental.
        """
        s = subject if _is_concrete(subject) else None
        p = predicate if _is_concrete(predicate) else None
        o = object if _is_concrete(object) else None
        signs = self._signs
        for index in range(position, len(self._log)):
            if signs[index] < 0:
                continue
            quad = self._log[index]
            if s is not None and quad.subject != s:
                continue
            if p is not None and quad.predicate != p:
                continue
            if o is not None and quad.object != o:
                continue
            yield quad

    def log_slice(self, start: int, stop: Optional[int] = None) -> list[Quad]:
        """The logged quads in ``[start, stop)`` — the delta between two
        log positions, in insertion order.  One list slice, no filtering;
        this is what the pipeline's :class:`~repro.ltqp.pipeline.DeltaRouter`
        buckets per advance."""
        if stop is None:
            return self._log[start:]
        return self._log[start:stop]

    def retractions_since(self, start: int) -> int:
        """Number of sign ``-1`` log entries at sequence >= ``start``.

        Zero for the whole traversal phase; the pipeline uses this to tell
        a plain additive advance from a window that needs signed dispatch.
        """
        if not self._retractions:
            return 0
        return sum(1 for sign in self._signs[start:] if sign < 0)

    def signed_runs(self, start: int, stop: Optional[int] = None) -> list[tuple[int, list[Quad]]]:
        """The log window ``[start, stop)`` as maximal same-sign runs.

        Returns ``[(sign, quads), ...]`` in log order — the shape the live
        pipeline dispatches: each run becomes one signed
        :class:`~repro.ltqp.pipeline.DeltaBatch`.
        """
        end = len(self._log) if stop is None else stop
        runs: list[tuple[int, list[Quad]]] = []
        signs = self._signs
        log = self._log
        index = start
        while index < end:
            sign = signs[index]
            run_end = index + 1
            while run_end < end and signs[run_end] == sign:
                run_end += 1
            runs.append((sign, log[index:run_end]))
            index = run_end
        return runs

    def quads(self) -> Iterator[Quad]:
        """The *live* quads in first-insertion order.

        All-positive log: a plain log iteration.  After retractions, log
        order is kept but dead entries are filtered out.
        """
        if not self._retractions:
            return iter(self._log)
        return self._live_quads()

    def _live_quads(self) -> Iterator[Quad]:
        emitted: set[Quad] = set()
        for quad, sign in zip(self._log, self._signs):
            if sign < 0 or quad in emitted:
                continue
            graph = self._graphs.get(quad.graph)
            if graph is not None and quad.triple in graph:
                emitted.add(quad)
                yield quad

    def __len__(self) -> int:
        """Total number of *live* (triple, graph) pairs stored."""
        return len(self._log) - 2 * self._retractions

    def __contains__(self, triple: object) -> bool:
        return triple in self._union

    def __repr__(self) -> str:
        return f"<Dataset with {len(self._log)} quads in {len(self._graphs)} graphs>"
