"""Consistent-hash routing for the sharded QueryService.

The front-end must answer one question per query: *which worker?*  Two
properties matter:

* **Stability across processes and runs** — routing decisions feed cache
  locality (a repeat query should land on the shard whose document store
  is already warm), so the hash must not depend on Python's per-process
  string hash randomization.  Everything here hashes through SHA-1.
* **Minimal disruption on membership change** — when a worker crashes
  and is replaced, or the pool is resized, only ~1/N of the key space
  may move.  :class:`HashRing` is a classic consistent-hash ring with
  virtual nodes; removing one of N nodes remaps only the keys that
  pointed at it.

Two routing modes (:class:`ShardRouter`):

* ``query`` (default) — key is the canonical query text plus its seeds.
  Spreads distinct queries across the pool while keeping *repeats* of
  the same query on the same shard, so its HTTP cache and parsed
  document store are warm.
* ``origin`` — key is the first seed's *pod origin*.  In a real Solid
  deployment every pod is its own origin (its own subdomain); in the
  simulated single-host universe the pod root path plays that role
  (:func:`pod_origin`).  Queries anchored in the same pod share a shard,
  so seed-heavy workloads keep every document of a pod parsed exactly
  once across the whole deployment — the per-pod data locality the
  structural-assumptions evaluation observes in Solid data.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Optional, Sequence
from urllib.parse import urlsplit

__all__ = ["pod_origin", "HashRing", "ShardRouter", "ROUTING_MODES"]

ROUTING_MODES = ("query", "origin")


def pod_origin(url: str) -> str:
    """The data-locality unit a URL belongs to.

    Real Solid pods are origins of their own, so the scheme+host would
    suffice; the simulated universe hosts every pod under one host with
    ``/pods/<name>/`` roots, so when that shape is present the pod root
    is included.  Everything under one pod maps to one key.
    """
    parts = urlsplit(url)
    origin = f"{parts.scheme}://{parts.netloc}"
    segments = [s for s in parts.path.split("/") if s]
    if len(segments) >= 2 and segments[0] == "pods":
        return f"{origin}/pods/{segments[1]}"
    return origin


def _stable_hash(key: str) -> int:
    """A 64-bit hash that is a pure function of the key (SHA-1 prefix)."""
    return int.from_bytes(hashlib.sha1(key.encode("utf-8")).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring with virtual nodes.

    Each node is placed at ``vnodes`` pseudo-random (but fully
    deterministic) points on a 64-bit ring; a key routes to the first
    node clockwise from its hash.  With enough virtual nodes the key
    space splits near-evenly, and removing a node hands only its own
    arcs to the survivors.
    """

    def __init__(self, nodes: Sequence[str] = (), vnodes: int = 64) -> None:
        self._vnodes = vnodes
        self._points: list[int] = []
        self._owners: dict[int, str] = {}
        self._nodes: set[str] = set()
        for node in nodes:
            self.add(node)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._vnodes):
            point = _stable_hash(f"{node}#{replica}")
            # SHA-1 collisions across distinct vnode labels are not a
            # practical concern; first owner keeps the point.
            if point not in self._owners:
                self._owners[point] = node
                bisect.insort(self._points, point)

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        self._points = [p for p in self._points if self._owners[p] != node]
        self._owners = {p: n for p, n in self._owners.items() if n != node}

    def route(self, key: str) -> Optional[str]:
        """The node owning ``key``, or ``None`` on an empty ring."""
        if not self._points:
            return None
        point = _stable_hash(key)
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):
            index = 0
        return self._owners[self._points[index]]


class ShardRouter:
    """Maps a query (text + seeds) to a shard name via the ring."""

    def __init__(
        self,
        shard_names: Sequence[str],
        mode: str = "query",
        vnodes: int = 64,
    ) -> None:
        if mode not in ROUTING_MODES:
            raise ValueError(f"unknown routing mode {mode!r} (use {ROUTING_MODES})")
        self.mode = mode
        self._ring = HashRing(shard_names, vnodes=vnodes)

    @property
    def ring(self) -> HashRing:
        return self._ring

    def add_shard(self, name: str) -> None:
        self._ring.add(name)

    def remove_shard(self, name: str) -> None:
        self._ring.remove(name)

    def key_for(self, query_text: str, seeds: Optional[Sequence[str]]) -> str:
        """The routing key a query hashes under (exposed for tests)."""
        if self.mode == "origin" and seeds:
            return pod_origin(seeds[0])
        seed_part = ",".join(seeds) if seeds else ""
        return f"{query_text}\n--seeds--\n{seed_part}"

    def route(self, query_text: str, seeds: Optional[Sequence[str]]) -> Optional[str]:
        return self._ring.route(self.key_for(query_text, seeds))
