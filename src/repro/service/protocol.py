"""SPARQL-protocol front-end backed by the link-traversal QueryService.

Where :class:`~repro.federation.endpoint.SparqlEndpointApp` answers from
a fixed dataset, this app answers by *traversal*: each request becomes a
query submitted to a shared :class:`~repro.service.QueryService`, so
repeat and concurrent requests benefit from the service's HTTP cache and
parsed-document store.

Protocol extensions beyond the shared plumbing:

* ``GET /sparql?query=...&seeds=url1,url2`` — optional comma-separated
  seed URLs (without them the engine falls back to IRIs in the query);
* admission rejections surface as ``503`` with a ``retry-after`` hint;
* ``GET /service/status`` — the versioned schema-2 status document
  (:mod:`repro.service.status`): service counters, per-tier cache and
  storage statistics, worker pool summary, query registry.
"""

from __future__ import annotations

import json
from urllib.parse import parse_qs, urlsplit

from ..federation.endpoint import SparqlProtocolApp
from ..net.message import Request, Response
from ..sparql.algebra import Query
from .service import QueryService, ServiceOverloadedError
from .status import build_status, build_status_async

__all__ = ["ServiceSparqlApp"]


class ServiceSparqlApp(SparqlProtocolApp):
    """``/sparql`` over live link traversal, with a ``/service/status`` view."""

    def __init__(
        self,
        service: QueryService,
        path: str = "/sparql",
        status_path: str = "/service/status",
    ) -> None:
        super().__init__(path)
        self._service = service
        self._status_path = status_path

    @property
    def service(self) -> QueryService:
        return self._service

    async def handle_other(self, request: Request) -> Response:
        if urlsplit(request.url).path == self._status_path:
            # Sharded front-ends poll every worker live inside the async
            # build, so the document aggregates *current* shard gauges.
            document = await build_status_async(self._service)
            body = json.dumps(document).encode("utf-8")
            return Response(200, {"content-type": "application/json"}, body)
        return Response.not_found(request.url)

    def status_document(self) -> dict:
        return build_status(self._service)

    async def answer(self, query: Query, request: Request) -> Response:
        if query.form not in ("SELECT", "ASK"):
            return Response(400, {"content-type": "text/plain"}, b"only SELECT/ASK supported")
        params = parse_qs(urlsplit(request.url).query)
        seeds_param = params.get("seeds", [""])[0]
        seeds = [seed for seed in seeds_param.split(",") if seed] or None
        try:
            handle = self._service.submit(query, seeds=seeds)
        except ServiceOverloadedError as error:
            return Response(
                503,
                {"content-type": "text/plain", "retry-after": "1"},
                str(error).encode("utf-8"),
            )
        try:
            result = await handle.wait()
        except ServiceOverloadedError as error:
            # Sharded deployments detect overload inside the worker, so
            # it can surface at wait time rather than submit time.
            return Response(
                503,
                {"content-type": "text/plain", "retry-after": "1"},
                str(error).encode("utf-8"),
            )
        except Exception as error:  # noqa: BLE001 — a failed query is a 500
            return Response(500, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        if query.form == "ASK":
            # The engine represents ASK as zero-or-one empty binding.
            return self.ask_response(bool(result.results))
        return self.select_response(query.variables(), result.bindings)
