"""SPARQL-protocol front-end backed by the link-traversal QueryService.

Where :class:`~repro.federation.endpoint.SparqlEndpointApp` answers from
a fixed dataset, this app answers by *traversal*: each request becomes a
query submitted to a shared :class:`~repro.service.QueryService`, so
repeat and concurrent requests benefit from the service's HTTP cache and
parsed-document store.

Protocol extensions beyond the shared plumbing:

* ``GET /sparql?query=...&seeds=url1,url2`` — optional comma-separated
  seed URLs (without them the engine falls back to IRIs in the query);
* admission rejections surface as ``503`` with a ``retry-after`` hint;
* ``GET /service/status`` — the versioned schema-2 status document
  (:mod:`repro.service.status`): service counters, per-tier cache and
  storage statistics, worker pool summary, query registry;
* ``GET /subscribe?query=...`` — open a *standing* query: the response
  carries a subscription id plus the initial signed events; poll
  ``/subscribe?id=...&after=SEQ`` (long-poll via ``&wait=SECONDS``) for
  subsequent result changes, ``&close=1`` to end the stream;
* ``POST /update?url=...`` — apply a SPARQL Update to one pod document
  (owner-authenticated on the simulated server); standing queries are
  drained before the response, so their events are ready to poll.
"""

from __future__ import annotations

import asyncio
import json
import time
from urllib.parse import parse_qs, urlsplit

from ..federation.endpoint import SparqlProtocolApp
from ..net.message import Request, Response
from ..sparql.algebra import Query
from .service import QueryService, ServiceOverloadedError
from .status import build_status, build_status_async
from .wire import encode_term

__all__ = ["ServiceSparqlApp"]


def _event_json(event) -> dict:
    """One signed result change as a JSON-friendly object."""
    return {
        "seq": event.seq,
        "delta": event.delta,
        "url": event.url,
        "binding": {
            variable.value: encode_term(term)
            for variable, term in sorted(
                event.binding.items(), key=lambda item: item[0].value
            )
        },
    }


def _json_response(document: dict, status: int = 200) -> Response:
    body = json.dumps(document).encode("utf-8")
    return Response(status, {"content-type": "application/json"}, body)


class ServiceSparqlApp(SparqlProtocolApp):
    """``/sparql`` over live link traversal, with a ``/service/status`` view."""

    def __init__(
        self,
        service: QueryService,
        path: str = "/sparql",
        status_path: str = "/service/status",
        subscribe_path: str = "/subscribe",
        update_path: str = "/update",
    ) -> None:
        super().__init__(path)
        self._service = service
        self._status_path = status_path
        self._subscribe_path = subscribe_path
        self._update_path = update_path

    @property
    def service(self) -> QueryService:
        return self._service

    async def handle_other(self, request: Request) -> Response:
        path = urlsplit(request.url).path
        if path == self._status_path:
            # Sharded front-ends poll every worker live inside the async
            # build, so the document aggregates *current* shard gauges.
            document = await build_status_async(self._service)
            return _json_response(document)
        if path == self._subscribe_path:
            return await self._handle_subscribe(request)
        if path == self._update_path:
            return await self._handle_update(request)
        return Response.not_found(request.url)

    # -- standing queries over HTTP -------------------------------------

    async def _handle_subscribe(self, request: Request) -> Response:
        """Open, poll, or close a standing query (long-poll transport).

        ``?query=...[&seeds=...]`` opens one and returns its id plus the
        initial events; ``?id=...&after=SEQ[&wait=S]`` returns events
        with ``seq > SEQ``, blocking up to ``S`` seconds for new ones;
        ``?id=...&close=1`` ends the subscription.
        """
        params = parse_qs(urlsplit(request.url).query)
        sub_id = params.get("id", [""])[0]
        if not sub_id:
            query_text = params.get("query", [""])[0]
            if not query_text:
                return Response(
                    400, {"content-type": "text/plain"}, b"missing query or id"
                )
            seeds_param = params.get("seeds", [""])[0]
            seeds = [seed for seed in seeds_param.split(",") if seed] or None
            try:
                subscription = await self._service.subscribe(query_text, seeds=seeds)
            except ServiceOverloadedError as error:
                return Response(
                    503,
                    {"content-type": "text/plain", "retry-after": "1"},
                    str(error).encode("utf-8"),
                )
            except Exception as error:  # noqa: BLE001 — a bad query is a 400
                return Response(
                    400, {"content-type": "text/plain"}, str(error).encode("utf-8")
                )
            events = list(subscription.events)
            return _json_response(
                {
                    "subscription": subscription.id,
                    "events": [_event_json(event) for event in events],
                    "next": events[-1].seq + 1 if events else 0,
                }
            )
        subscription = self._service.get_subscription(sub_id)
        if subscription is None:
            return Response(404, {"content-type": "text/plain"}, b"unknown subscription")
        if params.get("close", [""])[0]:
            await subscription.close()
            return _json_response({"subscription": sub_id, "closed": True})
        after = int(params.get("after", ["-1"])[0])
        wait = float(params.get("wait", ["0"])[0])

        async def fresh_events() -> list:
            # In-process services drain here so writes applied directly
            # to a pod (not via /update) surface without an extra poke;
            # sharded workers drain on their own loops.
            drainer = getattr(self._service, "drain_subscriptions", None)
            if drainer is not None:
                await drainer()
            return [event for event in subscription.events if event.seq > after]

        events = await fresh_events()
        deadline = time.monotonic() + wait
        while not events and not subscription.closed and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
            events = await fresh_events()
        return _json_response(
            {
                "subscription": sub_id,
                "events": [_event_json(event) for event in events],
                "next": events[-1].seq + 1 if events else after + 1,
                "closed": subscription.closed,
            }
        )

    async def _handle_update(self, request: Request) -> Response:
        """Apply a SPARQL Update to one pod document via the service."""
        params = parse_qs(urlsplit(request.url).query)
        url = params.get("url", [""])[0]
        update = request.body.decode("utf-8") if request.body else ""
        if not url or not update:
            return Response(
                400, {"content-type": "text/plain"}, b"need url param and update body"
            )
        try:
            report = await self._service.apply_update(url, update)
        except RuntimeError as error:
            return Response(409, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        return _json_response(report)

    def status_document(self) -> dict:
        return build_status(self._service)

    async def answer(self, query: Query, request: Request) -> Response:
        if query.form not in ("SELECT", "ASK"):
            return Response(400, {"content-type": "text/plain"}, b"only SELECT/ASK supported")
        params = parse_qs(urlsplit(request.url).query)
        seeds_param = params.get("seeds", [""])[0]
        seeds = [seed for seed in seeds_param.split(",") if seed] or None
        try:
            handle = self._service.submit(query, seeds=seeds)
        except ServiceOverloadedError as error:
            return Response(
                503,
                {"content-type": "text/plain", "retry-after": "1"},
                str(error).encode("utf-8"),
            )
        try:
            result = await handle.wait()
        except ServiceOverloadedError as error:
            # Sharded deployments detect overload inside the worker, so
            # it can surface at wait time rather than submit time.
            return Response(
                503,
                {"content-type": "text/plain", "retry-after": "1"},
                str(error).encode("utf-8"),
            )
        except Exception as error:  # noqa: BLE001 — a failed query is a 500
            return Response(500, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        if query.form == "ASK":
            # The engine represents ASK as zero-or-one empty binding.
            return self.ask_response(bool(result.results))
        return self.select_response(query.variables(), result.bindings)
