"""The versioned ``/service/status`` document.

Before schema 2, status consumers saw *different* shapes depending on
deployment: the in-process :class:`~repro.service.QueryService` exposed
flat counters while the sharded front-end nested everything under
per-worker blocks — the web UI and protocol layer each re-derived their
own view.  This module is the single place that shape lives now:

* ``"schema": 2`` versions the payload, so dashboards can detect drift;
* ``"mode"`` is ``"single"`` or ``"sharded"`` — but the ``"service"``
  block carries the *same key set* in both, with sharded deployments
  reporting front-end admission counters plus summed per-worker cache,
  document-store, and storage-tier statistics;
* ``"workers"`` summarizes the pool (a single service is a pool of one);
* ``"shards"`` holds the raw per-worker blocks (empty when unsharded);
* ``"queries"`` is the registry snapshot list both modes already share.

The storage tier (:mod:`repro.storage`) surfaces here twice: inside
``http_cache``/``document_store`` (per-tier LRU + backend counters) and
as the backend-level ``storage`` block (file size, pending writes).
"""

from __future__ import annotations

__all__ = ["STATUS_SCHEMA_VERSION", "build_status", "build_status_async"]

#: Bump when the document shape changes incompatibly.
STATUS_SCHEMA_VERSION = 2

#: The keys every ``"service"`` block carries, sharded or not.
_SERVICE_KEYS = (
    "active",
    "queued",
    "accepted",
    "rejected",
    "completed",
    "failed",
    "cancelled",
    "subscriptions",
    "shutdown_errors",
    "http_cache",
    "document_store",
    "storage",
    "requests",
)


def _service_block(source: dict, counters: dict) -> dict:
    """One uniform service block: cache/gauge keys from ``source``,
    admission counters from ``counters`` (the same dict when unsharded)."""
    block = {}
    for key in _SERVICE_KEYS:
        origin = counters if key in ("accepted", "rejected", "completed", "failed", "cancelled", "subscriptions") else source
        value = origin.get(key)
        if value is None:
            if key in ("http_cache", "document_store", "storage"):
                value = {}
            elif key == "shutdown_errors":
                # Swallowed teardown exceptions, aggregated across shards;
                # an empty list is the healthy state.
                value = []
            else:
                value = 0
        block[key] = value
    return block


def build_status(service) -> dict:
    """The schema-2 status document for any service-shaped object.

    Synchronous and safe from any thread; for sharded services the
    per-worker blocks are the last health-check/status snapshots (call
    :func:`build_status_async` to refresh them first).
    """
    stats = service.statistics()
    queries = [handle.snapshot() for handle in service.queries()]
    if stats.get("mode") == "sharded":
        document = {
            "schema": STATUS_SCHEMA_VERSION,
            "mode": "sharded",
            "workers": {
                "total": stats["workers"],
                "ready": stats["workers_ready"],
                "restarts": stats["restarts"],
                "routing": stats["routing"],
            },
            "service": _service_block(stats.get("totals", {}), stats),
            "shards": stats.get("shards", {}),
            "queries": queries,
        }
    else:
        document = {
            "schema": STATUS_SCHEMA_VERSION,
            "mode": "single",
            "workers": {"total": 1, "ready": 1, "restarts": 0, "routing": None},
            "service": _service_block(stats, stats),
            "shards": {},
            "queries": queries,
        }
    return document


async def build_status_async(service) -> dict:
    """Like :func:`build_status`, but poll live shard gauges first.

    The sharded front-end caches each worker's last status report;
    awaiting its ``status()`` refreshes those caches so the document
    aggregates *current* gauges.  Single services have no ``status``
    coroutine and skip straight to the synchronous build.
    """
    refresh = getattr(service, "status", None)
    if refresh is not None:
        await refresh()
    return build_status(service)
