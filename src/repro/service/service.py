"""The long-lived multi-query service on top of the LTQP engine.

One :class:`QueryService` owns one engine over one set of
:class:`~repro.service.resources.SharedResources` and executes many
queries — concurrently, with admission control — against them:

* **Admission control** — at most ``max_concurrent`` queries traverse at
  once; up to ``max_queued`` more wait their turn; past that,
  :meth:`submit` raises :class:`ServiceOverloadedError` (the SPARQL
  front-end turns it into a 503).
* **Registry** — every accepted query gets an id and a
  :class:`ServiceQuery` handle with live status
  (``queued → running → done | failed | cancelled``), timings, and
  cancellation via the underlying
  :class:`~repro.ltqp.engine.QueryExecution`.
* **Budgets** — per-query link (``max_documents``) and time
  (``max_duration``) budgets override the service defaults through a
  per-execution :class:`~repro.ltqp.engine.TraversalPolicy`.
* **Isolation** — every execution gets *fresh* extractor instances (some
  extractors carry per-query state) and its own link queue, triple
  source, pipeline, and stats; only the client, caches, and
  parsed-document store are shared — which is exactly what makes warm
  queries fast without letting one query's state leak into another's.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from typing import Iterable, Optional, Union as TypingUnion

from urllib.parse import urlsplit

from ..ltqp.engine import (
    EngineConfig,
    ExecutionResult,
    LinkTraversalEngine,
    QueryExecution,
    TraversalPolicy,
)
from ..ltqp.extractors import default_extractors
from ..ltqp.live import LiveQuery, ResultChange
from ..net.message import Request
from ..sparql.algebra import Query
from .resources import SharedResources

__all__ = [
    "ServiceOverloadedError",
    "ServiceQuery",
    "ServiceSubscription",
    "QueryService",
]


class ServiceOverloadedError(RuntimeError):
    """Raised when both the running set and the waiting queue are full."""


class ServiceQuery:
    """Registry entry + handle for one query admitted to the service."""

    def __init__(self, query_id: str, query: Query, seeds: Optional[list[str]]) -> None:
        self.id = query_id
        self.query = query
        self.seeds = seeds
        self.status = "queued"
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[BaseException] = None
        #: The engine-level handle; ``None`` until the query leaves the
        #: waiting queue.
        self.execution: Optional[QueryExecution] = None
        self._done = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    async def wait(self) -> ExecutionResult:
        """Block until the query finishes; returns its results (or raises)."""
        await self._done.wait()
        if self.error is not None:
            raise self.error
        assert self.execution is not None
        return self.execution.result

    async def cancel(self) -> "ServiceQuery":
        """Stop the query: dequeue it if waiting, interrupt it if running.

        Always cancels the driving task rather than the execution's own
        generator — a generator cannot be ``aclose()``d from a second
        task while the driver is suspended inside it, but a task cancel
        interrupts it at its await point and runs its cleanup.
        """
        if self.done:
            return self
        if self._task is not None:
            self._task.cancel()
        elif self.execution is not None:
            await self.execution.cancel()
        await self._done.wait()
        return self

    def snapshot(self) -> dict:
        """A JSON-friendly view for the registry/status endpoints."""
        stats = self.execution.stats if self.execution is not None else None
        return {
            "id": self.id,
            "status": self.status,
            "form": self.query.form,
            "submitted_at": round(self.submitted_at, 4),
            "started_at": round(self.started_at, 4) if self.started_at else None,
            "finished_at": round(self.finished_at, 4) if self.finished_at else None,
            "results": stats.result_count if stats is not None else 0,
            "documents_fetched": stats.documents_fetched if stats is not None else 0,
            "documents_from_store": stats.documents_from_store if stats is not None else 0,
            "error": str(self.error) if self.error is not None else None,
        }


class ServiceSubscription:
    """Registry entry + handle for one standing query on the service.

    Wraps a :class:`~repro.ltqp.live.LiveQuery` whose change intake is
    wired to every Solid server the service's simulated internet hosts:
    an accepted PATCH/PUT anywhere notifies the live query, and the
    service drains the notifications into signed result-change events.
    """

    def __init__(self, sub_id: str, live: LiveQuery, service: "QueryService") -> None:
        self.id = sub_id
        self.live = live
        self._service = service

    @property
    def query(self) -> Query:
        return self.live.query

    @property
    def events(self) -> list[ResultChange]:
        """Full ordered change history (initial results as ``+1`` events)."""
        return self.live.events

    @property
    def closed(self) -> bool:
        return self.live.closed

    def current_results(self) -> dict:
        return self.live.current_results()

    def queue(self) -> asyncio.Queue:
        """An event queue replaying the history, then streaming updates."""
        return self.live.subscribe()

    async def drain(self) -> list[ResultChange]:
        """Refresh every document flagged changed since the last drain."""
        return await self.live.drain()

    async def close(self) -> None:
        """End the standing query and unregister it from the service."""
        self._service._drop_subscription(self)

    def snapshot(self) -> dict:
        return {
            "id": self.id,
            "form": self.query.form,
            "events": len(self.live.events),
            "results": sum(self.live.current_results().values()),
            "pending": len(self.live.pending),
            "failed_refreshes": len(self.live.failed_refreshes),
            "closed": self.live.closed,
        }


class QueryService:
    """Executes many queries over shared resources with admission control."""

    def __init__(
        self,
        resources: SharedResources,
        config: Optional[EngineConfig] = None,
        extractor_factory=default_extractors,
        max_concurrent: int = 8,
        max_queued: int = 32,
        default_max_documents: int = 0,
        default_max_duration: float = 0.0,
    ) -> None:
        self._resources = resources
        self._config = config if config is not None else EngineConfig()
        self._extractor_factory = extractor_factory
        self._max_concurrent = max(1, max_concurrent)
        self._max_queued = max(0, max_queued)
        self._default_max_documents = default_max_documents
        self._default_max_duration = default_max_duration
        self._engine = LinkTraversalEngine(
            resources.client,
            config=self._config,
            dereferencer=resources.dereferencer,
        )
        self._semaphore = asyncio.Semaphore(self._max_concurrent)
        self._registry: dict[str, ServiceQuery] = {}
        self._subscriptions: dict[str, ServiceSubscription] = {}
        self._sub_ids = itertools.count(1)
        self._listening: list = []  # SolidServers we installed listeners on
        self._drain_task: Optional[asyncio.Task] = None
        self._ids = itertools.count(1)
        self._active = 0
        self._queued = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    # -- introspection --------------------------------------------------

    @property
    def resources(self) -> SharedResources:
        return self._resources

    @property
    def engine(self) -> LinkTraversalEngine:
        return self._engine

    @property
    def active_count(self) -> int:
        return self._active

    @property
    def queued_count(self) -> int:
        return self._queued

    def get(self, query_id: str) -> Optional[ServiceQuery]:
        return self._registry.get(query_id)

    def queries(self) -> list[ServiceQuery]:
        return list(self._registry.values())

    def inflight(self) -> list[ServiceQuery]:
        """Queries admitted but not yet finished (queued or running)."""
        return [handle for handle in self._registry.values() if not handle.done]

    async def drain(self, timeout: float = 5.0) -> list[dict]:
        """Wait up to ``timeout`` for in-flight queries to finish.

        Returns the snapshots of queries *still* unfinished at the
        deadline — the callers' drain reports.  An empty list means the
        service went quiet.  Nothing is cancelled here; the caller
        decides what to do with the stragglers.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        pending = self.inflight()
        while pending and time.monotonic() < deadline:
            waiters = [handle._done.wait() for handle in pending]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(asyncio.gather(*waiters), timeout=remaining)
            except asyncio.TimeoutError:
                pass
            pending = self.inflight()
        return [handle.snapshot() for handle in pending]

    def statistics(self) -> dict:
        """Service counters plus the shared caches' statistics."""
        return {
            "active": self._active,
            "queued": self._queued,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "subscriptions": len(self._subscriptions),
            "shutdown_errors": self.shutdown_errors(),
            **self._resources.statistics(),
        }

    def shutdown_errors(self) -> list[str]:
        """Teardown exceptions swallowed by any execution, query-tagged.

        Shutdown must not fail a query, but an operator must still see
        these — they surface here and in ``/service/status``.
        """
        errors: list[str] = []
        for handle in self._registry.values():
            execution = handle.execution
            if execution is None:
                continue
            for error in execution.stats.shutdown_errors:
                errors.append(f"{handle.id}: {error}")
        for subscription in self._subscriptions.values():
            for error in subscription.live.execution.stats.shutdown_errors:
                errors.append(f"{subscription.id}: {error}")
        return errors

    # -- submission -----------------------------------------------------

    def submit(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        max_documents: Optional[int] = None,
        max_duration: Optional[float] = None,
        tracer=None,
        metrics=None,
    ) -> ServiceQuery:
        """Admit a query (or raise :class:`ServiceOverloadedError`).

        Must be called with a running event loop — the returned handle's
        execution is driven as an :class:`asyncio.Task`.  ``await
        handle.wait()`` for the result, ``await handle.cancel()`` to stop
        it; live status is on the handle throughout.
        """
        metrics_registry = self._resources.metrics
        if self._active + self._queued >= self._max_concurrent + self._max_queued:
            self.rejected += 1
            metrics_registry.counter("service.rejected").inc()
            raise ServiceOverloadedError(
                f"service at capacity ({self._active} running, {self._queued} queued)"
            )
        parsed = self._engine._parse(query)
        handle = ServiceQuery(
            f"q{next(self._ids)}", parsed, list(seeds) if seeds is not None else None
        )
        self._registry[handle.id] = handle
        self.accepted += 1
        metrics_registry.counter("service.accepted").inc()
        self._queued += 1
        self._sync_gauges()
        traversal = self._traversal_for(max_documents, max_duration)
        handle._task = asyncio.create_task(
            self._drive(handle, traversal, tracer, metrics),
            name=f"query-service-{handle.id}",
        )
        return handle

    async def run(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        **kwargs,
    ) -> ExecutionResult:
        """Submit and wait: the one-call path for front-ends."""
        return await self.submit(query, seeds=seeds, **kwargs).wait()

    # -- standing queries -----------------------------------------------

    def subscriptions(self) -> list[ServiceSubscription]:
        return list(self._subscriptions.values())

    def get_subscription(self, sub_id: str) -> Optional[ServiceSubscription]:
        return self._subscriptions.get(sub_id)

    async def subscribe(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        tracer=None,
        metrics=None,
        max_documents: Optional[int] = None,
        max_duration: Optional[float] = None,
    ) -> ServiceSubscription:
        """Open a standing query: run it to quiescence, then keep its
        result multiset current as pods change.

        The returned :class:`ServiceSubscription` exposes the signed
        event stream (:meth:`ServiceSubscription.queue`); change intake
        is automatic — every :class:`~repro.solid.server.SolidServer` on
        the service's internet notifies the subscription on accepted
        writes, and a drain task turns notifications into refreshes.
        Counts against the same admission capacity as :meth:`submit`.
        """
        metrics_registry = self._resources.metrics
        if self._active + self._queued >= self._max_concurrent + self._max_queued:
            self.rejected += 1
            metrics_registry.counter("service.rejected").inc()
            raise ServiceOverloadedError(
                f"service at capacity ({self._active} running, {self._queued} queued)"
            )
        traversal = self._traversal_for(max_documents, max_duration)
        live = LiveQuery(
            self._engine,
            query,
            seeds=seeds,
            tracer=tracer,
            metrics=metrics,
            traversal=traversal,
        )
        self._active += 1
        self._sync_gauges()
        try:
            await live.start()
        finally:
            self._active -= 1
            self._sync_gauges()
        subscription = ServiceSubscription(f"s{next(self._sub_ids)}", live, self)
        self._subscriptions[subscription.id] = subscription
        metrics_registry.counter("service.subscriptions").inc()
        self._ensure_change_listeners()
        return subscription

    async def apply_update(self, url: str, update: str) -> dict:
        """Apply a SPARQL Update to one pod document, owner-authenticated.

        The control-plane edit path for demos and tests: dispatches a
        ``PATCH`` (``application/sparql-update``) to the document's
        origin app with the pod owner's credentials, then drains every
        standing query so the resulting signed events are published
        before this call returns.  Raises on a rejected update.
        """
        url = url.split("#", 1)[0]
        internet = self._resources.internet
        parts = urlsplit(url)
        app = internet.app_for(f"{parts.scheme}://{parts.netloc}")
        headers = {"content-type": "application/sparql-update"}
        login = getattr(app, "login_owner", None)
        if login is not None:
            headers.update(login(parts.path))
        response = await internet.dispatch(
            Request("PATCH", url, headers, update.encode("utf-8"))
        )
        if response.status >= 400:
            raise RuntimeError(
                f"update rejected: HTTP {response.status} for {url}: "
                f"{response.body.decode('utf-8', 'replace')[:200]}"
            )
        events = await self.drain_subscriptions()
        return {"url": url, "status": response.status, "events": len(events)}

    async def drain_subscriptions(self) -> list[ResultChange]:
        """Refresh every changed document across all standing queries."""
        events: list[ResultChange] = []
        for subscription in list(self._subscriptions.values()):
            events.extend(await subscription.live.drain())
        return events

    def _ensure_change_listeners(self) -> None:
        """Install one change listener per Solid server, once."""
        internet = self._resources.internet
        for origin in internet.origins():
            app = internet.app_for(origin)
            if app in self._listening:
                continue
            add = getattr(app, "add_change_listener", None)
            if add is None:
                continue
            add(self._on_document_changed)
            self._listening.append(app)

    def _on_document_changed(self, url: str) -> None:
        """Solid-server write listener: flag the document, schedule a drain."""
        notified = False
        for subscription in self._subscriptions.values():
            if not subscription.live.closed:
                subscription.live.notify(url)
                notified = True
        if notified:
            self._schedule_drain()

    def _schedule_drain(self) -> None:
        if self._drain_task is None or self._drain_task.done():
            self._drain_task = asyncio.ensure_future(self.drain_subscriptions())

    def _drop_subscription(self, subscription: ServiceSubscription) -> None:
        subscription.live.close()
        self._subscriptions.pop(subscription.id, None)

    # -- internals ------------------------------------------------------

    def _traversal_for(
        self, max_documents: Optional[int], max_duration: Optional[float]
    ) -> Optional[TraversalPolicy]:
        """A per-query policy when any budget differs from the engine's."""
        documents = (
            max_documents if max_documents is not None else self._default_max_documents
        )
        duration = (
            max_duration if max_duration is not None else self._default_max_duration
        )
        base = self._config.traversal
        if documents == base.max_documents and duration == base.max_duration:
            return None
        return dataclasses.replace(
            base, max_documents=documents, max_duration=duration
        )

    def _sync_gauges(self) -> None:
        metrics = self._resources.metrics
        metrics.gauge("service.queries.active").set(self._active)
        metrics.gauge("service.queries.queued").set(self._queued)
        metrics.gauge("service.docstore.hit_rate").set(
            self._resources.document_store.hit_rate
        )

    async def _drive(
        self,
        handle: ServiceQuery,
        traversal: Optional[TraversalPolicy],
        tracer,
        metrics,
    ) -> None:
        metrics_registry = self._resources.metrics
        dequeued = False
        try:
            async with self._semaphore:
                self._queued -= 1
                dequeued = True
                self._active += 1
                handle.status = "running"
                handle.started_at = time.monotonic()
                self._sync_gauges()
                try:
                    execution = self._engine.query(
                        handle.query,
                        seeds=handle.seeds,
                        tracer=tracer,
                        metrics=metrics,
                        extractors=self._extractor_factory(),
                        traversal=traversal,
                    )
                    handle.execution = execution
                    await execution.gather()
                    if execution.cancelled:
                        handle.status = "cancelled"
                        self.cancelled += 1
                        metrics_registry.counter("service.cancelled").inc()
                    else:
                        handle.status = "done"
                        self.completed += 1
                        metrics_registry.counter("service.completed").inc()
                finally:
                    self._active -= 1
        except asyncio.CancelledError:
            # Either cancelled while waiting in the admission queue, or a
            # task cancel interrupted ``gather`` mid-run — in which case
            # the generator has already unwound and ``execution.cancel``
            # just finalizes its bookkeeping.
            if not dequeued:
                self._queued -= 1
            if handle.execution is not None:
                await handle.execution.cancel()
            handle.status = "cancelled"
            self.cancelled += 1
            metrics_registry.counter("service.cancelled").inc()
        except Exception as error:  # noqa: BLE001 — registry reports it
            handle.status = "failed"
            handle.error = error
            self.failed += 1
            metrics_registry.counter("service.failed").inc()
        finally:
            handle.finished_at = time.monotonic()
            self._sync_gauges()
            handle._done.set()
