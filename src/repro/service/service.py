"""The long-lived multi-query service on top of the LTQP engine.

One :class:`QueryService` owns one engine over one set of
:class:`~repro.service.resources.SharedResources` and executes many
queries — concurrently, with admission control — against them:

* **Admission control** — at most ``max_concurrent`` queries traverse at
  once; up to ``max_queued`` more wait their turn; past that,
  :meth:`submit` raises :class:`ServiceOverloadedError` (the SPARQL
  front-end turns it into a 503).
* **Registry** — every accepted query gets an id and a
  :class:`ServiceQuery` handle with live status
  (``queued → running → done | failed | cancelled``), timings, and
  cancellation via the underlying
  :class:`~repro.ltqp.engine.QueryExecution`.
* **Budgets** — per-query link (``max_documents``) and time
  (``max_duration``) budgets override the service defaults through a
  per-execution :class:`~repro.ltqp.engine.TraversalPolicy`.
* **Isolation** — every execution gets *fresh* extractor instances (some
  extractors carry per-query state) and its own link queue, triple
  source, pipeline, and stats; only the client, caches, and
  parsed-document store are shared — which is exactly what makes warm
  queries fast without letting one query's state leak into another's.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from typing import Iterable, Optional, Union as TypingUnion

from ..ltqp.engine import (
    EngineConfig,
    ExecutionResult,
    LinkTraversalEngine,
    QueryExecution,
    TraversalPolicy,
)
from ..ltqp.extractors import default_extractors
from ..sparql.algebra import Query
from .resources import SharedResources

__all__ = ["ServiceOverloadedError", "ServiceQuery", "QueryService"]


class ServiceOverloadedError(RuntimeError):
    """Raised when both the running set and the waiting queue are full."""


class ServiceQuery:
    """Registry entry + handle for one query admitted to the service."""

    def __init__(self, query_id: str, query: Query, seeds: Optional[list[str]]) -> None:
        self.id = query_id
        self.query = query
        self.seeds = seeds
        self.status = "queued"
        self.submitted_at = time.monotonic()
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.error: Optional[BaseException] = None
        #: The engine-level handle; ``None`` until the query leaves the
        #: waiting queue.
        self.execution: Optional[QueryExecution] = None
        self._done = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    async def wait(self) -> ExecutionResult:
        """Block until the query finishes; returns its results (or raises)."""
        await self._done.wait()
        if self.error is not None:
            raise self.error
        assert self.execution is not None
        return self.execution.result

    async def cancel(self) -> "ServiceQuery":
        """Stop the query: dequeue it if waiting, interrupt it if running.

        Always cancels the driving task rather than the execution's own
        generator — a generator cannot be ``aclose()``d from a second
        task while the driver is suspended inside it, but a task cancel
        interrupts it at its await point and runs its cleanup.
        """
        if self.done:
            return self
        if self._task is not None:
            self._task.cancel()
        elif self.execution is not None:
            await self.execution.cancel()
        await self._done.wait()
        return self

    def snapshot(self) -> dict:
        """A JSON-friendly view for the registry/status endpoints."""
        stats = self.execution.stats if self.execution is not None else None
        return {
            "id": self.id,
            "status": self.status,
            "form": self.query.form,
            "submitted_at": round(self.submitted_at, 4),
            "started_at": round(self.started_at, 4) if self.started_at else None,
            "finished_at": round(self.finished_at, 4) if self.finished_at else None,
            "results": stats.result_count if stats is not None else 0,
            "documents_fetched": stats.documents_fetched if stats is not None else 0,
            "documents_from_store": stats.documents_from_store if stats is not None else 0,
            "error": str(self.error) if self.error is not None else None,
        }


class QueryService:
    """Executes many queries over shared resources with admission control."""

    def __init__(
        self,
        resources: SharedResources,
        config: Optional[EngineConfig] = None,
        extractor_factory=default_extractors,
        max_concurrent: int = 8,
        max_queued: int = 32,
        default_max_documents: int = 0,
        default_max_duration: float = 0.0,
    ) -> None:
        self._resources = resources
        self._config = config if config is not None else EngineConfig()
        self._extractor_factory = extractor_factory
        self._max_concurrent = max(1, max_concurrent)
        self._max_queued = max(0, max_queued)
        self._default_max_documents = default_max_documents
        self._default_max_duration = default_max_duration
        self._engine = LinkTraversalEngine(
            resources.client,
            config=self._config,
            dereferencer=resources.dereferencer,
        )
        self._semaphore = asyncio.Semaphore(self._max_concurrent)
        self._registry: dict[str, ServiceQuery] = {}
        self._ids = itertools.count(1)
        self._active = 0
        self._queued = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0

    # -- introspection --------------------------------------------------

    @property
    def resources(self) -> SharedResources:
        return self._resources

    @property
    def engine(self) -> LinkTraversalEngine:
        return self._engine

    @property
    def active_count(self) -> int:
        return self._active

    @property
    def queued_count(self) -> int:
        return self._queued

    def get(self, query_id: str) -> Optional[ServiceQuery]:
        return self._registry.get(query_id)

    def queries(self) -> list[ServiceQuery]:
        return list(self._registry.values())

    def inflight(self) -> list[ServiceQuery]:
        """Queries admitted but not yet finished (queued or running)."""
        return [handle for handle in self._registry.values() if not handle.done]

    async def drain(self, timeout: float = 5.0) -> list[dict]:
        """Wait up to ``timeout`` for in-flight queries to finish.

        Returns the snapshots of queries *still* unfinished at the
        deadline — the callers' drain reports.  An empty list means the
        service went quiet.  Nothing is cancelled here; the caller
        decides what to do with the stragglers.
        """
        deadline = time.monotonic() + max(0.0, timeout)
        pending = self.inflight()
        while pending and time.monotonic() < deadline:
            waiters = [handle._done.wait() for handle in pending]
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                await asyncio.wait_for(asyncio.gather(*waiters), timeout=remaining)
            except asyncio.TimeoutError:
                pass
            pending = self.inflight()
        return [handle.snapshot() for handle in pending]

    def statistics(self) -> dict:
        """Service counters plus the shared caches' statistics."""
        return {
            "active": self._active,
            "queued": self._queued,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            **self._resources.statistics(),
        }

    # -- submission -----------------------------------------------------

    def submit(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        max_documents: Optional[int] = None,
        max_duration: Optional[float] = None,
        tracer=None,
        metrics=None,
    ) -> ServiceQuery:
        """Admit a query (or raise :class:`ServiceOverloadedError`).

        Must be called with a running event loop — the returned handle's
        execution is driven as an :class:`asyncio.Task`.  ``await
        handle.wait()`` for the result, ``await handle.cancel()`` to stop
        it; live status is on the handle throughout.
        """
        metrics_registry = self._resources.metrics
        if self._active + self._queued >= self._max_concurrent + self._max_queued:
            self.rejected += 1
            metrics_registry.counter("service.rejected").inc()
            raise ServiceOverloadedError(
                f"service at capacity ({self._active} running, {self._queued} queued)"
            )
        parsed = self._engine._parse(query)
        handle = ServiceQuery(
            f"q{next(self._ids)}", parsed, list(seeds) if seeds is not None else None
        )
        self._registry[handle.id] = handle
        self.accepted += 1
        metrics_registry.counter("service.accepted").inc()
        self._queued += 1
        self._sync_gauges()
        traversal = self._traversal_for(max_documents, max_duration)
        handle._task = asyncio.create_task(
            self._drive(handle, traversal, tracer, metrics),
            name=f"query-service-{handle.id}",
        )
        return handle

    async def run(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        **kwargs,
    ) -> ExecutionResult:
        """Submit and wait: the one-call path for front-ends."""
        return await self.submit(query, seeds=seeds, **kwargs).wait()

    # -- internals ------------------------------------------------------

    def _traversal_for(
        self, max_documents: Optional[int], max_duration: Optional[float]
    ) -> Optional[TraversalPolicy]:
        """A per-query policy when any budget differs from the engine's."""
        documents = (
            max_documents if max_documents is not None else self._default_max_documents
        )
        duration = (
            max_duration if max_duration is not None else self._default_max_duration
        )
        base = self._config.traversal
        if documents == base.max_documents and duration == base.max_duration:
            return None
        return dataclasses.replace(
            base, max_documents=documents, max_duration=duration
        )

    def _sync_gauges(self) -> None:
        metrics = self._resources.metrics
        metrics.gauge("service.queries.active").set(self._active)
        metrics.gauge("service.queries.queued").set(self._queued)
        metrics.gauge("service.docstore.hit_rate").set(
            self._resources.document_store.hit_rate
        )

    async def _drive(
        self,
        handle: ServiceQuery,
        traversal: Optional[TraversalPolicy],
        tracer,
        metrics,
    ) -> None:
        metrics_registry = self._resources.metrics
        dequeued = False
        try:
            async with self._semaphore:
                self._queued -= 1
                dequeued = True
                self._active += 1
                handle.status = "running"
                handle.started_at = time.monotonic()
                self._sync_gauges()
                try:
                    execution = self._engine.query(
                        handle.query,
                        seeds=handle.seeds,
                        tracer=tracer,
                        metrics=metrics,
                        extractors=self._extractor_factory(),
                        traversal=traversal,
                    )
                    handle.execution = execution
                    await execution.gather()
                    if execution.cancelled:
                        handle.status = "cancelled"
                        self.cancelled += 1
                        metrics_registry.counter("service.cancelled").inc()
                    else:
                        handle.status = "done"
                        self.completed += 1
                        metrics_registry.counter("service.completed").inc()
                finally:
                    self._active -= 1
        except asyncio.CancelledError:
            # Either cancelled while waiting in the admission queue, or a
            # task cancel interrupted ``gather`` mid-run — in which case
            # the generator has already unwound and ``execution.cancel``
            # just finalizes its bookkeeping.
            if not dequeued:
                self._queued -= 1
            if handle.execution is not None:
                await handle.execution.cancel()
            handle.status = "cancelled"
            self.cancelled += 1
            metrics_registry.counter("service.cancelled").inc()
        except Exception as error:  # noqa: BLE001 — registry reports it
            handle.status = "failed"
            handle.error = error
            self.failed += 1
            metrics_registry.counter("service.failed").inc()
        finally:
            handle.finished_at = time.monotonic()
            self._sync_gauges()
            handle._done.set()
