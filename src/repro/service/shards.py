"""Multi-core scale-out: sharded QueryService workers behind one front-end.

One :class:`~repro.service.QueryService` is one asyncio loop — one core,
no matter the hardware.  This module runs **N worker processes**, each
owning a complete, private execution stack (its own
:class:`~repro.service.SharedResources`: HTTP client, HTTP cache,
parsed-document store, circuit breakers — *shared-nothing*), behind a
single :class:`ShardedQueryService` front-end that routes queries with
consistent hashing (:mod:`repro.service.router`):

* ``query`` routing (default) spreads distinct queries across the pool
  while repeats of the same query stay on the same warm shard;
* ``origin`` routing pins seed-heavy queries to the shard owning their
  seed's pod, so a pod's documents are parsed exactly once across the
  whole deployment.

The data plane crosses process boundaries only in wire form
(:mod:`repro.service.wire`): workers re-intern terms locally, result
rows stream back as compact term-table blocks, and a graceful
drain-and-restart hands the outgoing worker's document store (validator
keys intact) to its replacement so the new shard starts warm.

Worker lifecycle: processes are spawned (never forked — each worker
rebuilds its deterministic universe from the picklable
:class:`ShardSpec`), health-checked via per-worker status requests,
drained on graceful restart, and respawned automatically on crash — a
crash fails only the queries in flight on that shard (surfaced as
:class:`WorkerCrashedError`) and removes the shard from the ring until
its replacement reports ready, remapping ~1/N of the key space in the
interim.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union as TypingUnion

from ..ltqp.live import ResultChange
from ..ltqp.stats import TimedResult
from ..sparql.algebra import Query
from ..sparql.parser import parse_query
from .router import ShardRouter
from .service import ServiceOverloadedError
from .wire import (
    decode_events,
    decode_results,
    document_from_wire,
    document_to_wire,
    encode_events,
    encode_results,
)

__all__ = [
    "ShardSpec",
    "WorkerCrashedError",
    "ShardQueryError",
    "ShardedQuery",
    "ShardedResult",
    "ShardedSubscription",
    "ShardedQueryService",
]

#: Result rows per streamed ``rows`` message (worker → front-end).
ROW_CHUNK = 512


class WorkerCrashedError(RuntimeError):
    """The worker owning a query died before answering it."""


class ShardQueryError(RuntimeError):
    """A query failed inside its worker; carries the worker-side message."""


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to build its stack — picklable.

    Workers receive primitives only and regenerate the deterministic
    SolidBench universe locally; nothing live crosses the process
    boundary at startup.
    """

    config: object  # SolidBenchConfig (picklable dataclass)
    latency_seed: Optional[int] = None
    latency_scale: float = 1.0
    no_latency: bool = False
    lenient: bool = True
    queue_policy: str = "fifo"
    max_concurrent: int = 8
    max_queued: int = 32
    default_max_documents: int = 0
    default_max_duration: float = 0.0
    #: Traversal hardening (see :class:`~repro.ltqp.engine.TraversalPolicy`):
    #: applied uniformly to every query on every shard.  ``max_doc_bytes``
    #: caps both the network transfer and the parse admission.
    max_depth: int = 0
    max_origin_derefs: int = 0
    max_doc_bytes: int = 0
    #: Guided traversal (DESIGN.md §4g): a subweb specification applied to
    #: every query on every shard — a JSON file path or a plain dict in the
    #: JSON shape (both picklable; each worker resolves it locally, so
    #: routing never changes which links a query may follow).
    subweb: Optional[object] = None
    #: Persistence tier (see :mod:`repro.storage`).  On the front-end
    #: spec this is a *directory*; each worker receives a copy with its
    #: own file path under it (``<dir>/<shard-name>.sqlite``), so a
    #: respawned worker reopens its predecessor's store warm.
    store_path: Optional[str] = None
    storage_backend: Optional[str] = None

    def for_worker(self, name: str) -> "ShardSpec":
        """The per-worker spec: the store directory becomes this worker's file."""
        if self.store_path is None:
            return self
        import dataclasses

        return dataclasses.replace(
            self, store_path=os.path.join(self.store_path, f"{name}.sqlite")
        )

    @property
    def persistent(self) -> bool:
        return self.store_path is not None or self.storage_backend == "sqlite"


# ---------------------------------------------------------------------------
# worker process side
# ---------------------------------------------------------------------------


def _stats_summary(stats) -> dict:
    """The per-query stats subset shipped back to the front-end."""
    return {
        "result_count": stats.result_count,
        "documents_fetched": stats.documents_fetched,
        "documents_from_store": stats.documents_from_store,
        "documents_failed": stats.documents_failed,
        "triples_discovered": stats.triples_discovered,
        "links_queued": stats.links_queued,
        "total_time": stats.total_time,
        "time_to_first_result": stats.time_to_first_result,
        "streaming": stats.streaming,
        "shutdown_errors": list(stats.shutdown_errors),
        "completeness": stats.completeness(),
    }


async def _report_query(conn, req_id: str, handle, registry: dict) -> None:
    """Drive one admitted query and stream its outcome back."""
    try:
        result = await handle.wait()
    except Exception as error:  # noqa: BLE001 — shipped to the front-end
        conn.send(("error", req_id, "query", f"{type(error).__name__}: {error}"))
        return
    finally:
        registry.pop(req_id, None)
    rows = result.results
    # Stream all-but-the-last chunk, then let the final chunk ride on the
    # completion message so the front-end resolves the query atomically
    # with its last rows.
    head = max(((len(rows) - 1) // ROW_CHUNK) * ROW_CHUNK, 0)
    for start in range(0, head, ROW_CHUNK):
        conn.send(("rows", req_id, encode_results(rows[start : start + ROW_CHUNK])))
    conn.send(
        (
            "done",
            req_id,
            {
                "status": handle.status,
                "rows": encode_results(rows[head:]),
                "stats": _stats_summary(result.stats),
            },
        )
    )


def _event_forwarder(conn, req_id: str):
    """A synchronous LiveQuery listener shipping signed events to the
    front-end.

    Invoked inline at publish time, so every ``events`` message hits the
    pipe *before* the ``done`` ack of the edit that caused it — the
    front-end observes events-then-ack ordering deterministically.
    ``None`` (close) becomes the end-of-stream marker.
    """

    def forward(events) -> None:
        try:
            if events is None:
                conn.send(("events", req_id, None))
            else:
                conn.send(("events", req_id, encode_events(events)))
        except (OSError, BrokenPipeError, ValueError):
            pass

    return forward


async def _worker_loop(conn, spec: ShardSpec) -> None:
    from ..ltqp.engine import EngineConfig
    from .resources import SharedResources
    from .service import QueryService

    try:
        resources = SharedResources.for_config(
            spec.config,
            latency_seed=spec.latency_seed,
            no_latency=spec.no_latency,
            latency_scale=spec.latency_scale,
            lenient=spec.lenient,
            store_path=spec.store_path,
            storage_backend=spec.storage_backend,
        )
        engine_config = EngineConfig(
            queue_policy=spec.queue_policy,
            max_depth=spec.max_depth,
            max_origin_derefs=spec.max_origin_derefs,
            subweb=spec.subweb,
        )
        if spec.max_doc_bytes:
            engine_config.max_response_bytes = spec.max_doc_bytes
            engine_config.max_parse_bytes = spec.max_doc_bytes
        service = QueryService(
            resources,
            config=engine_config,
            max_concurrent=spec.max_concurrent,
            max_queued=spec.max_queued,
            default_max_documents=spec.default_max_documents,
            default_max_duration=spec.default_max_duration,
        )
    except Exception as error:  # noqa: BLE001 — startup failure is fatal
        conn.send(("fatal", f"{type(error).__name__}: {error}"))
        return
    conn.send(("ready", {"pid": os.getpid()}))

    loop = asyncio.get_running_loop()
    inflight: dict[str, object] = {}
    subscriptions: dict[str, object] = {}
    while True:
        try:
            message = await loop.run_in_executor(None, conn.recv)
        except (EOFError, OSError):
            break  # front-end went away; nothing left to serve
        kind = message[0]
        if kind == "shutdown":
            break
        if kind == "cancel":
            handle = inflight.get(message[1])
            if handle is not None:
                asyncio.ensure_future(handle.cancel())
            continue
        if kind == "unsubscribe":
            subscription = subscriptions.pop(message[1], None)
            if subscription is not None:
                asyncio.ensure_future(subscription.close())
            continue
        req_id = message[1]
        try:
            if kind == "submit":
                _, _, text, seeds, opts = message
                try:
                    handle = service.submit(text, seeds=seeds, **opts)
                except ServiceOverloadedError as error:
                    conn.send(("error", req_id, "overloaded", str(error)))
                else:
                    inflight[req_id] = handle
                    asyncio.ensure_future(
                        _report_query(conn, req_id, handle, inflight)
                    )
            elif kind == "subscribe":
                # Standing queries run to quiescence inline: ordering
                # matters here — a "patch" arriving after this message is
                # guaranteed to see the subscription live.
                _, _, text, seeds, opts = message
                try:
                    subscription = await service.subscribe(text, seeds=seeds, **opts)
                except ServiceOverloadedError as error:
                    conn.send(("error", req_id, "overloaded", str(error)))
                else:
                    subscriptions[req_id] = subscription
                    conn.send(
                        (
                            "done",
                            req_id,
                            {
                                "subscription": subscription.id,
                                "events": len(subscription.events),
                            },
                        )
                    )
                    forward = _event_forwarder(conn, req_id)
                    if subscription.events:
                        forward(subscription.events)  # replay initial results
                    subscription.live.add_listener(forward)
            elif kind == "patch":
                # A pod edit: every worker owns a private copy of the
                # deterministic universe, so edits are *broadcast* by the
                # front-end and applied locally on each shard.
                _, _, url, update = message
                report = await service.apply_update(url, update)
                conn.send(("done", req_id, report))
            elif kind == "status":
                conn.send(
                    (
                        "done",
                        req_id,
                        {
                            "pid": os.getpid(),
                            "statistics": service.statistics(),
                            "queries": [h.snapshot() for h in service.queries()],
                        },
                    )
                )
            elif kind == "ping":
                conn.send(("done", req_id, {"pid": os.getpid()}))
            elif kind == "drain":
                pending = await service.drain(timeout=message[2])
                # A drained worker is about to stop or hand off: make its
                # store durable so a replacement reopening the same file
                # (persistent handoff) sees everything it parsed.
                resources.flush()
                conn.send(("done", req_id, {"pending": pending}))
            elif kind == "export_store":
                store = resources.document_store
                conn.send(
                    (
                        "done",
                        req_id,
                        {"documents": [document_to_wire(e) for e in store.entries()]},
                    )
                )
            elif kind == "import_store":
                store = resources.document_store
                for wire in message[2]:
                    store.adopt(document_from_wire(wire))
                conn.send(("done", req_id, {"imported": len(message[2])}))
            else:
                conn.send(("error", req_id, "protocol", f"unknown request {kind!r}"))
        except Exception as error:  # noqa: BLE001 — keep the worker alive
            try:
                conn.send(("error", req_id, "internal", f"{type(error).__name__}: {error}"))
            except (OSError, BrokenPipeError):
                break
    resources.close()
    conn.close()


def _worker_main(conn, spec: ShardSpec) -> None:
    """Entry point of one shard process (must be module-level for spawn)."""
    asyncio.run(_worker_loop(conn, spec))


# ---------------------------------------------------------------------------
# front-end side
# ---------------------------------------------------------------------------


class ShardStats:
    """Attribute view over the stats summary a worker shipped back."""

    def __init__(self, summary: dict) -> None:
        self._summary = dict(summary)
        for key, value in self._summary.items():
            if key != "completeness":
                setattr(self, key, value)

    def completeness(self) -> dict:
        return self._summary.get("completeness", {})

    def as_dict(self) -> dict:
        return dict(self._summary)


class ShardedResult:
    """What one sharded query produced, reassembled on the front-end."""

    def __init__(
        self, query: Query, results: list[TimedResult], stats: ShardStats, shard: str
    ) -> None:
        self.query = query
        self.results = results
        self.stats = stats
        self.shard = shard

    @property
    def bindings(self) -> list:
        return [timed.binding for timed in self.results]

    def __len__(self) -> int:
        return len(self.results)


class ShardedQuery:
    """Front-end handle for one query dispatched to a shard."""

    def __init__(
        self, query_id: str, query: Query, seeds: Optional[list[str]], shard: str
    ) -> None:
        self.id = query_id
        self.query = query
        self.seeds = seeds
        self.shard = shard
        self.status = "running"
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.error: Optional[BaseException] = None
        self.result: Optional[ShardedResult] = None
        self._done = asyncio.Event()
        self._cancel = None  # installed by the service at dispatch time

    @property
    def done(self) -> bool:
        return self.status in ("done", "failed", "cancelled")

    async def wait(self) -> ShardedResult:
        await self._done.wait()
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result

    async def cancel(self) -> "ShardedQuery":
        if not self.done and self._cancel is not None:
            self._cancel()
        await self._done.wait()
        return self

    def snapshot(self) -> dict:
        stats = self.result.stats if self.result is not None else None
        return {
            "id": self.id,
            "shard": self.shard,
            "status": self.status,
            "form": self.query.form,
            "submitted_at": round(self.submitted_at, 4),
            "finished_at": round(self.finished_at, 4) if self.finished_at else None,
            "results": getattr(stats, "result_count", 0),
            "documents_fetched": getattr(stats, "documents_fetched", 0),
            "documents_from_store": getattr(stats, "documents_from_store", 0),
            "error": str(self.error) if self.error is not None else None,
        }


class _ShardWorker:
    """One worker process plus its pipe, reader thread, and bookkeeping."""

    def __init__(self, name: str, spec: ShardSpec, context) -> None:
        self.name = name
        # Each worker persists into its own file under the spec's store
        # directory; the derived spec survives respawns, so a replacement
        # process reopens its predecessor's store warm.
        self.spec = spec.for_worker(name)
        self._context = context
        self.process = None
        self.conn = None
        self.state = "new"  # new → starting → ready → dead | stopped
        self.inflight = 0
        self.last_status: Optional[dict] = None
        self.generation = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._reader: Optional[threading.Thread] = None
        self._pending: dict[str, dict] = {}
        #: req-id → callback for streamed subscription events; unlike
        #: ``_pending`` entries these outlive their "done" ack and are
        #: removed only by the ``None`` end-of-stream marker (or a crash).
        self._events: dict[str, object] = {}
        self._ids = itertools.count(1)
        self.ready: Optional[asyncio.Future] = None
        self.on_crash = None  # callback(worker) installed by the service

    # -- lifecycle ------------------------------------------------------

    def spawn(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self.generation += 1
        self.state = "starting"
        self.ready = loop.create_future()
        parent_conn, child_conn = self._context.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = self._context.Process(
            target=_worker_main,
            args=(child_conn, self.spec),
            name=f"repro-shard-{self.name}",
            daemon=True,
        )
        self.process.start()
        # Close our copy of the child's end, or its death never EOFs us.
        child_conn.close()
        self._reader = threading.Thread(
            target=self._read_loop,
            name=f"shard-{self.name}-reader",
            args=(self.conn, self.generation),
            daemon=True,
        )
        self._reader.start()

    def _read_loop(self, conn, generation: int) -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                self._call_on_loop(self._lost, generation)
                return
            if message[0] == "rows":
                # Decode off the event loop: re-interning is GIL-safe and
                # keeps row decoding out of the front-end's latency path.
                message = ("rows", message[1], decode_results(message[2]))
            elif message[0] == "events" and message[2] is not None:
                message = ("events", message[1], decode_events(message[2]))
            elif message[0] == "done" and isinstance(message[2], dict) and "rows" in message[2]:
                payload = dict(message[2])
                payload["rows"] = decode_results(payload["rows"])
                message = ("done", message[1], payload)
            if not self._call_on_loop(self._dispatch, message, generation):
                return

    def _call_on_loop(self, callback, *args) -> bool:
        """Schedule onto the loop; False when the loop is already gone."""
        try:
            self._loop.call_soon_threadsafe(callback, *args)
            return True
        except RuntimeError:
            return False

    def _dispatch(self, message, generation: int) -> None:
        if generation != self.generation:
            return  # a replacement already took over this name
        kind = message[0]
        if kind == "ready":
            self.state = "ready"
            if self.ready is not None and not self.ready.done():
                self.ready.set_result(message[1])
            return
        if kind == "fatal":
            self.state = "dead"
            if self.ready is not None and not self.ready.done():
                self.ready.set_exception(WorkerCrashedError(message[1]))
            return
        req_id = message[1]
        if kind == "events":
            handler = self._events.get(req_id)
            if handler is None:
                return
            if message[2] is None:
                del self._events[req_id]
            handler(message[2])
            return
        entry = self._pending.get(req_id)
        if entry is None:
            return
        if kind == "rows":
            entry["rows"].extend(message[2])
            return
        del self._pending[req_id]
        future = entry["future"]
        if future.done():
            return
        if kind == "done":
            payload = message[2]
            if isinstance(payload, dict) and "rows" in payload:
                entry["rows"].extend(payload["rows"])
            future.set_result((payload, entry["rows"]))
        elif kind == "error":
            _, _, error_kind, text = message
            if error_kind == "overloaded":
                future.set_exception(ServiceOverloadedError(text))
            else:
                future.set_exception(ShardQueryError(text))

    def _lost(self, generation: int) -> None:
        if generation != self.generation or self.state in ("dead", "stopped"):
            return
        was_stopping = self.state == "stopping"
        self.state = "stopped" if was_stopping else "dead"
        if self.ready is not None and not self.ready.done():
            self.ready.set_exception(WorkerCrashedError(f"shard {self.name} died at startup"))
        pending, self._pending = self._pending, {}
        for entry in pending.values():
            if not entry["future"].done():
                entry["future"].set_exception(
                    WorkerCrashedError(f"shard {self.name} died mid-query")
                )
        # Subscriptions on a dead worker end their event streams cleanly.
        handlers, self._events = self._events, {}
        for handler in handlers.values():
            handler(None)
        if not was_stopping and self.on_crash is not None:
            self.on_crash(self)

    # -- requests -------------------------------------------------------

    def begin(self, kind: str, *args) -> tuple[str, asyncio.Future]:
        """Register a pending request and send it (raises if the pipe is gone)."""
        req_id = f"{self.name}.{next(self._ids)}"
        future = self._loop.create_future()
        self._pending[req_id] = {"future": future, "rows": []}
        try:
            self.conn.send((kind, req_id, *args))
        except (OSError, BrokenPipeError, ValueError):
            del self._pending[req_id]
            self._lost(self.generation)
            raise WorkerCrashedError(f"shard {self.name} is gone") from None
        return req_id, future

    async def request(self, kind: str, *args, timeout: Optional[float] = None):
        _, future = self.begin(kind, *args)
        payload, _rows = await asyncio.wait_for(future, timeout)
        return payload

    def send_cancel(self, req_id: str) -> None:
        try:
            self.conn.send(("cancel", req_id))
        except (OSError, BrokenPipeError, ValueError):
            pass

    def send_unsubscribe(self, req_id: str) -> None:
        try:
            self.conn.send(("unsubscribe", req_id))
        except (OSError, BrokenPipeError, ValueError):
            pass

    async def stop(self, join_timeout: float = 5.0) -> None:
        """Ask the worker to exit; escalate to terminate/kill on timeout."""
        if self.process is None:
            return
        self.state = "stopping"
        try:
            self.conn.send(("shutdown",))
        except (OSError, BrokenPipeError, ValueError):
            pass
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.process.join, join_timeout)
        if self.process.is_alive():
            self.process.terminate()
            await loop.run_in_executor(None, self.process.join, 2.0)
            if self.process.is_alive():
                self.process.kill()
                await loop.run_in_executor(None, self.process.join, 1.0)
        self.state = "stopped"
        try:
            self.conn.close()
        except OSError:
            pass


def _sum_stats(documents: Iterable[dict]) -> dict:
    """Merge shard statistics: sum numbers, concatenate lists, recurse."""
    total: dict = {}
    for document in documents:
        for key, value in document.items():
            if isinstance(value, dict):
                total[key] = _sum_stats([total.get(key, {}), value])
            elif isinstance(value, bool):
                continue
            elif isinstance(value, (int, float)):
                total[key] = total.get(key, 0) + value
            elif isinstance(value, list):
                # Error lists (e.g. shutdown_errors) aggregate by concat,
                # so per-shard teardown failures stay visible in totals.
                total[key] = total.get(key, []) + value
    return total


class ShardedSubscription:
    """Front-end handle for one standing query living on a shard worker.

    Mirrors :class:`~repro.service.service.ServiceSubscription`: signed
    :class:`~repro.ltqp.live.ResultChange` events accumulate on
    :attr:`events` (decoded and re-interned from the worker's wire
    blocks), :meth:`queue` hands out asyncio queues that replay the
    history and then stream, and :meth:`close` tears down the
    worker-side subscription (queues receive ``None``).
    """

    def __init__(
        self, sub_id: str, query: Query, shard: str, worker: "_ShardWorker", req_id: str
    ) -> None:
        self.id = sub_id
        self.query = query
        self.shard = shard
        self._worker = worker
        self._req_id = req_id
        self.events: list[ResultChange] = []
        self._queues: list[asyncio.Queue] = []
        self._closed = False
        self._ended = asyncio.Event()

    @property
    def closed(self) -> bool:
        return self._closed

    def _deliver(self, events: Optional[list[ResultChange]]) -> None:
        """Reader-loop callback: append a decoded batch (None = stream end)."""
        if events is None:
            if not self._closed:
                self._closed = True
                for queue in self._queues:
                    queue.put_nowait(None)
                self._queues.clear()
            self._ended.set()
            return
        self.events.extend(events)
        for queue in self._queues:
            for event in events:
                queue.put_nowait(event)

    def current_results(self) -> dict:
        """The maintained result multiset (replay of the event history)."""
        multiset: dict = {}
        for event in self.events:
            total = multiset.get(event.binding, 0) + event.delta
            if total:
                multiset[event.binding] = total
            else:
                multiset.pop(event.binding, None)
        return multiset

    def queue(self) -> asyncio.Queue:
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.events:
            queue.put_nowait(event)
        if self._closed:
            queue.put_nowait(None)
        else:
            self._queues.append(queue)
        return queue

    async def close(self) -> None:
        """Unsubscribe on the worker; returns once the stream has ended."""
        if not self._closed:
            self._worker.send_unsubscribe(self._req_id)
        await self._ended.wait()

    def snapshot(self) -> dict:
        return {
            "id": self.id,
            "shard": self.shard,
            "form": self.query.form,
            "events": len(self.events),
            "results": sum(self.current_results().values()),
            "closed": self._closed,
        }


class ShardedQueryService:
    """N shard workers behind one submit/run/status front-end.

    API-compatible (duck-typed) with :class:`~repro.service.QueryService`
    where the front-ends need it: ``submit``/``run``/``get``/``queries``/
    ``statistics`` plus an async :meth:`status` that aggregates live
    shard gauges.  Must be started (:meth:`start`) and stopped
    (:meth:`stop`) on a running event loop.
    """

    def __init__(
        self,
        spec: ShardSpec,
        workers: int = 4,
        routing: str = "query",
        auto_restart: bool = True,
        start_method: str = "spawn",
        ready_timeout: float = 120.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self._spec = spec
        self._routing = routing
        self._auto_restart = auto_restart
        self._ready_timeout = ready_timeout
        self._context = multiprocessing.get_context(start_method)
        names = [f"shard-{index}" for index in range(workers)]
        # The ring starts empty; shards join as they report ready.
        self._router = ShardRouter((), mode=routing)
        self._workers = {name: _ShardWorker(name, spec, self._context) for name in names}
        self._registry: dict[str, ShardedQuery] = {}
        self._subscriptions: dict[str, ShardedSubscription] = {}
        self._sub_ids = itertools.count(1)
        self._ids = itertools.count(1)
        self._restarts = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.cancelled = 0
        self._started = False

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> "ShardedQueryService":
        """Spawn every worker and wait until all report ready."""
        if self._started:
            return self
        loop = asyncio.get_running_loop()
        for worker in self._workers.values():
            worker.on_crash = self._worker_crashed
            worker.spawn(loop)
        await asyncio.wait_for(
            asyncio.gather(*(w.ready for w in self._workers.values())),
            timeout=self._ready_timeout,
        )
        for name in self._workers:
            self._router.add_shard(name)
        self._started = True
        return self

    async def stop(self) -> None:
        # Clear the started flag *first*: when the whole process group is
        # signalled (systemd, `timeout`), workers die while we tear down,
        # and their crash callbacks must not respawn replacements.
        self._started = False
        for name in list(self._workers):
            self._router.remove_shard(name)
        await asyncio.gather(*(w.stop() for w in self._workers.values()))

    def _worker_crashed(self, worker: _ShardWorker) -> None:
        """Loop-thread callback: drop the shard, optionally respawn it."""
        self._router.remove_shard(worker.name)
        if self._auto_restart and self._started:
            self._restarts += 1
            asyncio.ensure_future(self._respawn(worker))

    async def _respawn(self, worker: _ShardWorker) -> None:
        loop = asyncio.get_running_loop()
        worker.spawn(loop)
        try:
            await asyncio.wait_for(worker.ready, timeout=self._ready_timeout)
        except Exception:  # noqa: BLE001 — stays off the ring; next health check retries
            return
        if self._started and worker.state == "ready":
            self._router.add_shard(worker.name)

    async def health_check(self) -> dict[str, bool]:
        """Ping every worker; respawn dead ones when auto-restart is on."""
        health: dict[str, bool] = {}
        for name, worker in self._workers.items():
            if worker.state != "ready":
                health[name] = False
                continue
            try:
                await worker.request("ping", timeout=10.0)
                health[name] = True
            except (WorkerCrashedError, ShardQueryError, asyncio.TimeoutError):
                health[name] = False
        return health

    async def restart_worker(self, name: str, warm: bool = True, drain_timeout: float = 5.0) -> dict:
        """Graceful drain + restart of one shard.

        Removes the shard from the ring (new queries remap), drains its
        in-flight queries, hands its parsed-document store to the
        replacement, and rejoins the ring.  With a persistent spec the
        handoff is *by file*: the drained worker flushes and closes its
        store, and the replacement — whose derived spec points at the
        same path — simply reopens it warm (``handoff: "file"``).
        Otherwise every entry streams through the pipe in wire form
        (``handoff: "stream"``).  Returns a report with the drain
        leftovers and the number of documents handed over.
        """
        worker = self._workers[name]
        by_file = warm and worker.spec.persistent
        self._router.remove_shard(name)
        report = {
            "shard": name,
            "pending": [],
            "documents": 0,
            "handoff": "file" if by_file else "stream",
        }
        exported: list[dict] = []
        if worker.state == "ready":
            try:
                drained = await worker.request("drain", drain_timeout, timeout=drain_timeout + 10.0)
                report["pending"] = drained["pending"]
                if warm and not by_file:
                    store = await worker.request("export_store", timeout=60.0)
                    exported = store["documents"]
            except (WorkerCrashedError, ShardQueryError, asyncio.TimeoutError):
                pass
            worker.state = "stopping"
            await worker.stop()
        loop = asyncio.get_running_loop()
        worker.spawn(loop)
        await asyncio.wait_for(worker.ready, timeout=self._ready_timeout)
        if exported:
            imported = await worker.request("import_store", exported, timeout=60.0)
            report["documents"] = imported["imported"]
        elif by_file:
            try:
                status = await worker.request("status", timeout=15.0)
                report["documents"] = (
                    status["statistics"]["document_store"]["documents"]
                )
            except (WorkerCrashedError, ShardQueryError, asyncio.TimeoutError, KeyError):
                pass
        self._router.add_shard(name)
        self._restarts += 1
        return report

    async def drain(self, timeout: float = 5.0) -> list[dict]:
        """Drain every shard; returns snapshots of still-unfinished queries."""
        pending: list[dict] = []
        ready = [w for w in self._workers.values() if w.state == "ready"]
        reports = await asyncio.gather(
            *(w.request("drain", timeout, timeout=timeout + 10.0) for w in ready),
            return_exceptions=True,
        )
        for worker, report in zip(ready, reports):
            if isinstance(report, BaseException):
                continue
            for snapshot in report["pending"]:
                pending.append({**snapshot, "shard": worker.name})
        return pending

    # -- submission -----------------------------------------------------

    @property
    def router(self) -> ShardRouter:
        return self._router

    @property
    def workers(self) -> dict[str, _ShardWorker]:
        return self._workers

    def _coerce(self, query: TypingUnion[str, Query]) -> tuple[str, Query]:
        if isinstance(query, Query):
            if not query.text:
                raise TypeError(
                    "sharded submit needs the query text; pass the SPARQL "
                    "string (or a Query parsed by parse_query, which keeps it)"
                )
            return query.text, query
        return query, parse_query(query)

    def submit(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        max_documents: Optional[int] = None,
        max_duration: Optional[float] = None,
        tracer=None,  # accepted for QueryService compatibility; tracing
        metrics=None,  # stays worker-local and is not shipped across
    ) -> ShardedQuery:
        """Route a query to its shard (or raise :class:`ServiceOverloadedError`)."""
        text, parsed = self._coerce(query)
        seed_list = list(seeds) if seeds is not None else None
        shard_name = self._router.route(text, seed_list)
        if shard_name is None:
            self.rejected += 1
            raise ServiceOverloadedError("no shards ready")
        worker = self._workers[shard_name]
        capacity = self._spec.max_concurrent + self._spec.max_queued
        if worker.inflight >= capacity:
            self.rejected += 1
            raise ServiceOverloadedError(
                f"shard {shard_name} at capacity ({worker.inflight} in flight)"
            )
        opts = {}
        if max_documents is not None:
            opts["max_documents"] = max_documents
        if max_duration is not None:
            opts["max_duration"] = max_duration
        try:
            req_id, future = worker.begin("submit", text, seed_list, opts)
        except WorkerCrashedError:
            self.rejected += 1
            raise ServiceOverloadedError(f"shard {shard_name} just died") from None
        handle = ShardedQuery(f"q{next(self._ids)}", parsed, seed_list, shard_name)
        handle._cancel = lambda: worker.send_cancel(req_id)
        self._registry[handle.id] = handle
        self.accepted += 1
        worker.inflight += 1
        future.add_done_callback(
            lambda fut, h=handle, w=worker: self._finish(h, w, fut)
        )
        return handle

    def _finish(self, handle: ShardedQuery, worker: _ShardWorker, future) -> None:
        worker.inflight -= 1
        try:
            payload, rows = future.result()
        except BaseException as error:  # noqa: BLE001 — surfaced on the handle
            handle.error = error
            handle.status = "failed"
            self.failed += 1
        else:
            handle.result = ShardedResult(
                handle.query, rows, ShardStats(payload["stats"]), handle.shard
            )
            handle.status = payload["status"] if payload["status"] != "failed" else "failed"
            if handle.status == "cancelled":
                self.cancelled += 1
            else:
                self.completed += 1
        handle.finished_at = time.monotonic()
        handle._done.set()

    async def run(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        **kwargs,
    ) -> ShardedResult:
        """Submit and wait: the one-call path for front-ends."""
        return await self.submit(query, seeds=seeds, **kwargs).wait()

    # -- standing queries -----------------------------------------------

    def subscriptions(self) -> list[ShardedSubscription]:
        return list(self._subscriptions.values())

    def get_subscription(self, sub_id: str) -> Optional[ShardedSubscription]:
        return self._subscriptions.get(sub_id)

    async def subscribe(
        self,
        query: TypingUnion[str, Query],
        seeds: Optional[Iterable[str]] = None,
        max_documents: Optional[int] = None,
        max_duration: Optional[float] = None,
    ) -> ShardedSubscription:
        """Open a standing query on the shard its routing key selects.

        The worker runs it to quiescence, keeps the live execution open,
        and streams every signed result-change event back over the wire
        (rows carry their sign); the returned handle re-interns them and
        replays the exact same event sequence an unsharded subscription
        would observe.
        """
        text, parsed = self._coerce(query)
        seed_list = list(seeds) if seeds is not None else None
        shard_name = self._router.route(text, seed_list)
        if shard_name is None:
            self.rejected += 1
            raise ServiceOverloadedError("no shards ready")
        worker = self._workers[shard_name]
        opts = {}
        if max_documents is not None:
            opts["max_documents"] = max_documents
        if max_duration is not None:
            opts["max_duration"] = max_duration
        try:
            req_id, future = worker.begin("subscribe", text, seed_list, opts)
        except WorkerCrashedError:
            self.rejected += 1
            raise ServiceOverloadedError(f"shard {shard_name} just died") from None
        handle = ShardedSubscription(
            f"s{next(self._sub_ids)}", parsed, shard_name, worker, req_id
        )
        # Register the event route *before* awaiting the ack: the worker
        # may pump the initial-results batch immediately after it.
        worker._events[req_id] = handle._deliver
        try:
            await future
        except BaseException:
            worker._events.pop(req_id, None)
            raise
        self._subscriptions[handle.id] = handle
        self.accepted += 1
        return handle

    async def apply_update(self, url: str, update: str) -> dict:
        """Apply one pod edit across the whole deployment.

        Every worker owns a private deterministic copy of the simulated
        universe, so a write must reach *all* of them — the front-end
        broadcasts a ``patch`` message and each shard applies the
        authenticated PATCH locally, then drains its standing queries.
        Events reach subscribers before this returns.
        """
        ready = [w for w in self._workers.values() if w.state == "ready"]
        if not ready:
            raise ServiceOverloadedError("no shards ready")
        reports = await asyncio.gather(
            *(w.request("patch", url, update, timeout=60.0) for w in ready)
        )
        return {
            "url": url,
            "status": reports[0]["status"],
            "events": sum(report.get("events", 0) for report in reports),
            "shards": len(reports),
        }

    # -- introspection --------------------------------------------------

    def get(self, query_id: str) -> Optional[ShardedQuery]:
        return self._registry.get(query_id)

    def queries(self) -> list[ShardedQuery]:
        return list(self._registry.values())

    def inflight(self) -> list[ShardedQuery]:
        """Dispatched queries not yet finished (QueryService parity)."""
        return [handle for handle in self._registry.values() if not handle.done]

    def statistics(self) -> dict:
        """Front-end counters plus the last known per-shard statistics.

        Synchronous — safe from any thread; shard blocks may be stale
        until the next :meth:`status` refresh.
        """
        shard_stats = {
            name: worker.last_status
            for name, worker in self._workers.items()
            if worker.last_status is not None
        }
        return {
            "mode": "sharded",
            "routing": self._routing,
            "workers": len(self._workers),
            "workers_ready": sum(
                1 for w in self._workers.values() if w.state == "ready"
            ),
            "restarts": self._restarts,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "subscriptions": len(self._subscriptions),
            "inflight": sum(w.inflight for w in self._workers.values()),
            "shards": shard_stats,
            "totals": _sum_stats(
                block.get("statistics", {}) for block in shard_stats.values()
            ),
        }

    async def status(self) -> dict:
        """Aggregate live status: per-shard statistics plus summed gauges."""
        ready = [w for w in self._workers.values() if w.state == "ready"]
        reports = await asyncio.gather(
            *(w.request("status", timeout=15.0) for w in ready),
            return_exceptions=True,
        )
        for worker, report in zip(ready, reports):
            if not isinstance(report, BaseException):
                worker.last_status = report
        document = self.statistics()
        document["queries"] = [handle.snapshot() for handle in self.queries()]
        return document
