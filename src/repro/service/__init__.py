"""The long-lived multi-query service layer (ROADMAP north star).

The paper's demo executes one Discover query at a time; serving heavy
traffic means many concurrent queries over the *same* pods.  This package
separates what those queries can share from what they cannot:

* :class:`SharedResources` — one HTTP client, HTTP cache,
  parsed-document store (:class:`DocumentStore`), dereferencer, and
  metrics registry, reused across every query;
* :class:`QueryService` — admission control (concurrency cap + waiting
  queue), a live query registry with cancellation, and per-query
  link/time budgets, all over one shared engine;
* :class:`ServiceSparqlApp` — the SPARQL-protocol front-end backed by
  link traversal (vs. the fixed-dataset federation endpoint);
* :class:`ServiceHost` — a background event-loop thread so synchronous
  front-ends (the demo web UI, the CLI ``serve`` command) can drive one
  service from many threads;
* :class:`ShardedQueryService` — N shard worker processes (each its own
  :class:`SharedResources`, shared-nothing) behind one consistent-hash
  front-end (:class:`ShardRouter`), with crash restart and warm
  drain-and-restart handoff of the parsed-document store.

Warm queries hit both caches: the fetch is answered locally (or via a
304 revalidation) and the parse is skipped entirely — the two costs the
related work identifies as dominating traversal time.
"""

from .docstore import DocumentStore, StoredDocument
from .host import ServiceHost
from .protocol import ServiceSparqlApp
from .resources import SharedResources
from .router import HashRing, ShardRouter, pod_origin
from .service import (
    QueryService,
    ServiceOverloadedError,
    ServiceQuery,
    ServiceSubscription,
)
from .shards import (
    ShardedQuery,
    ShardedQueryService,
    ShardedResult,
    ShardedSubscription,
    ShardSpec,
    WorkerCrashedError,
)
from .status import STATUS_SCHEMA_VERSION, build_status, build_status_async

__all__ = [
    "STATUS_SCHEMA_VERSION",
    "build_status",
    "build_status_async",
    "DocumentStore",
    "StoredDocument",
    "SharedResources",
    "QueryService",
    "ServiceQuery",
    "ServiceSubscription",
    "ServiceOverloadedError",
    "ServiceSparqlApp",
    "ServiceHost",
    "HashRing",
    "ShardRouter",
    "pod_origin",
    "ShardSpec",
    "ShardedQuery",
    "ShardedQueryService",
    "ShardedResult",
    "ShardedSubscription",
    "WorkerCrashedError",
]
