"""Long-lived resources shared by every query a service executes.

The one-shot engine rebuilds its dereferencer and caches per run — fine
for a demo, wasteful for a service answering many queries over the same
pods.  :class:`SharedResources` owns the state whose *value grows* with
reuse:

* one :class:`~repro.net.client.HttpClient` (per-origin connection caps
  and circuit breakers keep their history across queries),
* one :class:`~repro.net.cache.HttpCache` (repeat fetches served locally
  or revalidated via ETag/304),
* one :class:`~repro.service.docstore.DocumentStore` (repeat parses
  skipped entirely),
* one :class:`~repro.ltqp.dereference.Dereferencer` wired to all three,
* one :class:`~repro.obs.metrics.Metrics` registry for service-level
  counters and gauges.

Everything *per-query* — link queue, triple source, pipeline, stats,
tracer — stays inside :class:`~repro.ltqp.engine.QueryExecution`.
"""

from __future__ import annotations

from typing import Optional

from ..ltqp.dereference import Dereferencer
from ..net.cache import HttpCache
from ..net.client import HttpClient
from ..net.latency import LatencyModel
from ..net.log import RequestLog
from ..net.resilience import NetworkPolicy
from ..net.router import Internet
from ..obs.metrics import Metrics
from ..storage import StorageBackend, open_backend
from .docstore import DocumentStore

__all__ = ["SharedResources"]


class SharedResources:
    """The shared half of the execution stack: client, caches, metrics.

    ``store_path``/``storage_backend`` select the persistence tier under
    both caches (see :mod:`repro.storage`): the default is the in-memory
    backend (nothing survives the process); a store path opens — or
    reopens, warm — a single SQLite file holding both the HTTP cache and
    the parsed-document store.  Call :meth:`close` (or :meth:`flush`) to
    make pending writes durable; a crash in between loses only the
    un-flushed window, never the file.
    """

    def __init__(
        self,
        internet: Internet,
        latency: Optional[LatencyModel] = None,
        policy: Optional[NetworkPolicy] = None,
        http_cache: Optional[HttpCache] = None,
        document_store: Optional[DocumentStore] = None,
        metrics: Optional[Metrics] = None,
        log: Optional[RequestLog] = None,
        lenient: bool = True,
        auth_headers: Optional[dict[str, str]] = None,
        max_connections_per_origin: int = 6,
        latency_scale: float = 1.0,
        store_path: Optional[str] = None,
        storage_backend: Optional[str] = None,
        storage: Optional[StorageBackend] = None,
    ) -> None:
        #: The simulated Web this service answers from — retained so the
        #: service layer can reach origin apps directly (change listeners
        #: on Solid servers, authenticated control-plane updates).
        self.internet = internet
        self.policy = policy if policy is not None else NetworkPolicy()
        self.storage = (
            storage
            if storage is not None
            else open_backend(storage_backend, path=store_path)
        )
        self.http_cache = (
            http_cache if http_cache is not None else HttpCache(backend=self.storage)
        )
        self.document_store = (
            document_store
            if document_store is not None
            else DocumentStore(backend=self.storage)
        )
        self.metrics = metrics if metrics is not None else Metrics()
        # The client gets an *explicit* policy so engines adopting it do
        # not re-install their own (which would reset breaker history on
        # every query).
        self.client = HttpClient(
            internet,
            latency=latency,
            latency_scale=latency_scale,
            max_connections_per_origin=max_connections_per_origin,
            log=log,
            cache=self.http_cache,
            policy=self.policy,
        )
        self.dereferencer = Dereferencer(
            self.client,
            lenient=lenient,
            extra_headers=auth_headers,
            document_store=self.document_store,
        )

    @classmethod
    def for_universe(cls, universe, **kwargs) -> "SharedResources":
        """Shared resources over a simulated SolidBench universe."""
        return cls(universe.internet, **kwargs)

    @classmethod
    def for_config(
        cls,
        config,
        latency_seed: Optional[int] = None,
        no_latency: bool = False,
        **kwargs,
    ) -> "SharedResources":
        """Build the universe *and* the resources from a picklable config.

        This is the shard workers' entry point: a worker process receives
        only primitives (a :class:`~repro.solidbench.config.SolidBenchConfig`
        plus latency parameters), regenerates the deterministic universe
        locally, and owns every resource outright — shared-nothing by
        construction.
        """
        from ..net.latency import NoLatency, SeededJitterLatency
        from ..solidbench.universe import build_universe

        universe = build_universe(config)
        latency = (
            NoLatency()
            if no_latency
            else SeededJitterLatency(seed=latency_seed if latency_seed is not None else config.seed)
        )
        return cls(universe.internet, latency=latency, **kwargs)

    def flush(self) -> None:
        """Commit pending storage writes (no-op on the memory backend)."""
        self.storage.flush()

    def close(self) -> None:
        """Flush and release the storage backend."""
        self.storage.close()

    def statistics(self) -> dict:
        return {
            "http_cache": self.http_cache.statistics(),
            "document_store": self.document_store.statistics(),
            "storage": self.storage.statistics(),
            "requests": len(self.client.log),
        }
