"""Process-portable wire forms for the sharded service's data plane.

A sharded deployment moves two kinds of payload between processes:

* **result rows** (worker → front-end): every query answered by a shard
  streams its bindings back over a pipe.  :func:`encode_results` packs a
  result list into a *term-table* block — each distinct RDF term is
  serialized once (N-Triples surface syntax) and rows are index tuples —
  so a thousand rows over the same few IRIs cost a thousand small int
  tuples, not a thousand copies of the IRIs.
* **stored documents** (worker ↔ worker, via the front-end): a graceful
  drain-and-restart hands the outgoing worker's parsed-document store to
  its replacement so the new shard starts warm.  :func:`document_to_wire`
  keeps the response *validator* alongside the triples, so the imported
  entry still participates in ETag/304 revalidation exactly like a
  locally parsed one.

Decoding re-interns: IRIs come back through
:func:`~repro.rdf.terms.intern_iri`, so within the receiving process
every occurrence of an IRI is one object again (identity-shortcut
equality, one cached hash) no matter how many messages mentioned it.
The slotted term classes' cached hashes are salted by per-process string
hash randomization, which is exactly why the wire forms carry lexical
surface forms, never raw object state.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..ltqp.live import ResultChange
from ..ltqp.stats import TimedResult
from ..rdf.ntriples import _parse_term
from ..rdf.terms import Term, Variable, intern, term_to_ntriples
from ..rdf.triples import Triple
from ..sparql.bindings import Binding
from .docstore import StoredDocument

__all__ = [
    "encode_term",
    "decode_term",
    "encode_results",
    "decode_results",
    "encode_events",
    "decode_events",
    "document_to_wire",
    "document_from_wire",
]


def encode_term(term: Term) -> str:
    """One term as its N-Triples surface form (``?var`` for variables)."""
    return term_to_ntriples(term)


def decode_term(text: str) -> Term:
    """Parse a term back, re-interning it in the receiving process."""
    if text.startswith("?"):
        return Variable(text[1:])
    term, _ = _parse_term(text, 0, 0)
    # _parse_term already interns IRIs; route the rest (literals, blank
    # nodes) through the generic pool so repeated terms share one object.
    return intern(term)  # type: ignore[arg-type]


class _TermTable:
    """Builds the per-block term table: each distinct term encoded once."""

    def __init__(self) -> None:
        self.terms: list[str] = []
        self._index: dict[Term, int] = {}

    def add(self, term: Term) -> int:
        index = self._index.get(term)
        if index is None:
            index = len(self.terms)
            self._index[term] = index
            self.terms.append(encode_term(term))
        return index


def encode_results(results: Iterable[TimedResult]) -> dict:
    """Pack a result list (bindings or construct triples) into a block."""
    table = _TermTable()
    variables: list[str] = []
    var_index: dict[Variable, int] = {}
    rows: list[list[int]] = []
    elapsed: list[float] = []
    kind = "bindings"
    for timed in results:
        value = timed.binding
        if isinstance(value, Triple):
            kind = "triples"
            rows.append([table.add(t) for t in value])
        else:
            row_width = len(variables)
            row = [-1] * row_width
            for variable, term in value.items():
                slot = var_index.get(variable)
                if slot is None:
                    slot = len(variables)
                    var_index[variable] = slot
                    variables.append(variable.value)
                    for other in rows:
                        other.append(-1)
                    row.append(-1)
                row[slot] = table.add(term)
            rows.append(row)
        elapsed.append(timed.elapsed)
    return {
        "kind": kind,
        "vars": variables,
        "terms": table.terms,
        "rows": rows,
        "elapsed": elapsed,
    }


def decode_results(block: dict) -> list[TimedResult]:
    """Rebuild the result list, re-interning every term."""
    terms = [decode_term(text) for text in block["terms"]]
    elapsed = block["elapsed"]
    results: list[TimedResult] = []
    if block["kind"] == "triples":
        for row, when in zip(block["rows"], elapsed):
            triple = Triple(terms[row[0]], terms[row[1]], terms[row[2]])
            results.append(TimedResult(binding=triple, elapsed=when))
        return results
    variables = [Variable(name) for name in block["vars"]]
    for row, when in zip(block["rows"], elapsed):
        items = {
            variables[slot]: terms[index]
            for slot, index in enumerate(row)
            if index >= 0
        }
        results.append(TimedResult(binding=Binding(items), elapsed=when))
    return results


def encode_events(events: Iterable[ResultChange]) -> dict:
    """Pack signed result-change events into a term-table block.

    Same term-table layout as :func:`encode_results`, but every row
    carries its *sign* — the signed multiplicity delta — plus its event
    sequence number and the index of the document URL that caused it
    (``-1`` for initial results).  Replaying a decoded block therefore
    reconstructs the subscriber-visible result multiset exactly.
    """
    table = _TermTable()
    variables: list[str] = []
    var_index: dict[Variable, int] = {}
    urls: list[str] = []
    url_index: dict[str, int] = {}
    rows: list[list[int]] = []
    signs: list[int] = []
    seqs: list[int] = []
    url_refs: list[int] = []
    for event in events:
        row_width = len(variables)
        row = [-1] * row_width
        for variable, term in event.binding.items():
            slot = var_index.get(variable)
            if slot is None:
                slot = len(variables)
                var_index[variable] = slot
                variables.append(variable.value)
                for other in rows:
                    other.append(-1)
                row.append(-1)
            row[slot] = table.add(term)
        rows.append(row)
        signs.append(event.delta)
        seqs.append(event.seq)
        if event.url:
            ref = url_index.get(event.url)
            if ref is None:
                ref = len(urls)
                url_index[event.url] = ref
                urls.append(event.url)
            url_refs.append(ref)
        else:
            url_refs.append(-1)
    return {
        "kind": "events",
        "vars": variables,
        "terms": table.terms,
        "rows": rows,
        "signs": signs,
        "seqs": seqs,
        "urls": urls,
        "url_refs": url_refs,
    }


def decode_events(block: dict) -> list[ResultChange]:
    """Rebuild the signed event list, re-interning every term."""
    terms = [decode_term(text) for text in block["terms"]]
    variables = [Variable(name) for name in block["vars"]]
    urls = block["urls"]
    events: list[ResultChange] = []
    for row, sign, seq, ref in zip(
        block["rows"], block["signs"], block["seqs"], block["url_refs"]
    ):
        items = {
            variables[slot]: terms[index]
            for slot, index in enumerate(row)
            if index >= 0
        }
        events.append(
            ResultChange(
                seq=seq,
                binding=Binding(items),
                delta=sign,
                url=urls[ref] if ref >= 0 else "",
            )
        )
    return events


def document_to_wire(document: StoredDocument) -> dict:
    """One stored document as a term-table block, validator preserved."""
    table = _TermTable()
    rows = [[table.add(t) for t in triple] for triple in document.triples]
    return {
        "url": document.url,
        "validator": document.validator,
        "terms": table.terms,
        "rows": rows,
        "links": sorted(document.links),
    }


def document_from_wire(wire: dict, stored_at: Optional[float] = None) -> StoredDocument:
    """Rebuild a stored document with terms interned in this process."""
    import time

    terms = [decode_term(text) for text in wire["terms"]]
    triples = tuple(
        Triple(terms[s], terms[p], terms[o]) for s, p, o in wire["rows"]
    )
    return StoredDocument(
        url=wire["url"],
        validator=wire["validator"],
        triples=triples,
        links=frozenset(wire["links"]),
        stored_at=stored_at if stored_at is not None else time.monotonic(),
    )
