"""The cross-query parsed-document store.

The structural-assumptions evaluation (Taelman & Verborgh 2023) shows
dereference cost — fetch *plus parse* — dominates LTQP end-to-end time.
The HTTP cache (:mod:`repro.net.cache`) already amortizes the fetch
across queries; this store amortizes the parse: it remembers, per URL,
the triples a response body parsed into, keyed by the response's
*validator* (its ETag, or a hash of the body when the server sends none).

A warm query through the :class:`~repro.service.QueryService` therefore
touches neither the network (HTTP-cache hit) nor the parser (store hit):
the dereferencer asks the store before parsing and feeds the stored
triples straight into the per-query triple source.

Invalidation rides the existing ETag/revalidation machinery: the store
never guesses at freshness itself.  The HTTP layer decides whether a
cached response may be reused or must be revalidated; whatever response
comes out of that machinery carries a validator, and a changed document
has a changed validator — the store drops the stale entry and the
document is re-parsed.  Alongside the triples each entry records the
document's out-going HTTP IRIs (the cAll link superset from which every
extractor's context-dependent selection draws).

Bounded memory and (optional) persistence both live in the shared
:class:`~repro.storage.tier.StorageTier`: hot entries stay decoded in a
true-LRU in-process cache; with a persistent
:class:`~repro.storage.StorageBackend` below, entries additionally
write through in the process-portable term-table wire form
(:mod:`repro.service.wire`), validator included — so a restarted
service reopens the same store file warm, and the *first* lookup after
an upstream change still invalidates through the ordinary revalidation
path.
"""

from __future__ import annotations

import hashlib
import json
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..net.message import Response
from ..rdf.terms import NamedNode
from ..rdf.triples import Triple
from ..storage import StorageBackend, StorageTier

__all__ = ["StoredDocument", "DocumentDiff", "DocumentStore"]


@dataclass(slots=True, frozen=True)
class StoredDocument:
    """One parsed document: its triples, links, and identity validator."""

    url: str
    validator: str
    triples: tuple[Triple, ...]
    #: Every HTTP(S) IRI mentioned in the document — the superset of what
    #: any link extractor can propose from it.
    links: frozenset[str]
    stored_at: float


@dataclass(slots=True, frozen=True)
class DocumentDiff:
    """The minimal signed delta between two validators of one document.

    Produced by :meth:`DocumentStore.diff` when a re-dereferenced URL comes
    back with a changed validator: instead of a wholesale replace, the live
    pipeline retracts ``removed`` and inserts ``added``.  ``unchanged`` is
    the overlap size — the whole point of diffing (a one-triple PATCH to a
    thousand-triple profile moves two triples, not two thousand).
    """

    url: str
    old_validator: str
    new_validator: str
    added: tuple[Triple, ...]
    removed: tuple[Triple, ...]
    unchanged: int


def _links_of(triples: Iterable[Triple]) -> frozenset[str]:
    links: set[str] = set()
    for triple in triples:
        for term in triple:
            if isinstance(term, NamedNode) and term.value.startswith(("http://", "https://")):
                links.add(term.value)
    return frozenset(links)


def encode_stored_document(document: StoredDocument) -> bytes:
    """Wire form plus a wall-clock timestamp, as storage-backend bytes.

    ``stored_at`` is monotonic (meaningless across processes); the
    persisted form carries the equivalent wall-clock instant so a
    restarted process can reconstruct a comparable monotonic age.
    """
    from .wire import document_to_wire

    payload = document_to_wire(document)
    payload["stored_wall"] = time.time() - (time.monotonic() - document.stored_at)
    return json.dumps(payload).encode("utf-8")


def decode_stored_document(raw: bytes) -> StoredDocument:
    """Rebuild a document, re-interning terms in this process."""
    from .wire import document_from_wire

    payload = json.loads(raw.decode("utf-8"))
    stored_wall = payload.get("stored_wall")
    stored_at: Optional[float] = None
    if stored_wall is not None:
        stored_at = time.monotonic() - max(0.0, time.time() - float(stored_wall))
    return document_from_wire(payload, stored_at=stored_at)


class DocumentStore:
    """URL-keyed store of parsed documents with validator-based identity.

    ``max_documents`` bounds *memory*: beyond it the least-recently-used
    entry leaves the in-process cache (the same
    :class:`~repro.storage.tier.StorageTier` discipline as
    :class:`~repro.net.cache.HttpCache`).  With a persistent ``backend``
    the evicted entry stays reachable on disk — capacity outgrows RAM
    and survives restarts.  Counters (``hits``/``misses``/
    ``invalidations``) feed the service's doc-store hit-rate metrics.
    """

    def __init__(
        self,
        max_documents: int = 100_000,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self._tier = StorageTier(
            "documents",
            max_documents,
            encode_stored_document,
            decode_stored_document,
            backend=backend,
        )
        self.hits = 0
        self.misses = 0
        #: Lookups that found the URL but with a *different* validator —
        #: the document changed upstream and its entry was dropped.
        self.invalidations = 0
        #: Parses that went through the store (cold-path ``put`` calls).
        self.parses = 0
        #: Validator changes resolved by a minimal signed diff instead of
        #: a wholesale replace (live re-dereference path).
        self.diffs = 0

    def __len__(self) -> int:
        return len(self._tier)

    def __contains__(self, url: str) -> bool:
        return url in self._tier

    @property
    def tier(self) -> StorageTier:
        return self._tier

    @staticmethod
    def validator_for(response: Response) -> str:
        """The response's identity: its ETag, else a body digest."""
        etag = response.header("etag")
        if etag:
            return etag
        return "sha1:" + hashlib.sha1(response.body).hexdigest()

    def lookup(self, url: str, validator: str) -> Optional[StoredDocument]:
        """The stored parse of ``url`` *iff* the validator still matches."""
        entry = self._tier.get(url)
        if entry is None:
            self.misses += 1
            return None
        if entry.validator != validator:
            # The revalidation machinery produced a different body: the
            # document changed, so the stored parse is stale.
            self._tier.delete(url)
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, url: str) -> Optional[StoredDocument]:
        """The stored entry for ``url`` *whatever* its validator.

        Counts neither a hit nor a miss and never invalidates: this is the
        diff path capturing the stale parse *before* :meth:`lookup` (which
        would delete it on a validator mismatch).
        """
        return self._tier.get(url)

    def diff(
        self,
        stale: StoredDocument,
        validator: str,
        triples: Iterable[Triple],
    ) -> DocumentDiff:
        """The minimal signed delta from a stale entry to a fresh parse.

        Deterministically ordered (sorted by term representation) so every
        consumer — local pipelines, sharded subscriptions — observes the
        same change sequence.
        """
        new_set = set(triples)
        old_set = set(stale.triples)
        sort_key = lambda t: (repr(t.subject), repr(t.predicate), repr(t.object))  # noqa: E731
        added = tuple(sorted(new_set - old_set, key=sort_key))
        removed = tuple(sorted(old_set - new_set, key=sort_key))
        self.diffs += 1
        return DocumentDiff(
            url=stale.url,
            old_validator=stale.validator,
            new_validator=validator,
            added=added,
            removed=removed,
            unchanged=len(new_set & old_set),
        )

    def put(self, url: str, validator: str, triples: Iterable[Triple]) -> StoredDocument:
        triple_tuple = tuple(triples)
        entry = StoredDocument(
            url=url,
            validator=validator,
            triples=triple_tuple,
            links=_links_of(triple_tuple),
            stored_at=time.monotonic(),
        )
        self._tier.put(url, entry)
        self.parses += 1
        return entry

    def entries(self) -> list[StoredDocument]:
        """All stored documents, oldest first (export order)."""
        return sorted(
            (entry for _, entry in self._tier.items()),
            key=lambda entry: entry.stored_at,
        )

    def adopt(self, entry: StoredDocument) -> None:
        """Install an entry parsed elsewhere (warm shard handoff).

        Counts as neither a hit nor a parse: the *receiving* process did
        no work.  The entry keeps its validator, so the first lookup after
        an upstream change still invalidates it through the ordinary
        revalidation path.  Eviction discipline matches :meth:`put`.
        """
        self._tier.put(entry.url, entry)

    def flush(self) -> None:
        """Commit pending backend writes (no-op without persistence)."""
        self._tier.flush()

    def clear(self) -> None:
        self._tier.clear()
        self.hits = self.misses = self.invalidations = self.parses = self.diffs = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def statistics(self) -> dict:
        return {
            "documents": len(self._tier),
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "parses": self.parses,
            "diffs": self.diffs,
            "hit_rate": round(self.hit_rate, 4),
            "storage": self._tier.statistics(),
        }
