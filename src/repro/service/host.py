"""Run a QueryService on a dedicated event-loop thread.

The :class:`~repro.service.QueryService` is asyncio-native; the demo web
UI (:mod:`repro.webui`) is a threaded ``http.server``.  This bridge owns
a background event loop so synchronous callers (HTTP handler threads, the
CLI) can submit queries into one long-lived service::

    host = ServiceHost(service).start()
    result = host.execute("SELECT ...", seeds=[...])   # from any thread
    host.statistics()
    host.stop()

All executions funnel into the *same* loop, so the service's admission
control and shared caches behave exactly as they do in-process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable, Optional

from ..ltqp.engine import ExecutionResult
from .service import QueryService

__all__ = ["ServiceHost"]


class ServiceHost:
    """Thread-owning wrapper exposing a blocking façade over a service."""

    def __init__(self, service: QueryService) -> None:
        self._service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def service(self) -> QueryService:
        return self._service

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("service host is not running")
        return self._loop

    def start(self) -> "ServiceHost":
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="query-service", daemon=True)
        self._thread.start()
        self._started.wait()
        return self

    def execute(
        self,
        query: str,
        seeds: Optional[Iterable[str]] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> ExecutionResult:
        """Submit-and-wait from any thread (blocking)."""
        future = asyncio.run_coroutine_threadsafe(
            self._service.run(query, seeds=seeds, **kwargs), self.loop
        )
        return future.result(timeout)

    def statistics(self) -> dict:
        return self._service.statistics()

    def stop(self) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self._loop is not None:
            self._loop.close()
            self._loop = None
        self._started.clear()

    def __enter__(self) -> "ServiceHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
