"""Run a QueryService on a dedicated event-loop thread.

The :class:`~repro.service.QueryService` is asyncio-native; the demo web
UI (:mod:`repro.webui`) is a threaded ``http.server``.  This bridge owns
a background event loop so synchronous callers (HTTP handler threads, the
CLI) can submit queries into one long-lived service::

    host = ServiceHost(service).start()
    result = host.execute("SELECT ...", seeds=[...])   # from any thread
    host.statistics()
    host.stop()

All executions funnel into the *same* loop, so the service's admission
control and shared caches behave exactly as they do in-process.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Iterable, Optional

from ..ltqp.engine import ExecutionResult

__all__ = ["ServiceHost"]


class ServiceHost:
    """Thread-owning wrapper exposing a blocking façade over a service."""

    def __init__(self, service) -> None:
        # Any service with (submit/)run/statistics works: QueryService or
        # the sharded front-end (whose async start/stop/drain the host
        # runs on its loop).
        self._service = service
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    @property
    def service(self):
        return self._service

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is None:
            raise RuntimeError("service host is not running")
        return self._loop

    def start(self, timeout: Optional[float] = None) -> "ServiceHost":
        if self._thread is not None:
            return self
        self._loop = asyncio.new_event_loop()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            self._started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="query-service", daemon=True)
        self._thread.start()
        self._started.wait()
        # Services with an async lifecycle (the sharded front-end spawns
        # its workers here) start on their own loop.
        starter = getattr(self._service, "start", None)
        if starter is not None:
            asyncio.run_coroutine_threadsafe(starter(), self._loop).result(timeout)
        return self

    def execute(
        self,
        query: str,
        seeds: Optional[Iterable[str]] = None,
        timeout: Optional[float] = None,
        **kwargs,
    ) -> ExecutionResult:
        """Submit-and-wait from any thread (blocking)."""
        future = asyncio.run_coroutine_threadsafe(
            self._service.run(query, seeds=seeds, **kwargs), self.loop
        )
        return future.result(timeout)

    def statistics(self) -> dict:
        return self._service.statistics()

    def stop(
        self, drain_timeout: float = 5.0, join_timeout: float = 10.0
    ) -> list[dict]:
        """Drain, stop the service, and join the loop thread.

        Returns the snapshots of queries *still in flight* at the drain
        deadline — they are about to be torn down with the loop, and
        silently swallowing them hides exactly the shutdowns an operator
        needs to see.  Raises :class:`RuntimeError` if the loop thread
        refuses to die within ``join_timeout``.
        """
        pending: list[dict] = []
        if self._loop is not None and self._thread is not None:
            drainer = getattr(self._service, "drain", None)
            if drainer is not None:
                try:
                    pending = asyncio.run_coroutine_threadsafe(
                        drainer(drain_timeout), self._loop
                    ).result(drain_timeout + 10.0)
                except Exception:  # noqa: BLE001 — drain is best-effort
                    pass
            if pending:
                # Surfaced — now shut them down properly instead of
                # letting loop teardown garbage-collect live traversals.
                try:
                    asyncio.run_coroutine_threadsafe(
                        self._cancel_inflight(), self._loop
                    ).result(10.0)
                except Exception:  # noqa: BLE001 — keep tearing down
                    pass
            # Async-lifecycle services (sharded) shut their workers down
            # on the loop before it stops.
            stopper = getattr(self._service, "stop", None)
            if stopper is not None:
                try:
                    asyncio.run_coroutine_threadsafe(
                        stopper(), self._loop
                    ).result(30.0)
                except Exception:  # noqa: BLE001 — keep tearing down
                    pass
        # In-process services own their resources directly: release the
        # storage backend so pending writes are durable — a clean stop
        # must leave the store file warm for the next lifetime.
        resources = getattr(self._service, "resources", None)
        if resources is not None:
            try:
                resources.close()
            except Exception:  # noqa: BLE001 — keep tearing down
                pass
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"service loop thread still alive after {join_timeout}s; "
                    f"{len(pending)} queries were pending at drain"
                )
            self._thread = None
        if self._loop is not None:
            self._loop.close()
            self._loop = None
        self._started.clear()
        return pending

    async def _cancel_inflight(self) -> None:
        handles = [h for h in self._service.inflight() if not h.done]
        await asyncio.gather(
            *(handle.cancel() for handle in handles), return_exceptions=True
        )

    def __enter__(self) -> "ServiceHost":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
