"""Tiny ASCII charts for queue-evolution reports (bench E9)."""

from __future__ import annotations

from typing import Sequence

from ..ltqp.links import QueueSample

__all__ = ["sparkline", "queue_sparkline"]

_BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Render values as a fixed-width unicode sparkline.

    Values are bucketed to ``width`` columns (max per bucket) and scaled
    to eight bar heights; an empty input renders as an empty string.
    """
    values = list(values)
    if not values:
        return ""
    if len(values) > width:
        bucket_size = len(values) / width
        bucketed = []
        for column in range(width):
            start = int(column * bucket_size)
            end = max(start + 1, int((column + 1) * bucket_size))
            bucketed.append(max(values[start:end]))
        values = bucketed
    peak = max(values)
    if peak <= 0:
        return _BARS[0] * len(values)
    return "".join(
        _BARS[min(len(_BARS) - 1, int(value / peak * (len(_BARS) - 1) + 0.5))]
        for value in values
    )


def queue_sparkline(samples: Sequence[QueueSample], width: int = 60) -> str:
    """Queue length over time as a sparkline, annotated with the peak."""
    lengths = [sample.queue_length for sample in samples]
    if not lengths:
        return "(no samples)"
    return f"{sparkline(lengths, width)}  peak={max(lengths)}"
