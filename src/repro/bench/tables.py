"""Plain-text table rendering for bench reports."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["render_table"]


def render_table(rows: Sequence[Mapping[str, object]], columns: Iterable[str] = ()) -> str:
    """Render dict rows as an aligned fixed-width table.

    Column order defaults to the union of row keys in first-seen order.
    Values are stringified; numeric columns right-align.
    """
    rows = list(rows)
    if not rows:
        return "(no rows)\n"
    column_names = list(columns)
    if not column_names:
        seen: set[str] = set()
        for row in rows:
            for name in row:
                if name not in seen:
                    seen.add(name)
                    column_names.append(name)
    cells = [[str(row.get(name, "")) for name in column_names] for row in rows]
    widths = [
        max(len(name), *(len(row[index]) for row in cells))
        for index, name in enumerate(column_names)
    ]
    numeric = [
        all(_is_number(row[index]) for row in cells) for index in range(len(column_names))
    ]

    def format_row(values: list[str]) -> str:
        parts = []
        for index, value in enumerate(values):
            if numeric[index]:
                parts.append(value.rjust(widths[index]))
            else:
                parts.append(value.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = [
        format_row(column_names),
        "  ".join("-" * width for width in widths),
    ]
    lines.extend(format_row(row) for row in cells)
    return "\n".join(lines) + "\n"


def _is_number(text: str) -> bool:
    if not text or text == "-":
        return True
    try:
        float(text)
        return True
    except ValueError:
        return False
