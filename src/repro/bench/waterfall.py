"""Resource Waterfall rendering (paper Figs. 4-5).

The demo shows Chrome's Network tab while queries run: each HTTP request as
a bar, offset by start time, with dependency structure visible (requests
that needed a prior document's links start after it).

Two builders produce the same :class:`Waterfall`:

* :func:`build_waterfall_from_trace` — the primary path since the
  observability layer landed: rows come from the ``attempt`` spans a
  :class:`~repro.obs.trace.Tracer` records (one per HTTP attempt,
  mirroring the request log 1:1), which additionally carry cache-hit
  provenance and the ``first-result`` instant for the Fig. 4 marker.
* :func:`build_waterfall` — the legacy builder over the client's
  :class:`~repro.net.log.RequestLog`, kept for callers that run without
  tracing enabled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.log import RequestLog, RequestRecord

__all__ = [
    "WaterfallRow",
    "Waterfall",
    "build_waterfall",
    "build_waterfall_from_trace",
    "render_waterfall",
]


@dataclass(slots=True)
class WaterfallRow:
    """One request bar."""

    url: str
    short_name: str
    status: int
    start: float  # seconds from first request
    end: float
    size: int
    depth: int
    parent_url: Optional[str]
    #: Which attempt this bar is (1 = first try; >1 = a retry bar).
    attempt: int = 1
    #: Served from the HTTP cache without touching the network.
    from_cache: bool = False
    #: Link provenance: which extractor produced the link, refined with
    #: the matching predicate/pattern or type-index class when the trace
    #: recorded one — e.g. ``match(hasCreator)``, ``type-index(Post)``.
    via: str = ""

    @property
    def is_retry(self) -> bool:
        return self.attempt > 1


@dataclass(slots=True)
class Waterfall:
    rows: list[WaterfallRow]
    total_duration: float
    request_count: int
    max_depth: int
    max_parallelism: int
    origins: int
    total_bytes: int
    retries: int = 0
    #: Cache-served rows (trace-built waterfalls only; 0 otherwise).
    cache_hits: int = 0
    #: Seconds from the first request to the first streamed result, when
    #: the trace recorded a ``first-result`` instant.
    first_result_at: Optional[float] = None

    def summary(self) -> dict:
        return {
            "requests": self.request_count,
            "duration_s": round(self.total_duration, 4),
            "max_depth": self.max_depth,
            "max_parallelism": self.max_parallelism,
            "origins": self.origins,
            "total_bytes": self.total_bytes,
            "retries": self.retries,
        }


def _short_name(url: str) -> str:
    path = url.split("://", 1)[-1]
    segments = [s for s in path.split("/") if s]
    if not segments:
        return path
    name = segments[-1]
    if url.endswith("/"):
        name += "/"
    return name


def _via_label(deref) -> str:
    """Compact provenance label from a ``dereference`` span's args."""
    if deref is None:
        return ""
    via = str(deref.args.get("via", ""))
    detail = (
        deref.args.get("via_class")
        or deref.args.get("via_predicate")
        or deref.args.get("via_pattern")
    )
    if not detail:
        return via
    tail = str(detail)
    for separator in ("#", "/"):
        if separator in tail:
            candidate = tail.rsplit(separator, 1)[-1]
            if candidate:
                tail = candidate
    return f"{via}({tail})" if via else tail


def _origin(url: str) -> str:
    scheme, _, rest = url.partition("://")
    return scheme + "://" + rest.split("/", 1)[0]


def _max_parallelism(intervals: list[tuple[float, float]]) -> int:
    """Peak number of simultaneously in-flight intervals (sweep line)."""
    events: list[tuple[float, int]] = []
    for start, end in intervals:
        events.append((start, 1))
        events.append((max(end, start), -1))
    # Ends sort before starts at the same instant, so back-to-back
    # requests don't count as overlapping.
    events.sort(key=lambda item: (item[0], item[1]))
    peak = current = 0
    for _, delta in events:
        current += delta
        peak = max(peak, current)
    return peak


def build_waterfall(log: RequestLog) -> Waterfall:
    """Derive waterfall rows and shape metrics from a request log."""
    records = sorted(log.records, key=lambda r: r.started_at)
    if not records:
        return Waterfall([], 0.0, 0, 0, 0, 0, 0)
    retries = sum(1 for record in records if record.attempt > 1)
    origin_time = records[0].started_at
    depths = log.dependency_depths()
    rows = [
        WaterfallRow(
            url=record.url,
            short_name=_short_name(record.url),
            status=record.status,
            start=record.started_at - origin_time,
            end=record.finished_at - origin_time,
            size=record.response_size,
            depth=depths.get(record.url, 0),
            parent_url=record.parent_url,
            attempt=record.attempt,
        )
        for record in records
    ]
    total = max(row.end for row in rows)
    return Waterfall(
        rows=rows,
        total_duration=total,
        request_count=len(rows),
        max_depth=log.max_depth(),
        max_parallelism=log.max_parallelism(),
        origins=len(log.origins()),
        total_bytes=log.total_bytes(),
        retries=retries,
    )


def build_waterfall_from_trace(tracer) -> Waterfall:
    """Derive the waterfall from a query execution's span tree.

    Every HTTP attempt is an ``attempt`` span under a ``fetch`` span, so
    rows match :func:`build_waterfall` one-for-one — plus cache-hit
    provenance (``from_cache``) and the streamed ``first-result`` instant
    that the request log cannot see.  Depth comes from the enclosing
    ``dereference`` span's link depth.
    """
    spans = tracer.spans
    by_id = {span.span_id: span for span in spans}

    def enclosing(span, name: str):
        node = span
        while node is not None:
            if node.name == name:
                return node
            node = by_id.get(node.parent_id)
        return None

    attempts = [span for span in spans if span.name == "attempt"]
    attempts.sort(key=lambda span: (span.start, span.span_id))
    first_result_ts: Optional[float] = None
    for span in spans:
        if span.name == "first-result":
            first_result_ts = span.start
            break
    if not attempts:
        return Waterfall([], 0.0, 0, 0, 0, 0, 0)

    origin_time = attempts[0].start
    rows: list[WaterfallRow] = []
    for span in attempts:
        fetch = enclosing(span, "fetch")
        deref = enclosing(span, "dereference")
        rows.append(
            WaterfallRow(
                url=span.args.get("url", ""),
                short_name=_short_name(span.args.get("url", "")),
                status=int(span.args.get("status", 0)),
                start=span.start - origin_time,
                end=(span.end if span.end is not None else span.start) - origin_time,
                size=int(span.args.get("size", 0)),
                depth=int(deref.args.get("depth", 0)) if deref is not None else 0,
                parent_url=(fetch.args.get("parent_url") or None) if fetch else None,
                attempt=int(span.args.get("attempt", 1)),
                from_cache=bool(span.args.get("from_cache", False)),
                via=_via_label(deref),
            )
        )

    total = max(row.end for row in rows)
    network_rows = [row for row in rows if not row.from_cache]
    return Waterfall(
        rows=rows,
        total_duration=total,
        request_count=len(rows),
        max_depth=max(row.depth for row in rows),
        max_parallelism=_max_parallelism(
            [(row.start, row.end) for row in network_rows]
        ),
        origins=len({_origin(row.url) for row in rows}),
        total_bytes=sum(row.size for row in rows),
        retries=sum(1 for row in rows if row.is_retry),
        cache_hits=sum(1 for row in rows if row.from_cache),
        first_result_at=(
            first_result_ts - origin_time if first_result_ts is not None else None
        ),
    )


def render_waterfall(
    waterfall: Waterfall,
    width: int = 60,
    max_rows: int = 40,
    name_width: int = 32,
    show_via: bool = False,
    via_width: int = 22,
) -> str:
    """ASCII rendering in the spirit of the browser Network tab.

    ``show_via`` adds the link-provenance column (trace-built waterfalls
    only; the request log carries no provenance).  Off by default so the
    classic layout — and its golden renderings — stay stable.
    """
    if not waterfall.rows:
        return "(no requests)\n"
    via_header = f" {'via':<{via_width}}" if show_via else ""
    lines = [
        f"{'name':<{name_width}} {'status':>6} {'size':>8} {'ms':>7} {via_header} waterfall",
    ]
    scale = width / waterfall.total_duration if waterfall.total_duration > 0 else 0.0
    shown = waterfall.rows[:max_rows]
    first_marker = (
        int(waterfall.first_result_at * scale)
        if waterfall.first_result_at is not None
        else None
    )
    for row in shown:
        offset = int(row.start * scale)
        length = max(1, int((row.end - row.start) * scale))
        length = min(length, width - offset) if offset < width else 1
        # Retry bars render hollow with an attempt marker, so flaky
        # resources are visually distinct from first-try fetches; cache
        # hits render shaded since they never touched the network.
        if row.from_cache:
            glyph = "▒"
        elif row.is_retry:
            glyph = "░"
        else:
            glyph = "█"
        bar = " " * offset + glyph * length
        if row.is_retry:
            bar += f" (retry #{row.attempt})"
        elif row.from_cache:
            bar += " (cache)"
        name = ("  " * min(row.depth, 6)) + row.short_name
        if len(name) > name_width:
            name = name[: name_width - 1] + "…"
        duration_ms = (row.end - row.start) * 1000
        via_cell = ""
        if show_via:
            via_text = row.via
            if len(via_text) > via_width:
                via_text = via_text[: via_width - 1] + "…"
            via_cell = f" {via_text:<{via_width}}"
        lines.append(
            f"{name:<{name_width}} {row.status:>6} {row.size:>8} {duration_ms:>7.1f} {via_cell} {bar}"
        )
    if len(waterfall.rows) > max_rows:
        lines.append(f"... and {len(waterfall.rows) - max_rows} more requests")
    if first_marker is not None:
        prefix = " " * (name_width + 6 + 8 + 7 + 5 + (via_width + 1 if show_via else 0))
        marker = " " * min(first_marker, width) + "▼"
        lines.append(
            f"{prefix}{marker} first result "
            f"({waterfall.first_result_at * 1000:.1f} ms)"
        )
    lines.append(
        "total: {requests} requests, {duration_s}s, depth {max_depth}, "
        "parallelism {max_parallelism}, {origins} origin(s), {total_bytes} bytes, "
        "{retries} retries".format(**waterfall.summary())
    )
    if waterfall.cache_hits:
        lines.append(f"cache: {waterfall.cache_hits} of {waterfall.request_count} served from cache")
    return "\n".join(lines) + "\n"
