"""Resource Waterfall rendering (paper Figs. 4-5).

The demo shows Chrome's Network tab while queries run: each HTTP request as
a bar, offset by start time, with dependency structure visible (requests
that needed a prior document's links start after it).  We reproduce the
same observable from the client's :class:`~repro.net.log.RequestLog`:
an ASCII waterfall plus the aggregate shape metrics benches assert on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..net.log import RequestLog, RequestRecord

__all__ = ["WaterfallRow", "Waterfall", "build_waterfall", "render_waterfall"]


@dataclass(slots=True)
class WaterfallRow:
    """One request bar."""

    url: str
    short_name: str
    status: int
    start: float  # seconds from first request
    end: float
    size: int
    depth: int
    parent_url: Optional[str]
    #: Which attempt this bar is (1 = first try; >1 = a retry bar).
    attempt: int = 1

    @property
    def is_retry(self) -> bool:
        return self.attempt > 1


@dataclass(slots=True)
class Waterfall:
    rows: list[WaterfallRow]
    total_duration: float
    request_count: int
    max_depth: int
    max_parallelism: int
    origins: int
    total_bytes: int
    retries: int = 0

    def summary(self) -> dict:
        return {
            "requests": self.request_count,
            "duration_s": round(self.total_duration, 4),
            "max_depth": self.max_depth,
            "max_parallelism": self.max_parallelism,
            "origins": self.origins,
            "total_bytes": self.total_bytes,
            "retries": self.retries,
        }


def _short_name(url: str) -> str:
    path = url.split("://", 1)[-1]
    segments = [s for s in path.split("/") if s]
    if not segments:
        return path
    name = segments[-1]
    if url.endswith("/"):
        name += "/"
    return name


def build_waterfall(log: RequestLog) -> Waterfall:
    """Derive waterfall rows and shape metrics from a request log."""
    records = sorted(log.records, key=lambda r: r.started_at)
    if not records:
        return Waterfall([], 0.0, 0, 0, 0, 0, 0)
    retries = sum(1 for record in records if record.attempt > 1)
    origin_time = records[0].started_at
    depths = log.dependency_depths()
    rows = [
        WaterfallRow(
            url=record.url,
            short_name=_short_name(record.url),
            status=record.status,
            start=record.started_at - origin_time,
            end=record.finished_at - origin_time,
            size=record.response_size,
            depth=depths.get(record.url, 0),
            parent_url=record.parent_url,
            attempt=record.attempt,
        )
        for record in records
    ]
    total = max(row.end for row in rows)
    return Waterfall(
        rows=rows,
        total_duration=total,
        request_count=len(rows),
        max_depth=log.max_depth(),
        max_parallelism=log.max_parallelism(),
        origins=len(log.origins()),
        total_bytes=log.total_bytes(),
        retries=retries,
    )


def render_waterfall(
    waterfall: Waterfall, width: int = 60, max_rows: int = 40, name_width: int = 32
) -> str:
    """ASCII rendering in the spirit of the browser Network tab."""
    if not waterfall.rows:
        return "(no requests)\n"
    lines = [
        f"{'name':<{name_width}} {'status':>6} {'size':>8} {'ms':>7}  waterfall",
    ]
    scale = width / waterfall.total_duration if waterfall.total_duration > 0 else 0.0
    shown = waterfall.rows[:max_rows]
    for row in shown:
        offset = int(row.start * scale)
        length = max(1, int((row.end - row.start) * scale))
        length = min(length, width - offset) if offset < width else 1
        # Retry bars render hollow with an attempt marker, so flaky
        # resources are visually distinct from first-try fetches.
        bar = " " * offset + ("░" if row.is_retry else "█") * length
        if row.is_retry:
            bar += f" (retry #{row.attempt})"
        name = ("  " * min(row.depth, 6)) + row.short_name
        if len(name) > name_width:
            name = name[: name_width - 1] + "…"
        duration_ms = (row.end - row.start) * 1000
        lines.append(
            f"{name:<{name_width}} {row.status:>6} {row.size:>8} {duration_ms:>7.1f}  {bar}"
        )
    if len(waterfall.rows) > max_rows:
        lines.append(f"... and {len(waterfall.rows) - max_rows} more requests")
    lines.append(
        "total: {requests} requests, {duration_s}s, depth {max_depth}, "
        "parallelism {max_parallelism}, {origins} origin(s), {total_bytes} bytes, "
        "{retries} retries".format(**waterfall.summary())
    )
    return "\n".join(lines) + "\n"
