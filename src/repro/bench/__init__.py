"""Benchmark harness: query runners, waterfalls, and table rendering."""

from .harness import QueryRunReport, oracle_bindings, run_query, run_suite
from .sparkline import queue_sparkline, sparkline
from .tables import render_table
from .waterfall import Waterfall, WaterfallRow, build_waterfall, render_waterfall

__all__ = [
    "QueryRunReport",
    "run_query",
    "run_suite",
    "oracle_bindings",
    "Waterfall",
    "WaterfallRow",
    "build_waterfall",
    "render_waterfall",
    "render_table",
    "sparkline",
    "queue_sparkline",
]
