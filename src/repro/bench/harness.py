"""The benchmark harness: run Discover queries, collect the paper's metrics.

One :func:`run_query` call = one demo-scenario execution: traversal +
streaming query over the simulated pods, with the request log captured for
waterfall analysis and the oracle answer computed for completeness
checking.  :func:`run_suite` drives whole query suites (bench E6/E7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from ..ltqp.engine import EngineConfig, LinkTraversalEngine
from ..ltqp.extractors import LinkExtractor
from ..net.latency import LatencyModel, NoLatency
from ..net.log import RequestLog
from ..obs import Metrics, Tracer
from ..sparql.bindings import Binding
from ..sparql.eval import SnapshotEvaluator
from ..sparql.parser import parse_query
from ..solidbench.queries import NamedQuery
from ..solidbench.universe import SolidBenchUniverse
from .waterfall import Waterfall, build_waterfall, build_waterfall_from_trace

__all__ = ["QueryRunReport", "run_query", "run_suite", "oracle_bindings"]


@dataclass(slots=True)
class QueryRunReport:
    """Everything measured for one query execution."""

    query: NamedQuery
    result_count: int
    oracle_count: Optional[int]
    complete: Optional[bool]
    total_time: float
    time_to_first_result: Optional[float]
    documents_fetched: int
    documents_failed: int
    links_queued: int
    links_by_extractor: dict[str, int]
    waterfall: Waterfall
    streaming: bool
    result_times: list[float] = field(default_factory=list)
    #: The span tree recorded for this run (``trace=True`` only).
    trace: Optional[Tracer] = None
    #: Counters/gauges/histograms collected for this run (``trace=True`` only).
    metrics: Optional[Metrics] = None

    def row(self) -> dict:
        """A flat dict for table rendering."""
        return {
            "query": self.query.name,
            "results": self.result_count,
            "oracle": self.oracle_count if self.oracle_count is not None else "-",
            "complete": {True: "yes", False: "NO", None: "-"}[self.complete],
            "ttfr_s": (
                f"{self.time_to_first_result:.3f}"
                if self.time_to_first_result is not None
                else "-"
            ),
            "total_s": f"{self.total_time:.3f}",
            "requests": self.waterfall.request_count,
            "depth": self.waterfall.max_depth,
            "streaming": "yes" if self.streaming else "no",
        }


def oracle_bindings(universe: SolidBenchUniverse, query: NamedQuery) -> set[Binding]:
    """Ground-truth answer: the query over the union of all documents."""
    evaluator = SnapshotEvaluator(universe.oracle_dataset())
    return set(evaluator.select(parse_query(query.text)))


def run_query(
    universe: SolidBenchUniverse,
    query: NamedQuery,
    extractors: Optional[list[LinkExtractor]] = None,
    engine_config: Optional[EngineConfig] = None,
    latency: Optional[LatencyModel] = None,
    check_oracle: bool = True,
    auth_headers: Optional[dict[str, str]] = None,
    trace: bool = False,
) -> QueryRunReport:
    """Execute one Discover query by link traversal and measure it.

    With ``trace=True`` the run records a full span tree plus metrics,
    returned on the report, and the waterfall is built from trace events
    (identical rows, plus cache provenance and the first-result marker).
    """
    log = RequestLog()
    client = universe.client(
        latency=latency if latency is not None else NoLatency(), log=log
    )
    engine = LinkTraversalEngine(
        client, extractors=extractors, config=engine_config, auth_headers=auth_headers
    )
    tracer = Tracer() if trace else None
    metrics = Metrics() if trace else None
    execution = engine.query(
        query.text, seeds=query.seeds, tracer=tracer, metrics=metrics
    ).run_sync()
    stats = execution.stats

    oracle_count: Optional[int] = None
    complete: Optional[bool] = None
    if check_oracle:
        expected = oracle_bindings(universe, query)
        oracle_count = len(expected)
        complete = set(execution.bindings) == expected

    return QueryRunReport(
        query=query,
        result_count=len(execution),
        oracle_count=oracle_count,
        complete=complete,
        total_time=stats.total_time,
        time_to_first_result=stats.time_to_first_result,
        documents_fetched=stats.documents_fetched,
        documents_failed=stats.documents_failed,
        links_queued=stats.links_queued,
        links_by_extractor=dict(stats.links_by_extractor),
        waterfall=(
            build_waterfall_from_trace(tracer) if tracer is not None else build_waterfall(log)
        ),
        streaming=stats.streaming,
        result_times=[timed.elapsed for timed in execution.results],
        trace=tracer,
        metrics=metrics,
    )


def run_suite(
    universe: SolidBenchUniverse,
    queries: Sequence[NamedQuery],
    check_oracle: bool = True,
    **run_kwargs,
) -> list[QueryRunReport]:
    """Run a sequence of queries, returning one report each."""
    return [
        run_query(universe, query, check_oracle=check_oracle, **run_kwargs)
        for query in queries
    ]
