"""repro — Link Traversal SPARQL Query Processing over the Decentralized
Solid Environment (EDBT 2024 demonstration, Python reproduction).

Subpackages
-----------

``repro.rdf``
    RDF 1.1 stack: terms, triples/quads, indexed stores, Turtle and
    N-Triples parsing/serialization.
``repro.sparql``
    SPARQL 1.1: parser → algebra → zero-knowledge planner → snapshot
    evaluator (expressions, paths, aggregates, result formats).
``repro.net``
    Simulated async HTTP: origins/apps, latency models, request logging,
    plus a real-socket adapter.
``repro.solid``
    Solid pods: LDP containers, WebID profiles, Type Indexes, WAC access
    control, OIDC-style auth, and the pod server.
``repro.solidbench``
    Deterministic SolidBench dataset generator and the 37-query Discover
    suite.
``repro.ltqp``
    The paper's engine: link queue + dereferencer + extractors feeding a
    growing triple source, with pipelined incremental query execution.
``repro.obs``
    Structured tracing (span trees, Chrome trace-event export) and a
    counters/gauges/histograms metrics registry.
``repro.bench``
    Benchmark harness: suite runners, resource waterfalls, tables.

Quickstart
----------

>>> from repro.solidbench import build_universe, SolidBenchConfig, discover_query
>>> universe = build_universe(SolidBenchConfig(scale=0.01))
>>> query = discover_query(universe, 1, 5)
>>> engine = universe.fast_engine()
>>> result = engine.query(query.text, seeds=query.seeds).run_sync()
>>> result.stats.result_count == len(result.bindings)
True
"""

from .ltqp.engine import (
    EngineConfig,
    ExecutionResult,
    LinkTraversalEngine,
    QueryExecution,
    TraversalPolicy,
)
from .net.faults import FaultPlan, FaultRule
from .net.resilience import NetworkPolicy, RetryPolicy, BreakerPolicy
from .obs import Metrics, Tracer

__version__ = "1.0.0"

__all__ = [
    "LinkTraversalEngine",
    "EngineConfig",
    "TraversalPolicy",
    "NetworkPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "FaultPlan",
    "FaultRule",
    "QueryExecution",
    "ExecutionResult",
    "Tracer",
    "Metrics",
    "__version__",
]
