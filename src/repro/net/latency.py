"""Deterministic network latency models for the simulated Web.

The paper's demo runs against HTTP servers whose response times shape the
browser's Resource Waterfall (Figs. 4-5).  To reproduce that shape without
sockets, every simulated request is assigned a latency by a model; the
client then actually ``asyncio.sleep``\\ s for it (scaled), so concurrency,
dependency chains, and time-to-first-result behave like the real system.

Models are fully seeded — the same request sequence yields the same
latencies run after run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "SeededJitterLatency",
    "NoLatency",
    "seeded_uniform",
]


def seeded_uniform(seed: int, key: str, low: float, high: float) -> float:
    """A uniform draw that is a pure function of ``(seed, key)``.

    Shared by the latency model (per-URL RTT jitter) and the retry
    policy's backoff jitter (per ``url/attempt``), so network timing and
    retry timing replay identically run after run.
    """
    return random.Random(f"{seed}/{key}").uniform(low, high)


class LatencyModel:
    """Base class: maps (url, response size) to seconds of simulated delay."""

    def latency_for(self, url: str, response_size: int) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class NoLatency(LatencyModel):
    """Zero delay — fastest execution, ordering effects only."""

    def latency_for(self, url: str, response_size: int) -> float:
        return 0.0


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed round-trip time plus linear transfer time.

    ``rtt_seconds`` models connection+server overhead, ``bytes_per_second``
    the transfer bandwidth.
    """

    rtt_seconds: float = 0.002
    bytes_per_second: float = 10_000_000.0

    def latency_for(self, url: str, response_size: int) -> float:
        return self.rtt_seconds + response_size / self.bytes_per_second


class SeededJitterLatency(LatencyModel):
    """RTT with deterministic per-URL jitter.

    Each URL's latency is drawn from a uniform band using a RNG seeded by
    ``(seed, url)``, so a given URL always costs the same in a run and
    across runs, while different URLs differ — the pattern visible in the
    paper's waterfall screenshots (2-13 ms per document from cache).
    """

    def __init__(
        self,
        seed: int = 42,
        min_rtt_seconds: float = 0.001,
        max_rtt_seconds: float = 0.008,
        bytes_per_second: float = 10_000_000.0,
    ) -> None:
        self._seed = seed
        self._min = min_rtt_seconds
        self._max = max_rtt_seconds
        self._bandwidth = bytes_per_second

    def latency_for(self, url: str, response_size: int) -> float:
        rtt = seeded_uniform(self._seed, url, self._min, self._max)
        return rtt + response_size / self._bandwidth
