"""HTTP request/response messages for the simulated Web."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional
from urllib.parse import urlsplit

__all__ = ["Request", "Response", "split_url", "TURTLE_CONTENT_TYPE"]

TURTLE_CONTENT_TYPE = "text/turtle"


def split_url(url: str) -> tuple[str, str, str]:
    """Split an absolute http(s) URL into (origin, path, fragmentless url).

    The fragment is the client's business; the path keeps its query string.
    """
    parts = urlsplit(url)
    if parts.scheme not in ("http", "https"):
        raise ValueError(f"unsupported URL scheme in {url!r}")
    origin = f"{parts.scheme}://{parts.netloc}"
    path = parts.path or "/"
    if parts.query:
        path = f"{path}?{parts.query}"
    return origin, path, f"{origin}{path}"


@dataclass(slots=True)
class Request:
    """An HTTP request as seen by simulated servers."""

    method: str
    url: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        self.headers = {k.lower(): v for k, v in self.headers.items()}

    @property
    def origin(self) -> str:
        return split_url(self.url)[0]

    @property
    def path(self) -> str:
        return split_url(self.url)[1]

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


@dataclass(slots=True)
class Response:
    """An HTTP response."""

    status: int
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def __post_init__(self) -> None:
        self.headers = {k.lower(): v for k, v in self.headers.items()}

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def content_type(self) -> str:
        value = self.headers.get("content-type", "")
        return value.split(";", 1)[0].strip()

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8")

    @classmethod
    def ok_turtle(cls, text: str, extra_headers: Optional[Mapping[str, str]] = None) -> "Response":
        headers = {"content-type": TURTLE_CONTENT_TYPE}
        if extra_headers:
            headers.update({k.lower(): v for k, v in extra_headers.items()})
        return cls(200, headers, text.encode("utf-8"))

    @classmethod
    def not_found(cls, url: str = "") -> "Response":
        message = f"Not found: {url}" if url else "Not found"
        return cls(404, {"content-type": "text/plain"}, message.encode("utf-8"))

    @classmethod
    def unauthorized(cls) -> "Response":
        return cls(
            401,
            {"content-type": "text/plain", "www-authenticate": "Bearer"},
            b"Unauthorized",
        )

    @classmethod
    def forbidden(cls) -> "Response":
        return cls(403, {"content-type": "text/plain"}, b"Forbidden")
