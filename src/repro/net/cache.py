"""Client-side HTTP caching.

The paper's demo runs in a browser whose disk cache answers most repeat
requests — the Fig. 4 waterfall shows almost every document served
"(disk cache)" in 2-13 ms.  This module reproduces that layer:

* fresh entries (within ``max-age``) are served locally without touching
  the network;
* stale entries revalidate with ``If-None-Match``; a ``304 Not Modified``
  renews the entry without re-transferring the body.

The cache is transport-agnostic: :class:`~repro.net.client.HttpClient`
consults it when constructed with ``cache=HttpCache()``.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Optional

from .message import Response

__all__ = ["CacheEntry", "HttpCache"]

_MAX_AGE_RE = re.compile(r"max-age=(\d+)")


@dataclass(slots=True)
class CacheEntry:
    """A cached response body plus its validators."""

    response: Response
    etag: str
    stored_at: float
    max_age: float

    def is_fresh(self, now: Optional[float] = None) -> bool:
        if self.max_age <= 0:
            return False
        current = now if now is not None else time.monotonic()
        return current - self.stored_at < self.max_age

    def renew(self, now: Optional[float] = None) -> None:
        self.stored_at = now if now is not None else time.monotonic()


class HttpCache:
    """URL-keyed response cache with ETag revalidation.

    Only successful ``GET`` responses are cached.  ``default_max_age``
    applies when the server sends no ``Cache-Control``; pass ``0`` to
    force revalidation on every reuse.
    """

    def __init__(self, default_max_age: float = 300.0, max_entries: int = 100_000) -> None:
        self._entries: dict[str, CacheEntry] = {}
        self._default_max_age = default_max_age
        self._max_entries = max_entries
        self.hits = 0
        self.revalidations = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, url: str) -> Optional[CacheEntry]:
        return self._entries.get(url)

    def store(self, url: str, response: Response) -> Optional[CacheEntry]:
        """Cache a 200 response; returns the entry (or None if uncacheable)."""
        if response.status != 200:
            return None
        cache_control = response.header("cache-control")
        if "no-store" in cache_control:
            return None
        if "no-cache" in cache_control:
            # RFC 9111 §5.2.2.4: ``no-cache`` responses MAY be stored but
            # MUST be revalidated before every reuse — a zero max-age makes
            # the entry permanently stale, so each hit goes through the
            # ETag / 304 path instead of being served from memory.
            max_age = 0.0
        else:
            max_age = self._default_max_age
            match = _MAX_AGE_RE.search(cache_control)
            if match:
                max_age = float(match.group(1))
        if len(self._entries) >= self._max_entries and url not in self._entries:
            # Simple bound: drop the oldest entry.
            oldest = min(self._entries, key=lambda key: self._entries[key].stored_at)
            del self._entries[oldest]
        entry = CacheEntry(
            response=response,
            etag=response.header("etag"),
            stored_at=time.monotonic(),
            max_age=max_age,
        )
        self._entries[url] = entry
        return entry

    def clear(self) -> None:
        self._entries.clear()
        self.hits = self.revalidations = self.misses = 0

    def statistics(self) -> dict:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "revalidations": self.revalidations,
            "misses": self.misses,
        }
