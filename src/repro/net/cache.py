"""Client-side HTTP caching.

The paper's demo runs in a browser whose disk cache answers most repeat
requests — the Fig. 4 waterfall shows almost every document served
"(disk cache)" in 2-13 ms.  This module reproduces that layer:

* fresh entries (within ``max-age``) are served locally without touching
  the network;
* stale entries revalidate with ``If-None-Match``; a ``304 Not Modified``
  renews the entry without re-transferring the body.

The cache is transport-agnostic: :class:`~repro.net.client.HttpClient`
consults it when constructed with ``cache=HttpCache()``.

Like the parsed-document store, the cache rides the shared
:class:`~repro.storage.tier.StorageTier` discipline: a bounded true-LRU
set of decoded entries in memory and — when a persistent
:class:`~repro.storage.StorageBackend` is attached — a write-through
durable copy, so a restarted service answers repeat requests from the
store file exactly like the browser's disk cache answers them across
browser restarts.  Persisted entries carry wall-clock timestamps;
freshness windows therefore survive the restart, and anything past its
window simply revalidates through the ordinary ETag/304 path.
"""

from __future__ import annotations

import base64
import json
import re
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from ..storage import StorageBackend, StorageTier
from .message import Response

__all__ = ["CacheEntry", "HttpCache"]

_MAX_AGE_RE = re.compile(r"max-age=(\d+)")


@dataclass(slots=True)
class CacheEntry:
    """A cached response body plus its validators."""

    response: Response
    etag: str
    stored_at: float
    max_age: float
    #: The request URL the entry answers — carried on the entry so the
    #: cache can export/adopt entries wholesale (shard handoff parity
    #: with :class:`~repro.service.docstore.StoredDocument`).
    url: str = ""

    def is_fresh(self, now: Optional[float] = None) -> bool:
        if self.max_age <= 0:
            return False
        current = now if now is not None else time.monotonic()
        return current - self.stored_at < self.max_age

    def renew(self, now: Optional[float] = None) -> None:
        self.stored_at = now if now is not None else time.monotonic()


def encode_cache_entry(entry: CacheEntry) -> bytes:
    """Storage-backend bytes: response + validators, wall-clock stamped."""
    payload = {
        "url": entry.url,
        "status": entry.response.status,
        "headers": entry.response.headers,
        "body": base64.b64encode(entry.response.body).decode("ascii"),
        "etag": entry.etag,
        "max_age": entry.max_age,
        "stored_wall": time.time() - (time.monotonic() - entry.stored_at),
    }
    return json.dumps(payload).encode("utf-8")


def decode_cache_entry(raw: bytes) -> CacheEntry:
    payload = json.loads(raw.decode("utf-8"))
    age = max(0.0, time.time() - float(payload["stored_wall"]))
    return CacheEntry(
        response=Response(
            payload["status"],
            dict(payload["headers"]),
            base64.b64decode(payload["body"]),
        ),
        etag=payload["etag"],
        stored_at=time.monotonic() - age,
        max_age=float(payload["max_age"]),
        url=payload.get("url", ""),
    )


class HttpCache:
    """URL-keyed response cache with ETag revalidation.

    Only successful ``GET`` responses are cached.  ``default_max_age``
    applies when the server sends no ``Cache-Control``; pass ``0`` to
    force revalidation on every reuse.  ``max_entries`` bounds the
    in-memory LRU; a persistent ``backend`` keeps evicted and
    across-restart entries reachable.
    """

    def __init__(
        self,
        default_max_age: float = 300.0,
        max_entries: int = 100_000,
        backend: Optional[StorageBackend] = None,
    ) -> None:
        self._tier = StorageTier(
            "http",
            max_entries,
            encode_cache_entry,
            decode_cache_entry,
            backend=backend,
        )
        self._default_max_age = default_max_age
        self.hits = 0
        self.revalidations = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._tier)

    def __contains__(self, url: str) -> bool:
        return url in self._tier

    @property
    def tier(self) -> StorageTier:
        return self._tier

    def lookup(self, url: str) -> Optional[CacheEntry]:
        return self._tier.get(url)

    def store(self, url: str, response: Response) -> Optional[CacheEntry]:
        """Cache a 200 response; returns the entry (or None if uncacheable)."""
        if response.status != 200:
            return None
        cache_control = response.header("cache-control")
        if "no-store" in cache_control:
            return None
        if "no-cache" in cache_control:
            # RFC 9111 §5.2.2.4: ``no-cache`` responses MAY be stored but
            # MUST be revalidated before every reuse — a zero max-age makes
            # the entry permanently stale, so each hit goes through the
            # ETag / 304 path instead of being served from memory.
            max_age = 0.0
        else:
            max_age = self._default_max_age
            match = _MAX_AGE_RE.search(cache_control)
            if match:
                max_age = float(match.group(1))
        entry = CacheEntry(
            response=response,
            etag=response.header("etag"),
            stored_at=time.monotonic(),
            max_age=max_age,
            url=url,
        )
        self._tier.put(url, entry)
        return entry

    def entries(self) -> list[CacheEntry]:
        """All cached responses, oldest first (export order)."""
        entries = []
        for url, entry in self._tier.items():
            if not entry.url:
                entry.url = url
            entries.append(entry)
        return sorted(entries, key=lambda entry: entry.stored_at)

    def adopt(self, entry: CacheEntry) -> None:
        """Install an entry cached elsewhere (shard handoff parity).

        Counts as neither a hit nor a miss: no request was answered.
        Freshness and revalidation behave exactly as for a locally
        stored entry.
        """
        if not entry.url:
            raise ValueError("cannot adopt a CacheEntry without a url")
        self._tier.put(entry.url, entry)

    def adopt_all(self, entries: Iterable[CacheEntry]) -> int:
        count = 0
        for entry in entries:
            self.adopt(entry)
            count += 1
        return count

    def flush(self) -> None:
        """Commit pending backend writes (no-op without persistence)."""
        self._tier.flush()

    def clear(self) -> None:
        self._tier.clear()
        self.hits = self.revalidations = self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def statistics(self) -> dict:
        return {
            "entries": len(self._tier),
            "hits": self.hits,
            "revalidations": self.revalidations,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
            "storage": self._tier.statistics(),
        }
