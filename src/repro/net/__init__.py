"""Simulated asynchronous HTTP layer.

The engine sees ordinary HTTP semantics (``fetch(url) -> Response``);
underneath, requests route in-process to registered origin apps with
deterministic simulated latency and full request logging — or over real
sockets via :class:`RealHttpServer` for end-to-end integration tests.
"""

from .cache import CacheEntry, HttpCache
from .client import FetchError, HttpClient
from .latency import ConstantLatency, LatencyModel, NoLatency, SeededJitterLatency
from .log import RequestLog, RequestRecord
from .message import Request, Response, split_url
from .realserver import RealHttpServer
from .router import App, FunctionApp, Internet, StaticApp

__all__ = [
    "Request",
    "Response",
    "split_url",
    "App",
    "FunctionApp",
    "StaticApp",
    "Internet",
    "HttpClient",
    "FetchError",
    "HttpCache",
    "CacheEntry",
    "RequestLog",
    "RequestRecord",
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "SeededJitterLatency",
    "RealHttpServer",
]
