"""Simulated asynchronous HTTP layer.

The engine sees ordinary HTTP semantics (``fetch(url) -> Response``);
underneath, requests route in-process to registered origin apps with
deterministic simulated latency and full request logging — or over real
sockets via :class:`RealHttpServer` for end-to-end integration tests.
"""

from .cache import CacheEntry, HttpCache
from .client import FetchError, HttpClient
from .faults import FAULT_KINDS, FaultPlan, FaultRule
from .latency import (
    ConstantLatency,
    LatencyModel,
    NoLatency,
    SeededJitterLatency,
    seeded_uniform,
)
from .log import RequestLog, RequestRecord
from .message import Request, Response, split_url
from .realserver import RealHttpServer
from .resilience import (
    RETRYABLE_STATUSES,
    BreakerPolicy,
    BreakerRegistry,
    CircuitBreaker,
    NetworkPolicy,
    ResilienceStats,
    RetryPolicy,
)
from .router import App, FunctionApp, Internet, StaticApp

__all__ = [
    "Request",
    "Response",
    "split_url",
    "App",
    "FunctionApp",
    "StaticApp",
    "Internet",
    "HttpClient",
    "FetchError",
    "HttpCache",
    "CacheEntry",
    "RequestLog",
    "RequestRecord",
    "LatencyModel",
    "NoLatency",
    "ConstantLatency",
    "SeededJitterLatency",
    "seeded_uniform",
    "RealHttpServer",
    "FaultPlan",
    "FaultRule",
    "FAULT_KINDS",
    "NetworkPolicy",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerRegistry",
    "ResilienceStats",
    "RETRYABLE_STATUSES",
]
