"""Request logging: the data source for Resource Waterfalls (Figs. 4-5).

Every request the simulated client performs is recorded with timing,
status, size, and — crucially for the waterfall's dependency arrows — the
*parent* URL: the document whose links led the engine to this one.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["RequestRecord", "RequestLog"]


@dataclass(slots=True)
class RequestRecord:
    """One completed (or failed) HTTP exchange."""

    sequence: int
    method: str
    url: str
    status: int
    started_at: float
    finished_at: float
    response_size: int
    parent_url: Optional[str] = None
    error: str = ""
    from_cache: bool = False
    #: Which attempt at this URL the record is (1 = first try, >1 = retry).
    attempt: int = 1

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at

    @property
    def is_retry(self) -> bool:
        return self.attempt > 1

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class RequestLog:
    """Append-only, thread-safe log of request records."""

    def __init__(self) -> None:
        self._records: list[RequestRecord] = []
        self._lock = threading.Lock()
        self._sequence = 0

    def record(
        self,
        method: str,
        url: str,
        status: int,
        started_at: float,
        finished_at: float,
        response_size: int,
        parent_url: Optional[str] = None,
        error: str = "",
        from_cache: bool = False,
        attempt: int = 1,
    ) -> RequestRecord:
        with self._lock:
            self._sequence += 1
            entry = RequestRecord(
                sequence=self._sequence,
                method=method,
                url=url,
                status=status,
                started_at=started_at,
                finished_at=finished_at,
                response_size=response_size,
                parent_url=parent_url,
                error=error,
                from_cache=from_cache,
                attempt=attempt,
            )
            self._records.append(entry)
            return entry

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._sequence = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def __iter__(self) -> Iterator[RequestRecord]:
        with self._lock:
            return iter(list(self._records))

    @property
    def records(self) -> list[RequestRecord]:
        with self._lock:
            return list(self._records)

    # -- aggregate statistics used by benches --------------------------------

    def total_bytes(self) -> int:
        return sum(r.response_size for r in self.records)

    def count_by_status(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    def retry_count(self) -> int:
        """How many records are retries (attempt > 1)."""
        return sum(1 for r in self.records if r.attempt > 1)

    def origins(self) -> set[str]:
        from .message import split_url

        result: set[str] = set()
        for record in self.records:
            try:
                result.add(split_url(record.url)[0])
            except ValueError:
                continue
        return result

    def dependency_depths(self) -> dict[str, int]:
        """Depth of each URL in the discovered-from tree (seeds are 0)."""
        records = self.records
        parents = {r.url: r.parent_url for r in records}
        depths: dict[str, int] = {}

        def depth_of(url: str, guard: int = 0) -> int:
            if url in depths:
                return depths[url]
            parent = parents.get(url)
            if parent is None or guard > len(parents):
                depths[url] = 0
                return 0
            value = depth_of(parent, guard + 1) + 1
            depths[url] = value
            return value

        for record in records:
            depth_of(record.url)
        return depths

    def max_depth(self) -> int:
        depths = self.dependency_depths()
        return max(depths.values(), default=0)

    def max_parallelism(self) -> int:
        """Largest number of requests simultaneously in flight."""
        events: list[tuple[float, int]] = []
        for record in self.records:
            events.append((record.started_at, 1))
            events.append((record.finished_at, -1))
        events.sort()
        current = best = 0
        for _, delta in events:
            current += delta
            best = max(best, current)
        return best
