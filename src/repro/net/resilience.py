"""Client-side resilience: retry policies, backoff, circuit breakers.

The paper's engine runs ``--lenient`` against the open Web, where flaky
pods are the norm, not the exception.  This module holds the policy
objects the :class:`~repro.net.client.HttpClient` consults to survive
them:

* :class:`RetryPolicy` — how many attempts a request gets, the
  exponential-backoff schedule between them (with *seeded* jitter so
  every run is reproducible), and a global retry budget;
* :class:`BreakerPolicy` / :class:`CircuitBreaker` — the classic
  closed → open → half-open state machine, one breaker per origin, so a
  dead pod is fast-failed instead of hammered while healthy pods keep
  being queried;
* :class:`NetworkPolicy` — the umbrella dataclass the engine's
  ``EngineConfig`` nests (timeouts, retry, breaker, link re-queue knobs);
* :class:`ResilienceStats` — counters the completeness report in
  :class:`~repro.ltqp.stats.ExecutionStats` is built from.

Everything is deterministic: backoff jitter derives from
``(seed, url, attempt)`` exactly like the latency model's per-URL jitter,
so a seeded fault plan plus a seeded retry policy replays identically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from .latency import seeded_uniform

__all__ = [
    "RETRYABLE_STATUSES",
    "RetryPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "BreakerRegistry",
    "NetworkPolicy",
    "ResilienceStats",
]

#: HTTP statuses worth retrying: transport failure (0), request timeout,
#: throttling, and server-side errors.  4xx client errors and 404s are
#: permanent — retrying them would only re-ask a correct question.
RETRYABLE_STATUSES = frozenset({0, 408, 429, 500, 502, 503, 504})

#: ``x-error`` marker values that make a status-0 response *permanent*
#: (an unresolvable host is NXDOMAIN, not a transient blip; a response
#: body over the read cap will be over it on every retry too).
PERMANENT_ERROR_MARKERS = frozenset({"unknown-origin", "body-too-large"})


@dataclass(slots=True)
class RetryPolicy:
    """Retry/backoff knobs for one client.

    ``max_attempts`` counts the first try: ``1`` disables retries.  The
    backoff before retry *i* (0-based) is
    ``min(max_delay, base_delay * multiplier**i)`` scaled by a seeded
    jitter factor in ``[1 - jitter, 1]`` — deterministic per
    ``(seed, url, i)``.  ``budget`` caps total retries across a client's
    lifetime so a widely-broken Web cannot stall traversal indefinitely
    (``0`` disables the cap).
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 42
    respect_retry_after: bool = True
    #: Cap honoured for a server-sent ``Retry-After`` (simulated seconds).
    max_retry_after: float = 1.0
    budget: int = 1024

    @property
    def enabled(self) -> bool:
        return self.max_attempts > 1

    def backoff_delay(self, url: str, retry_index: int) -> float:
        """Seconds to wait before retry ``retry_index`` of ``url``."""
        raw = min(self.max_delay, self.base_delay * self.multiplier**retry_index)
        if self.jitter <= 0:
            return raw
        factor = seeded_uniform(self.seed, f"backoff/{url}/{retry_index}", 1.0 - self.jitter, 1.0)
        return raw * factor

    def schedule(self, url: str) -> list[float]:
        """The full deterministic backoff schedule for ``url``."""
        return [self.backoff_delay(url, i) for i in range(max(0, self.max_attempts - 1))]

    @classmethod
    def disabled(cls) -> "RetryPolicy":
        return cls(max_attempts=1)


@dataclass(slots=True)
class BreakerPolicy:
    """Thresholds for the per-origin circuit breakers.

    ``failure_threshold`` consecutive failures open the breaker;
    ``recovery_seconds`` later it half-opens and admits
    ``half_open_probes`` trial requests — one success recloses it, one
    failure re-opens it.  ``failure_threshold <= 0`` disables breaking.
    """

    failure_threshold: int = 5
    recovery_seconds: float = 0.25
    half_open_probes: int = 1

    @property
    def enabled(self) -> bool:
        return self.failure_threshold > 0


class CircuitBreaker:
    """Closed → open → half-open state machine guarding one origin."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        self._policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self.trips = 0  # closed→open transitions
        #: Observer called with ``(old_state, new_state)`` on every change
        #: (metrics wiring: breaker state-transition counters).
        self.on_transition = on_transition

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _set_state(self, new_state: str) -> None:
        if new_state == self._state:
            return
        old_state = self._state
        self._state = new_state
        if self.on_transition is not None:
            self.on_transition(old_state, new_state)

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self._policy.recovery_seconds
        ):
            self._set_state(self.HALF_OPEN)
            self._probes_in_flight = 0

    def allow(self) -> bool:
        """May a request be sent to this origin right now?

        In half-open state each ``allow`` admits a probe; callers must
        report its outcome via ``record_success``/``record_failure``.
        """
        if not self._policy.enabled:
            return True
        self._maybe_half_open()
        if self._state == self.CLOSED:
            return True
        if self._state == self.HALF_OPEN:
            if self._probes_in_flight < self._policy.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False
        return False

    def record_success(self) -> None:
        if self._state == self.HALF_OPEN:
            self._set_state(self.CLOSED)
        self._consecutive_failures = 0
        self._probes_in_flight = 0

    def record_failure(self) -> None:
        if not self._policy.enabled:
            return
        if self._state == self.HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._state == self.CLOSED and self._consecutive_failures >= self._policy.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._set_state(self.OPEN)
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_in_flight = 0
        self.trips += 1


class BreakerRegistry:
    """One :class:`CircuitBreaker` per origin, created on demand."""

    def __init__(
        self,
        policy: Optional[BreakerPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, str], None]] = None,
    ) -> None:
        self._policy = policy if policy is not None else BreakerPolicy()
        self._clock = clock
        self._breakers: dict[str, CircuitBreaker] = {}
        #: Observer called with ``(origin, old_state, new_state)``.
        self.on_transition = on_transition

    def for_origin(self, origin: str) -> CircuitBreaker:
        breaker = self._breakers.get(origin)
        if breaker is None:
            hook = None
            if self.on_transition is not None:
                registry = self

                def hook(old: str, new: str, _origin: str = origin) -> None:
                    if registry.on_transition is not None:
                        registry.on_transition(_origin, old, new)

            breaker = self._breakers[origin] = CircuitBreaker(
                self._policy, clock=self._clock, on_transition=hook
            )
        return breaker

    def trips_by_origin(self) -> dict[str, int]:
        return {origin: b.trips for origin, b in self._breakers.items() if b.trips}

    @property
    def trips_total(self) -> int:
        return sum(b.trips for b in self._breakers.values())


@dataclass(slots=True)
class NetworkPolicy:
    """Everything the network layer needs to know about fault handling.

    Nested inside :class:`~repro.ltqp.engine.EngineConfig` (the
    traversal-side counterpart is ``TraversalPolicy``), and consumed
    directly by :class:`~repro.net.client.HttpClient`.
    """

    #: Per-attempt timeout in simulated seconds (0 disables).
    request_timeout: float = 5.0
    #: Hard cap on a response body, enforced *while the body is read*:
    #: a transfer that exceeds it is aborted and surfaces as a status-0
    #: response marked ``x-error: body-too-large`` (permanent — the body
    #: will be over the cap on every retry).  An unbounded-document
    #: attack therefore costs at most ``max_response_bytes`` of memory
    #: and transfer per document.  ``0`` disables the cap.
    max_response_bytes: int = 0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    #: How many times the *dereferencer* may re-queue a link whose fetch
    #: failed retryably even after client-level retries (e.g. a tripped
    #: breaker that later recovers).
    max_link_requeues: int = 2

    @classmethod
    def no_retry(cls) -> "NetworkPolicy":
        """Retries, breaking, and re-queueing all off — the old behaviour."""
        return cls(
            retry=RetryPolicy.disabled(),
            breaker=BreakerPolicy(failure_threshold=0),
            max_link_requeues=0,
        )


@dataclass(slots=True)
class ResilienceStats:
    """Counters the client maintains across its lifetime.

    The engine snapshots these per execution to build the completeness
    report (see ``ExecutionStats.completeness``).
    """

    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    retry_after_waits: int = 0
    breaker_fast_fails: int = 0
    budget_exhausted: int = 0
    #: Transfers aborted mid-read because the body exceeded
    #: :attr:`NetworkPolicy.max_response_bytes`.
    body_cap_aborts: int = 0

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "retry_after_waits": self.retry_after_waits,
            "breaker_fast_fails": self.breaker_fast_fails,
            "budget_exhausted": self.budget_exhausted,
            "body_cap_aborts": self.body_cap_aborts,
        }
