"""Serve a simulated :class:`~repro.net.router.Internet` over real sockets.

The in-process transport is the default (fast, deterministic), but the demo
paper's system talks real HTTP; this adapter proves the same apps work
end-to-end over sockets.  All registered origins are multiplexed onto one
local port — the original origin is reconstructed from the URL path prefix
``/origin/<scheme>/<host>/...``, or via the ``Host`` header when only one
origin is registered.
"""

from __future__ import annotations

import asyncio
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .message import Request
from .router import Internet

__all__ = ["RealHttpServer"]


class RealHttpServer:
    """A threaded stdlib HTTP server fronting an :class:`Internet`.

    Use as a context manager::

        with RealHttpServer(internet) as server:
            url = server.url_for("https://pod.example/profile/card")
            # fetch it with any real HTTP client
    """

    def __init__(self, internet: Internet, host: str = "127.0.0.1", port: int = 0) -> None:
        self._internet = internet
        self._host = host
        self._requested_port = port
        self._server: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not running")
        return self._server.server_address[1]

    @property
    def base_url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def url_for(self, simulated_url: str) -> str:
        """Map a simulated URL to a URL served by this real server."""
        scheme, rest = simulated_url.split("://", 1)
        host, _, path = rest.partition("/")
        return f"{self.base_url}/origin/{scheme}/{host}/{path}"

    def start(self) -> "RealHttpServer":
        internet = self._internet

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, format: str, *args) -> None:  # silence
                pass

            def _dispatch(self, method: str) -> None:
                simulated_url = self._simulated_url()
                if simulated_url is None:
                    self.send_response(400)
                    self.end_headers()
                    self.wfile.write(b"expected /origin/<scheme>/<host>/<path>")
                    return
                headers = {k.lower(): v for k, v in self.headers.items()}
                request = Request(method=method, url=simulated_url, headers=headers)
                response = asyncio.run(internet.dispatch(request))
                status = response.status if response.status else 502
                self.send_response(status)
                for name, value in response.headers.items():
                    self.send_header(name, value)
                self.send_header("content-length", str(len(response.body)))
                self.end_headers()
                if method != "HEAD":
                    self.wfile.write(response.body)

            def _simulated_url(self) -> Optional[str]:
                parts = self.path.split("/")
                # ['', 'origin', scheme, host, ...path]
                if len(parts) >= 4 and parts[1] == "origin":
                    scheme, host = parts[2], parts[3]
                    path = "/".join(parts[4:])
                    return f"{scheme}://{host}/{path}"
                origins = internet.origins()
                if len(origins) == 1:
                    return origins[0] + self.path
                return None

            def do_GET(self) -> None:
                self._dispatch("GET")

            def do_HEAD(self) -> None:
                self._dispatch("HEAD")

        self._server = ThreadingHTTPServer((self._host, self._requested_port), _Handler)
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "RealHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
