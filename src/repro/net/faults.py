"""Deterministic network-fault injection for the simulated Web.

A :class:`FaultPlan` installs on the :class:`~repro.net.router.Internet`
(``internet.install_fault_plan(plan)``) and intercepts every dispatched
request before it reaches the origin's app.  Each :class:`FaultRule`
matches requests (by origin, URL substring, or request count) and injects
one fault kind:

* ``drop``    — the connection dies: a status-0 response;
* ``status``  — an HTTP error (429/503/…), optionally with ``Retry-After``;
* ``delay``   — the response arrives late (extra simulated seconds);
* ``trickle`` — a pathologically slow response (a large delay, modelling
  a server that drips bytes);
* ``flap``    — the origin oscillates dead/alive in windows of
  ``flap_period`` requests (down for the first ``flap_down`` of each).

Everything is seeded: whether a given URL is faulted is a pure function
of ``(seed, rule, url)``, and *transient* rules (``fail_attempts = N``)
fault only the first N attempts for that URL, then let it through — so a
retrying client deterministically recovers, and every failure scenario in
tests and benchmarks replays exactly.

Injected responses carry an ``x-fault`` header so logs, waterfalls, and
assertions can tell injected faults from genuine application errors.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import Awaitable, Callable, Optional

from .message import Request, Response

__all__ = ["FaultRule", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("drop", "status", "delay", "trickle", "flap")


@dataclass(frozen=True, slots=True)
class FaultRule:
    """One matching + injection rule of a :class:`FaultPlan`."""

    kind: str = "status"
    #: Match only this origin (``https://host[:port]``); ``None`` = any.
    origin: Optional[str] = None
    #: Match URLs containing this substring; ``None`` = any.
    url_pattern: Optional[str] = None
    #: Fraction of matching URLs that are faulted (seeded draw per URL).
    rate: float = 1.0
    #: Fault only the first N attempts per URL (transient); 0 = every one.
    fail_attempts: int = 0
    #: For ``kind="status"``: the injected HTTP status code.
    status: int = 503
    #: ``Retry-After`` value (simulated seconds) on injected statuses; 0 = omit.
    retry_after: float = 0.0
    #: Extra simulated delay for ``delay``/``trickle`` (seconds).
    delay_seconds: float = 0.05
    #: For ``kind="trickle"``: when > 0, the delay also scales with the
    #: response size — ``delay_seconds + len(body) / drip_bytes_per_second``
    #: — modelling a server that drips bytes at a fixed rate, so bigger
    #: documents stall longer.  The sleep happens inside the dispatch the
    #: client wraps in its per-attempt timeout, which is exactly the
    #: defense: a trickling origin costs at most ``request_timeout`` per
    #: attempt.
    drip_bytes_per_second: float = 0.0
    #: For ``kind="flap"``: window length and down-fraction, in requests.
    flap_period: int = 8
    flap_down: int = 4

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (one of {FAULT_KINDS})")

    def matches(self, request: Request) -> bool:
        if self.origin is not None and request.origin != self.origin.rstrip("/"):
            return False
        if self.url_pattern is not None and self.url_pattern not in request.url:
            return False
        return True


class FaultPlan:
    """A seeded, reproducible set of fault rules plus injection counters."""

    def __init__(self, rules: Optional[list[FaultRule]] = None, seed: int = 42) -> None:
        self._rules = list(rules or [])
        self._seed = seed
        #: Per-URL attempt counter (how often each URL has been requested).
        self._attempts: dict[str, int] = {}
        #: Per-origin request counter (drives ``flap`` windows).
        self._origin_requests: dict[str, int] = {}
        self.injected_by_kind: dict[str, int] = {}
        self.injected_by_origin: dict[str, int] = {}

    # ------------------------------------------------------------------
    # convenience constructors
    # ------------------------------------------------------------------

    @classmethod
    def transient(
        cls,
        rate: float,
        seed: int = 42,
        fail_attempts: int = 1,
        kind: str = "status",
        status: int = 503,
        retry_after: float = 0.0,
    ) -> "FaultPlan":
        """Fault a seeded ``rate`` fraction of URLs for their first
        ``fail_attempts`` attempts, then recover — the scenario the
        fault-tolerance property test replays: with client retries
        ``>= fail_attempts`` the query's answer must be unchanged."""
        return cls(
            [
                FaultRule(
                    kind=kind,
                    rate=rate,
                    fail_attempts=fail_attempts,
                    status=status,
                    retry_after=retry_after,
                )
            ],
            seed=seed,
        )

    @classmethod
    def origin_outage(cls, origin: str, seed: int = 42, kind: str = "drop") -> "FaultPlan":
        """A completely dead origin (every request faulted, forever)."""
        return cls([FaultRule(kind=kind, origin=origin)], seed=seed)

    # ------------------------------------------------------------------

    @property
    def rules(self) -> list[FaultRule]:
        return list(self._rules)

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def total_injected(self) -> int:
        return sum(self.injected_by_kind.values())

    def attempts_for(self, url: str) -> int:
        return self._attempts.get(url, 0)

    def is_faulted_url(self, rule_index: int, url: str) -> bool:
        """The seeded per-URL draw for one rule (pure, no counters)."""
        rule = self._rules[rule_index]
        if rule.rate >= 1.0:
            return True
        if rule.rate <= 0.0:
            return False
        return random.Random(f"{self._seed}/{rule_index}/{url}").random() < rule.rate

    def _decide(self, request: Request) -> Optional[FaultRule]:
        """Which rule (if any) fires for this request — counts one attempt."""
        url = request.url
        attempt = self._attempts.get(url, 0) + 1
        self._attempts[url] = attempt
        origin_count = self._origin_requests.get(request.origin, 0) + 1
        self._origin_requests[request.origin] = origin_count
        for index, rule in enumerate(self._rules):
            if not rule.matches(request):
                continue
            if rule.kind == "flap":
                period = max(1, rule.flap_period)
                if (origin_count - 1) % period >= rule.flap_down:
                    continue  # currently in the "up" part of the window
            elif not self.is_faulted_url(index, url):
                continue
            if rule.fail_attempts and attempt > rule.fail_attempts:
                continue  # transient fault already passed for this URL
            return rule
        return None

    def _record(self, rule: FaultRule, request: Request) -> None:
        self.injected_by_kind[rule.kind] = self.injected_by_kind.get(rule.kind, 0) + 1
        self.injected_by_origin[request.origin] = (
            self.injected_by_origin.get(request.origin, 0) + 1
        )

    async def apply(
        self, request: Request, forward: Callable[[], Awaitable[Response]]
    ) -> Response:
        """Intercept one request: inject a fault or forward it untouched."""
        rule = self._decide(request)
        if rule is None:
            return await forward()
        self._record(rule, request)
        if rule.kind in ("drop", "flap"):
            return Response(0, {"x-fault": rule.kind}, b"")
        if rule.kind == "status":
            headers = {"content-type": "text/plain", "x-fault": "status"}
            if rule.retry_after > 0:
                headers["retry-after"] = f"{rule.retry_after:g}"
            return Response(rule.status, headers, b"injected fault")
        # delay / trickle: the response is intact but late.
        if rule.kind == "trickle" and rule.drip_bytes_per_second > 0:
            response = await forward()
            await asyncio.sleep(
                rule.delay_seconds + len(response.body) / rule.drip_bytes_per_second
            )
            return response
        await asyncio.sleep(rule.delay_seconds)
        return await forward()
