"""Async HTTP client over the simulated :class:`~repro.net.router.Internet`.

Reproduces the client-side behaviours that shape the paper's resource
waterfalls: a browser-like per-origin concurrency cap, simulated latency
(see :mod:`repro.net.latency`), and full request logging with parent-URL
provenance (see :mod:`repro.net.log`).  Errors never raise by default —
the LTQP engine runs ``--lenient`` against the open Web, so failures are
represented as status-0 responses the caller can skip.

On top of that sits the resilience layer (see :mod:`repro.net.resilience`):
per-attempt timeouts, retries with seeded exponential backoff,
``Retry-After`` honouring, and a per-origin circuit breaker — all
governed by the :class:`~repro.net.resilience.NetworkPolicy` passed in
(or its defaults).  Every attempt is logged individually, so waterfalls
show retries as separate bars.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from .cache import HttpCache
from .latency import LatencyModel, SeededJitterLatency
from .log import RequestLog
from .message import Request, Response, split_url
from .resilience import (
    BreakerRegistry,
    NetworkPolicy,
    PERMANENT_ERROR_MARKERS,
    RETRYABLE_STATUSES,
    ResilienceStats,
)
from .router import Internet

__all__ = ["HttpClient", "FetchError"]


class FetchError(RuntimeError):
    """Raised by :meth:`HttpClient.fetch` in strict mode on network failure."""

    def __init__(self, url: str, message: str) -> None:
        super().__init__(f"{message}: {url}")
        self.url = url


def _error_text(response: Response) -> str:
    if response.status != 0:
        return ""
    marker = response.header("x-error")
    if marker == "unknown-origin":
        return "connection failed (unknown origin)"
    if marker == "timeout":
        return "request timed out"
    if marker == "body-too-large":
        return "response body too large"
    if marker == "circuit-open":
        return "circuit breaker open"
    if response.header("x-fault"):
        return f"connection failed (injected {response.header('x-fault')})"
    return "connection failed"


def _is_retryable(response: Response) -> bool:
    """Transient failure worth another attempt?  Transport drops, request
    timeouts, throttling, and 5xx are; NXDOMAIN and client errors are not."""
    if response.status not in RETRYABLE_STATUSES:
        return False
    return response.header("x-error") not in PERMANENT_ERROR_MARKERS


def _is_breaker_failure(response: Response) -> bool:
    """Does this response count against the origin's circuit breaker?

    Only origin-health signals do: transport drops, timeouts, 408/429,
    and 5xx.  A 404/403 is a *healthy* origin answering correctly, and an
    unknown origin has no server whose health is worth tracking.
    """
    if response.status == 0:
        return response.header("x-error") not in PERMANENT_ERROR_MARKERS
    return response.status in (408, 429) or response.status >= 500


class HttpClient:
    """Asynchronous client with logging, latency, limits, and retries."""

    def __init__(
        self,
        internet: Internet,
        latency: Optional[LatencyModel] = None,
        max_connections_per_origin: int = 6,
        latency_scale: float = 1.0,
        log: Optional[RequestLog] = None,
        default_headers: Optional[dict[str, str]] = None,
        cache: Optional[HttpCache] = None,
        policy: Optional[NetworkPolicy] = None,
    ) -> None:
        self._internet = internet
        self._latency = latency if latency is not None else SeededJitterLatency()
        self._latency_scale = latency_scale
        self._max_per_origin = max_connections_per_origin
        self._semaphores: dict[str, asyncio.Semaphore] = {}
        self._log = log if log is not None else RequestLog()
        self._default_headers = dict(default_headers or {})
        self._cache = cache
        self._explicit_policy = policy is not None
        self._policy = policy if policy is not None else NetworkPolicy()
        self._breakers = BreakerRegistry(
            self._policy.breaker, on_transition=self._on_breaker_transition
        )
        self._resilience = ResilienceStats()
        #: Observability hooks (see :mod:`repro.obs`): when set by the
        #: engine, ``fetch`` records per-attempt trace spans and metrics,
        #: and all timestamps (including request-log entries) come from
        #: ``tracer.clock``.  ``None`` (the default) keeps the hot path
        #: untouched beyond one identity check.
        self.tracer = None
        self.metrics = None

    @property
    def cache(self) -> Optional[HttpCache]:
        return self._cache

    @property
    def log(self) -> RequestLog:
        return self._log

    @property
    def internet(self) -> Internet:
        return self._internet

    @property
    def policy(self) -> NetworkPolicy:
        return self._policy

    @property
    def has_explicit_policy(self) -> bool:
        """Was this client constructed with its own :class:`NetworkPolicy`?

        If not, an engine adopting the client installs its own policy."""
        return self._explicit_policy

    def apply_policy(self, policy: NetworkPolicy) -> None:
        """Install ``policy``, resetting per-origin breakers to match."""
        self._policy = policy
        self._breakers = BreakerRegistry(
            policy.breaker, on_transition=self._on_breaker_transition
        )

    def _on_breaker_transition(self, origin: str, old: str, new: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(f"breaker.transitions.{old}->{new}").inc()
            self.metrics.counter(f"breaker.transitions[{origin}]").inc()

    @property
    def resilience(self) -> ResilienceStats:
        return self._resilience

    @property
    def breakers(self) -> BreakerRegistry:
        return self._breakers

    def resilience_snapshot(self) -> dict:
        """Counters + per-origin breaker trips, for per-execution deltas."""
        snapshot = self._resilience.as_dict()
        snapshot["trips_by_origin"] = self._breakers.trips_by_origin()
        return snapshot

    def _semaphore_for(self, origin: str) -> asyncio.Semaphore:
        if origin not in self._semaphores:
            self._semaphores[origin] = asyncio.Semaphore(self._max_per_origin)
        return self._semaphores[origin]

    async def fetch(
        self,
        url: str,
        method: str = "GET",
        headers: Optional[dict[str, str]] = None,
        parent_url: Optional[str] = None,
        strict: bool = False,
        trace_parent=None,
        revalidate: bool = False,
    ) -> Response:
        """Fetch a URL through the simulated Web.

        ``parent_url`` records which document's links led here (waterfall
        provenance).  In lenient mode (default) transport errors come back
        as status-0 responses; with ``strict=True`` they raise
        :class:`FetchError`.  Transient failures are retried according to
        the client's :class:`~repro.net.resilience.NetworkPolicy`; each
        attempt is logged separately.

        ``revalidate=True`` skips the cache's freshness fast-path and
        always issues a conditional request (``If-None-Match`` when an
        ETag is cached): the live-refresh path, where a still-fresh cached
        copy is exactly what must be re-checked against the origin.

        When the client's ``tracer`` is set, the call records a ``fetch``
        span (nested under ``trace_parent``) with one ``attempt`` child
        per logged request record — identical timestamps, so log and
        trace reconcile exactly — plus ``backoff`` children for retry
        sleeps; all timestamps then come from the tracer's clock.
        """
        origin, _, clean_url = split_url(url)
        tracer = self.tracer
        metrics = self.metrics
        clock = tracer.clock if tracer is not None else time.monotonic
        fetch_span = (
            tracer.begin(
                "fetch", parent=trace_parent, url=clean_url, parent_url=parent_url or ""
            )
            if tracer is not None
            else None
        )
        try:
            request_headers = dict(self._default_headers)
            request_headers.setdefault("accept", "text/turtle, application/n-triples;q=0.8")
            if headers:
                request_headers.update(headers)

            # -- cache consultation (the browser "(disk cache)" of Fig. 4) ----
            cache_entry = None
            if self._cache is not None and method == "GET":
                cache_entry = self._cache.lookup(clean_url)
                if cache_entry is not None and not revalidate and cache_entry.is_fresh():
                    self._cache.hits += 1
                    if metrics is not None:
                        metrics.counter("cache.hits").inc()
                    now = clock()
                    self._log.record(
                        method=method,
                        url=clean_url,
                        status=cache_entry.response.status,
                        started_at=now,
                        finished_at=now,
                        response_size=len(cache_entry.response.body),
                        parent_url=parent_url,
                        from_cache=True,
                    )
                    if tracer is not None:
                        tracer.add(
                            "attempt",
                            now,
                            now,
                            parent=fetch_span,
                            url=clean_url,
                            status=cache_entry.response.status,
                            attempt=1,
                            from_cache=True,
                            error="",
                            size=len(cache_entry.response.body),
                        )
                    return cache_entry.response
                if cache_entry is not None and cache_entry.etag:
                    request_headers["if-none-match"] = cache_entry.etag

            request = Request(method=method, url=clean_url, headers=request_headers)

            retry = self._policy.retry
            max_attempts = max(1, retry.max_attempts)
            breaker = self._breakers.for_origin(origin)
            attempt = 0
            started = finished = clock()
            # The breaker judges the *final* outcome of the last real attempt —
            # a request that recovers via retries proves the origin is alive,
            # so transient flakiness never trips it; only requests that stay
            # failed after the retry loop (or with retries off) count.
            last_real_response: Optional[Response] = None
            while True:
                attempt += 1
                if not breaker.allow():
                    # Fast-fail: the origin tripped its breaker; don't queue
                    # behind it, and don't retry — the dereferencer may
                    # re-queue the link for after the recovery window.
                    self._resilience.breaker_fast_fails += 1
                    if metrics is not None:
                        metrics.counter("breaker.fast_fails").inc()
                    started = finished = clock()
                    response = Response(0, {"x-error": "circuit-open"}, b"")
                    break
                self._resilience.attempts += 1
                if metrics is not None:
                    metrics.counter("http.attempts").inc()
                semaphore = self._semaphore_for(origin)
                async with semaphore:
                    started = clock()
                    try:
                        timeout = self._policy.request_timeout
                        if timeout and timeout > 0:
                            # asyncio.timeout (3.11+) instead of wait_for: it
                            # adds no extra task or scheduling point, so an
                            # in-process app that answers without awaiting
                            # keeps the exact pre-timeout interleaving.
                            async with asyncio.timeout(timeout):
                                response = await self._internet.dispatch(request)
                        else:
                            response = await self._internet.dispatch(request)
                    except asyncio.TimeoutError:
                        self._resilience.timeouts += 1
                        if metrics is not None:
                            metrics.counter("http.timeouts").inc()
                        response = Response(0, {"x-error": "timeout"}, b"")
                    except Exception as error:  # a buggy app is a 500, not a crash
                        response = Response(500, {"content-type": "text/plain"}, str(error).encode())
                    cap = self._policy.max_response_bytes
                    if cap and len(response.body) > cap:
                        # Abort the transfer *at* the cap: the oversized tail
                        # is never read, so latency is paid for at most
                        # ``cap`` bytes and no downstream layer ever holds
                        # the full body.  Permanent — see
                        # ``PERMANENT_ERROR_MARKERS``.
                        self._resilience.body_cap_aborts += 1
                        if metrics is not None:
                            metrics.counter("http.body_cap_aborts").inc()
                        response = Response(
                            0,
                            {
                                "x-error": "body-too-large",
                                "x-refused-bytes": str(len(response.body)),
                            },
                            b"",
                        )
                        delay = self._latency.latency_for(clean_url, cap)
                    else:
                        delay = self._latency.latency_for(clean_url, len(response.body))
                    if delay > 0 and self._latency_scale > 0:
                        await asyncio.sleep(delay * self._latency_scale)
                    finished = clock()
                last_real_response = response
                if metrics is not None:
                    metrics.histogram("fetch.latency_s").observe(finished - started)

                if not _is_retryable(response) or attempt >= max_attempts:
                    break
                if retry.budget and self._resilience.retries >= retry.budget:
                    self._resilience.budget_exhausted += 1
                    break

                # -- log the failed attempt, back off, go again ------------
                self._log.record(
                    method=method,
                    url=clean_url,
                    status=response.status,
                    started_at=started,
                    finished_at=finished,
                    response_size=len(response.body),
                    parent_url=parent_url,
                    error=_error_text(response) or f"HTTP {response.status}",
                    attempt=attempt,
                )
                if tracer is not None:
                    tracer.add(
                        "attempt",
                        started,
                        finished,
                        parent=fetch_span,
                        url=clean_url,
                        status=response.status,
                        attempt=attempt,
                        retried=True,
                        error=_error_text(response) or f"HTTP {response.status}",
                        size=len(response.body),
                    )
                self._resilience.retries += 1
                if metrics is not None:
                    metrics.counter("http.retries").inc()
                backoff = retry.backoff_delay(clean_url, attempt - 1)
                retry_after = response.header("retry-after")
                if retry.respect_retry_after and retry_after:
                    try:
                        backoff = max(backoff, min(float(retry_after), retry.max_retry_after))
                        self._resilience.retry_after_waits += 1
                    except ValueError:
                        pass
                if backoff > 0:
                    if tracer is not None:
                        backoff_started = clock()
                        await asyncio.sleep(backoff * self._latency_scale)
                        tracer.add(
                            "backoff",
                            backoff_started,
                            clock(),
                            parent=fetch_span,
                            attempt=attempt,
                        )
                    else:
                        await asyncio.sleep(backoff * self._latency_scale)

            if last_real_response is not None:
                # Fast-failed requests (no real attempt) carry no health signal.
                if _is_breaker_failure(last_real_response):
                    breaker.record_failure()
                else:
                    breaker.record_success()

            served_from_cache = False
            revalidated = False
            if self._cache is not None and method == "GET":
                if response.status == 304 and cache_entry is not None:
                    # Revalidated: renew and answer with the cached body.
                    cache_entry.renew(now=clock())
                    self._cache.revalidations += 1
                    if metrics is not None:
                        metrics.counter("cache.revalidations").inc()
                    response = cache_entry.response
                    served_from_cache = True
                    revalidated = True
                elif response.status == 200:
                    self._cache.misses += 1
                    self._cache.store(clean_url, response)

            error_text = _error_text(response)
            self._log.record(
                method=method,
                url=clean_url,
                status=response.status,
                started_at=started,
                finished_at=finished,
                response_size=len(response.body),
                parent_url=parent_url,
                error=error_text,
                from_cache=served_from_cache,
                attempt=attempt,
            )
            if tracer is not None:
                tracer.add(
                    "attempt",
                    started,
                    finished,
                    parent=fetch_span,
                    url=clean_url,
                    status=response.status,
                    attempt=attempt,
                    from_cache=served_from_cache,
                    revalidated=revalidated,
                    error=error_text,
                    size=len(response.body),
                )
            if strict and (response.status == 0 or response.status >= 400):
                raise FetchError(clean_url, f"HTTP {response.status}" if response.status else error_text)
            return response
        finally:
            if fetch_span is not None:
                tracer.end(fetch_span)

    async def get_text(self, url: str, strict: bool = True) -> str:
        """Convenience GET returning the body text."""
        response = await self.fetch(url, strict=strict)
        return response.text
