"""Async HTTP client over the simulated :class:`~repro.net.router.Internet`.

Reproduces the client-side behaviours that shape the paper's resource
waterfalls: a browser-like per-origin concurrency cap, simulated latency
(see :mod:`repro.net.latency`), and full request logging with parent-URL
provenance (see :mod:`repro.net.log`).  Errors never raise by default —
the LTQP engine runs ``--lenient`` against the open Web, so failures are
represented as status-0 responses the caller can skip.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional

from .cache import HttpCache
from .latency import LatencyModel, SeededJitterLatency
from .log import RequestLog
from .message import Request, Response, split_url
from .router import Internet

__all__ = ["HttpClient", "FetchError"]


class FetchError(RuntimeError):
    """Raised by :meth:`HttpClient.fetch` in strict mode on network failure."""

    def __init__(self, url: str, message: str) -> None:
        super().__init__(f"{message}: {url}")
        self.url = url


class HttpClient:
    """Asynchronous client with logging, latency, and connection limits."""

    def __init__(
        self,
        internet: Internet,
        latency: Optional[LatencyModel] = None,
        max_connections_per_origin: int = 6,
        latency_scale: float = 1.0,
        log: Optional[RequestLog] = None,
        default_headers: Optional[dict[str, str]] = None,
        cache: Optional[HttpCache] = None,
    ) -> None:
        self._internet = internet
        self._latency = latency if latency is not None else SeededJitterLatency()
        self._latency_scale = latency_scale
        self._max_per_origin = max_connections_per_origin
        self._semaphores: dict[str, asyncio.Semaphore] = {}
        self._log = log if log is not None else RequestLog()
        self._default_headers = dict(default_headers or {})
        self._cache = cache

    @property
    def cache(self) -> Optional[HttpCache]:
        return self._cache

    @property
    def log(self) -> RequestLog:
        return self._log

    @property
    def internet(self) -> Internet:
        return self._internet

    def _semaphore_for(self, origin: str) -> asyncio.Semaphore:
        if origin not in self._semaphores:
            self._semaphores[origin] = asyncio.Semaphore(self._max_per_origin)
        return self._semaphores[origin]

    async def fetch(
        self,
        url: str,
        method: str = "GET",
        headers: Optional[dict[str, str]] = None,
        parent_url: Optional[str] = None,
        strict: bool = False,
    ) -> Response:
        """Fetch a URL through the simulated Web.

        ``parent_url`` records which document's links led here (waterfall
        provenance).  In lenient mode (default) transport errors come back
        as status-0 responses; with ``strict=True`` they raise
        :class:`FetchError`.
        """
        origin, _, clean_url = split_url(url)
        request_headers = dict(self._default_headers)
        request_headers.setdefault("accept", "text/turtle, application/n-triples;q=0.8")
        if headers:
            request_headers.update(headers)

        # -- cache consultation (the browser "(disk cache)" of Fig. 4) ----
        cache_entry = None
        if self._cache is not None and method == "GET":
            cache_entry = self._cache.lookup(clean_url)
            if cache_entry is not None and cache_entry.is_fresh():
                self._cache.hits += 1
                now = time.monotonic()
                self._log.record(
                    method=method,
                    url=clean_url,
                    status=cache_entry.response.status,
                    started_at=now,
                    finished_at=now,
                    response_size=len(cache_entry.response.body),
                    parent_url=parent_url,
                    from_cache=True,
                )
                return cache_entry.response
            if cache_entry is not None and cache_entry.etag:
                request_headers["if-none-match"] = cache_entry.etag

        request = Request(method=method, url=clean_url, headers=request_headers)

        semaphore = self._semaphore_for(origin)
        async with semaphore:
            started = time.monotonic()
            try:
                response = await self._internet.dispatch(request)
            except Exception as error:  # a buggy app is a 500, not a crash
                response = Response(500, {"content-type": "text/plain"}, str(error).encode())
            delay = self._latency.latency_for(clean_url, len(response.body))
            if delay > 0 and self._latency_scale > 0:
                await asyncio.sleep(delay * self._latency_scale)
            finished = time.monotonic()

        served_from_cache = False
        if self._cache is not None and method == "GET":
            if response.status == 304 and cache_entry is not None:
                # Revalidated: renew and answer with the cached body.
                cache_entry.renew()
                self._cache.revalidations += 1
                response = cache_entry.response
                served_from_cache = True
            elif response.status == 200:
                self._cache.misses += 1
                self._cache.store(clean_url, response)

        error_text = ""
        if response.status == 0:
            error_text = "connection failed (unknown origin)"
        self._log.record(
            method=method,
            url=clean_url,
            status=response.status,
            started_at=started,
            finished_at=finished,
            response_size=len(response.body),
            parent_url=parent_url,
            error=error_text,
            from_cache=served_from_cache,
        )
        if strict and (response.status == 0 or response.status >= 400):
            raise FetchError(clean_url, f"HTTP {response.status}" if response.status else error_text)
        return response

    async def get_text(self, url: str, strict: bool = True) -> str:
        """Convenience GET returning the body text."""
        response = await self.fetch(url, strict=strict)
        return response.text
