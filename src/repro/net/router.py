"""The simulated Web: origins, apps, and routing.

An :class:`App` is anything that can answer a :class:`Request`.  The
:class:`Internet` maps origins (``https://host[:port]``) to apps; the
client resolves URLs through it.  This is the seam that lets the whole
Solid environment run in-process — or behind real sockets via
:mod:`repro.net.realserver` — without the engine knowing the difference.
"""

from __future__ import annotations

import inspect
from typing import Awaitable, Callable, Optional, Union

from .faults import FaultPlan
from .message import Request, Response

__all__ = ["App", "Internet", "StaticApp", "FunctionApp"]

HandlerResult = Union[Response, Awaitable[Response]]
Handler = Callable[[Request], HandlerResult]


class App:
    """Base class for simulated HTTP applications."""

    async def handle(self, request: Request) -> Response:
        raise NotImplementedError


class FunctionApp(App):
    """Wrap a plain (sync or async) function as an app."""

    def __init__(self, handler: Handler) -> None:
        self._handler = handler

    async def handle(self, request: Request) -> Response:
        result = self._handler(request)
        if inspect.isawaitable(result):
            return await result
        return result


class StaticApp(App):
    """Serves a fixed path→(content-type, body) mapping. Handy in tests."""

    def __init__(self) -> None:
        self._resources: dict[str, tuple[str, bytes]] = {}

    def put(self, path: str, body: Union[str, bytes], content_type: str = "text/turtle") -> None:
        data = body.encode("utf-8") if isinstance(body, str) else body
        self._resources[path] = (content_type, data)

    async def handle(self, request: Request) -> Response:
        entry = self._resources.get(request.path)
        if entry is None:
            return Response.not_found(request.url)
        content_type, body = entry
        if request.method == "HEAD":
            return Response(200, {"content-type": content_type}, b"")
        if request.method != "GET":
            return Response(405, {"content-type": "text/plain"}, b"Method not allowed")
        return Response(200, {"content-type": content_type}, body)


class Internet:
    """Registry of simulated origins.

    ``register`` binds an app to an origin.  A fallback app can be set for
    any unregistered origin (used to simulate the open Web returning 404s
    instead of DNS errors).
    """

    def __init__(self) -> None:
        self._origins: dict[str, App] = {}
        self._fallback: Optional[App] = None
        self._fault_plan: Optional["FaultPlan"] = None

    def register(self, origin: str, app: App) -> None:
        self._origins[origin.rstrip("/")] = app

    def unregister(self, origin: str) -> None:
        """Remove an origin (subsequent requests behave like NXDOMAIN).

        Lets tests deploy and retract hostile origins around a single
        universe without rebuilding it."""
        self._origins.pop(origin.rstrip("/"), None)

    def set_fallback(self, app: App) -> None:
        self._fallback = app

    def install_fault_plan(self, plan: Optional["FaultPlan"]) -> None:
        """Install (or, with ``None``, remove) a fault-injection plan.

        Faults intercept *before* origin routing, like real network
        failures: even requests to registered, healthy apps can drop,
        stall, or bounce according to the plan.
        """
        self._fault_plan = plan

    @property
    def fault_plan(self) -> Optional["FaultPlan"]:
        return self._fault_plan

    def app_for(self, origin: str) -> Optional[App]:
        app = self._origins.get(origin.rstrip("/"))
        if app is not None:
            return app
        return self._fallback

    def origins(self) -> list[str]:
        return sorted(self._origins)

    async def dispatch(self, request: Request) -> Response:
        """Route a request to its origin's app.

        An unknown origin without fallback behaves like an unresolvable
        host: the client surfaces it as a connection error (status 0),
        marked ``x-error: unknown-origin`` so retry logic can treat it as
        permanent (NXDOMAIN) rather than a transient drop.
        """
        if self._fault_plan is not None:
            return await self._fault_plan.apply(request, lambda: self._route(request))
        return await self._route(request)

    async def _route(self, request: Request) -> Response:
        app = self.app_for(request.origin)
        if app is None:
            return Response(0, {"x-error": "unknown-origin"}, b"")
        return await app.handle(request)
