"""Zero-dependency observability: structured tracing + metrics.

The engine's execution telemetry layer (see DESIGN.md §"Observability"):

* :mod:`repro.obs.trace` — :class:`Tracer` / :class:`Span` /
  :class:`TickClock`: one well-formed span tree per query execution;
* :mod:`repro.obs.metrics` — :class:`Metrics` registry of counters,
  gauges, and histograms;
* :mod:`repro.obs.export` — Chrome trace-event JSON and a text
  flamegraph summary;
* :mod:`repro.obs.analysis` — trace invariants, canonical signatures,
  and trace-derived execution stats for the test harness.

Everything is opt-in: pass ``tracer=``/``metrics=`` to
``LinkTraversalEngine.query``; without them no instrumentation code runs
beyond one ``is None`` check per site.
"""

from .analysis import (
    check_trace_invariants,
    match_requests_to_attempts,
    span_tree_signature,
    trace_execution_stats,
)
from .export import chrome_trace_events, render_trace_summary, write_chrome_trace
from .metrics import Counter, Gauge, Histogram, Metrics
from .trace import Span, TickClock, Tracer

__all__ = [
    "Span",
    "Tracer",
    "TickClock",
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_trace_summary",
    "check_trace_invariants",
    "match_requests_to_attempts",
    "span_tree_signature",
    "trace_execution_stats",
]
