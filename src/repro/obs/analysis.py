"""Trace analysis: structural invariants, tree signatures, derived stats.

Traces are testable artifacts, not just debug output.  This module holds
the checks the test harness runs against every recorded execution:

* :func:`check_trace_invariants` — the span tree is *well-formed*: every
  span closed, children contained in their parents, sibling start times
  monotone in recording order, ids consistent;
* :func:`match_requests_to_attempts` — the trace and the request log
  agree: every :class:`~repro.net.log.RequestRecord` has exactly one
  ``attempt`` span with identical url/timestamps/attempt number;
* :func:`span_tree_signature` — a timestamp-free canonical form of the
  tree, equal across runs with the same seed (determinism tests);
* :func:`trace_execution_stats` — the engine's ``ExecutionStats``
  recomputed purely from trace events, for reconciliation tests.
"""

from __future__ import annotations

from typing import Optional

from .trace import Span, Tracer

__all__ = [
    "check_trace_invariants",
    "match_requests_to_attempts",
    "span_tree_signature",
    "trace_execution_stats",
]

#: Slack for float comparisons on derived interval bounds.
_EPS = 1e-9

#: Span args that are stable across runs and identify a span structurally.
_SIGNATURE_ARGS = (
    "url",
    "attempt",
    "status",
    "via",
    "via_predicate",
    "via_pattern",
    "via_class",
    "discovered_via",
    "depth",
    "outcome",
    "refused",
    "pruned",
    "from_cache",
    "revalidated",
    "retried",
    "error",
    "format",
    "triples",
    "links",
)


def check_trace_invariants(tracer: Tracer) -> list[str]:
    """All structural violations in the trace (empty == well-formed)."""
    violations: list[str] = []
    spans = tracer.spans
    by_id: dict[int, Span] = {}

    for span in spans:
        if span.span_id in by_id:
            violations.append(f"duplicate span id {span.span_id} ({span.name})")
        by_id[span.span_id] = span
        if not span.closed:
            violations.append(f"span {span.name!r} (id {span.span_id}) never closed")
        elif span.end < span.start - _EPS:
            violations.append(
                f"span {span.name!r} (id {span.span_id}) ends before it starts"
            )
        if span.kind == "instant" and span.closed and span.end != span.start:
            violations.append(f"instant {span.name!r} (id {span.span_id}) has duration")

    def _ordering_time(span: Span) -> float:
        # Dereference spans are backdated to their link's *enqueue* time
        # (queue wait included), so under non-FIFO queue disciplines
        # (lifo/priority/fair) sibling starts legitimately run backwards.
        # Order siblings by when they actually entered service — the end
        # of the queue-wait child — which is chronological for every
        # discipline; spans without a queue-wait child are not backdated.
        for child in span.children:
            if child.name == "queue-wait":
                return child.end
        return span.start

    for parent in spans:
        previous_start: Optional[float] = None
        for child in parent.children:
            if child.parent_id != parent.span_id:
                violations.append(
                    f"child {child.name!r} (id {child.span_id}) does not point back "
                    f"to parent {parent.name!r} (id {parent.span_id})"
                )
            if child.start < parent.start - _EPS:
                violations.append(
                    f"{child.name!r} (id {child.span_id}) starts at {child.start:.6f} "
                    f"before parent {parent.name!r} at {parent.start:.6f}"
                )
            if child.closed and parent.closed and child.end > parent.end + _EPS:
                violations.append(
                    f"{child.name!r} (id {child.span_id}) ends at {child.end:.6f} "
                    f"after parent {parent.name!r} at {parent.end:.6f}"
                )
            ordering = _ordering_time(child)
            if previous_start is not None and ordering < previous_start - _EPS:
                violations.append(
                    f"sibling {child.name!r} (id {child.span_id}) under "
                    f"{parent.name!r} starts before its predecessor "
                    f"({ordering:.6f} < {previous_start:.6f})"
                )
            previous_start = ordering

    return violations


def match_requests_to_attempts(log, tracer: Tracer) -> list[str]:
    """Reconcile the request log with the trace's ``attempt`` spans.

    Every logged HTTP attempt (:class:`~repro.net.log.RequestRecord`)
    must correspond to exactly one ``attempt`` span with the same URL,
    start/finish timestamps, attempt number, and status — and vice versa.
    Returns the list of mismatches (empty == perfectly reconciled).
    """
    def record_key(record) -> tuple:
        return (record.url, record.started_at, record.finished_at, record.attempt, record.status)

    def span_key(span: Span) -> tuple:
        return (
            span.args.get("url"),
            span.start,
            span.end,
            span.args.get("attempt"),
            span.args.get("status"),
        )

    violations: list[str] = []
    remaining: dict[tuple, int] = {}
    for span in tracer.spans:
        if span.name == "attempt":
            key = span_key(span)
            remaining[key] = remaining.get(key, 0) + 1

    for record in log.records:
        key = record_key(record)
        count = remaining.get(key, 0)
        if count <= 0:
            violations.append(f"request {key} has no matching attempt span")
        else:
            remaining[key] = count - 1

    for key, count in remaining.items():
        if count > 0:
            violations.append(f"attempt span {key} has no matching request record ×{count}")
    return violations


def _signature(span: Span) -> tuple:
    args = tuple(
        (name, span.args[name]) for name in _SIGNATURE_ARGS if name in span.args
    )
    children = tuple(sorted(_signature(child) for child in span.children))
    return (span.name, span.kind, args, children)


def span_tree_signature(tracer: Tracer) -> tuple:
    """A canonical, timestamp-free form of the span tree.

    Children are sorted (not kept in recording order) so the signature is
    invariant under benign async interleavings — two runs with the same
    seed must produce equal signatures even if workers were scheduled in
    a different order.
    """
    return tuple(sorted(_signature(root) for root in tracer.roots))


def trace_execution_stats(tracer: Tracer) -> dict:
    """``ExecutionStats``-equivalent counters recomputed from the trace.

    Used by reconciliation tests: each value here must equal the
    corresponding field the engine accumulated through its own counters.

    Live (standing-query) executions add the maintenance books: every
    :meth:`~repro.ltqp.live.LiveQuery.refresh` leaves one ``refresh``
    span (outcome ``changed``/``unchanged``/``failed`` plus the diff
    sizes) and each signed maintenance batch leaves an ``apply-batch``
    span, so the counters here must reconcile with the standing query's
    event history and ``failed_refreshes`` map.
    """
    documents_fetched = 0
    documents_failed = 0
    documents_retried = 0
    documents_abandoned = 0
    documents_refused = 0
    refusals_by_kind: dict[str, int] = {}
    http_retries = 0
    http_timeouts = 0
    breaker_fast_fails = 0
    refreshes = 0
    refreshes_changed = 0
    refreshes_unchanged = 0
    refreshes_failed = 0
    diff_added = 0
    diff_removed = 0
    apply_batches = 0
    retraction_batches = 0
    maintenance_changes = 0
    first_result_ts: Optional[float] = None
    query_start: Optional[float] = None

    for span in tracer.spans:
        if span.name == "refresh":
            refreshes += 1
            outcome = span.args.get("outcome")
            if outcome == "changed":
                refreshes_changed += 1
                diff_added += span.args.get("added", 0)
                diff_removed += span.args.get("removed", 0)
            elif outcome == "unchanged":
                refreshes_unchanged += 1
            elif outcome == "failed":
                refreshes_failed += 1
        elif span.name == "apply-batch":
            apply_batches += 1
            if span.args.get("sign", 1) < 0:
                retraction_batches += 1
            maintenance_changes += span.args.get("changes", 0)
        elif span.name == "dereference":
            outcome = span.args.get("outcome")
            if outcome == "ok":
                documents_fetched += 1
            elif outcome == "refused":
                # A budget refusal is deliberate, not a failure.
                documents_refused += 1
                kind = span.args.get("refused") or "unknown"
                refusals_by_kind[kind] = refusals_by_kind.get(kind, 0) + 1
            else:
                documents_failed += 1
                if outcome == "retried":
                    documents_retried += 1
                elif outcome == "abandoned":
                    documents_abandoned += 1
        elif span.name == "attempt":
            if span.args.get("retried"):
                http_retries += 1
            error = span.args.get("error") or ""
            if error == "request timed out":
                http_timeouts += 1
            elif error == "circuit breaker open":
                breaker_fast_fails += 1
        elif span.name == "first-result" and first_result_ts is None:
            first_result_ts = span.start
        elif span.name == "query" and query_start is None:
            query_start = span.start

    time_to_first_result = None
    if first_result_ts is not None and query_start is not None:
        time_to_first_result = first_result_ts - query_start

    return {
        "documents_fetched": documents_fetched,
        "documents_failed": documents_failed,
        "documents_retried": documents_retried,
        "documents_abandoned": documents_abandoned,
        "documents_refused": documents_refused,
        "refusals_by_kind": dict(sorted(refusals_by_kind.items())),
        "http_retries": http_retries,
        "http_timeouts": http_timeouts,
        "breaker_fast_fails": breaker_fast_fails,
        "time_to_first_result": time_to_first_result,
        "refreshes": refreshes,
        "refreshes_changed": refreshes_changed,
        "refreshes_unchanged": refreshes_unchanged,
        "refreshes_failed": refreshes_failed,
        "diff_added": diff_added,
        "diff_removed": diff_removed,
        "apply_batches": apply_batches,
        "retraction_batches": retraction_batches,
        "maintenance_changes": maintenance_changes,
    }
