"""Structured execution tracing: a well-formed span tree per query run.

The paper's whole argument is made visually — link-queue evolution plots,
HTTP waterfalls, time-to-first-result annotations (Figs. 2-5) — so the
engine needs first-class execution telemetry rather than ad-hoc log
scraping.  A :class:`Tracer` records :class:`Span` objects forming one
tree per traced execution:

``query``
    └─ ``plan``                     (pipeline compilation)
    └─ ``traversal``
        └─ ``dereference``          (one per document, on a worker track)
            ├─ ``queue-wait``       (enqueue → pop)
            ├─ ``fetch``            (client call, incl. backoffs)
            │   ├─ ``attempt``      (one per logged HTTP attempt)
            │   └─ ``backoff``      (retry sleeps)
            ├─ ``parse``
            └─ ``extract``
    └─ ``advance-batch``            (one per pipeline advance)
        └─ ``join``                 (per join operator, nested)
    plus instant markers: ``first-result``, ``replan``.

Design constraints:

* **Zero overhead when disabled.**  Instrumentation points hold a tracer
  reference that is ``None`` by default and guard with a single identity
  check; no tracer object ever exists on untraced executions.
* **Deterministic under an injected clock.**  Every timestamp comes from
  ``tracer.clock`` (default :func:`time.monotonic`); installing a
  :class:`TickClock` makes traces byte-stable artifacts for golden tests.
* **Async-safe parenting.**  Concurrent tasks pass parents explicitly
  (``begin``/``end``/``add``); synchronous pipeline code may instead use
  the :meth:`Tracer.span` context manager, which maintains a stack.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

__all__ = ["Span", "Tracer", "TickClock"]

_UNSET = object()


class Span:
    """One timed node of the trace tree.

    ``end`` is ``None`` while the span is open.  ``kind`` is ``"span"``
    for intervals and ``"instant"`` for zero-duration markers.  ``track``
    is the logical timeline lane (worker index) used by exporters.
    """

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "track", "kind", "args", "children")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        track: int = 0,
        kind: str = "span",
        args: Optional[dict] = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: Optional[float] = None
        self.track = track
        self.kind = kind
        self.args: dict = args if args is not None else {}
        self.children: list["Span"] = []

    @property
    def closed(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds covered; 0.0 while the span is still open."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        state = f"{self.duration * 1000:.2f}ms" if self.closed else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class TickClock:
    """A deterministic clock: every call advances time by a fixed step.

    Installing one on a :class:`Tracer` (and therefore, through the
    engine, on the link queue and HTTP client) makes all recorded
    timestamps a pure function of the *sequence* of events — so a
    deterministic execution produces a byte-identical trace, suitable for
    golden-output tests.
    """

    __slots__ = ("now", "step")

    def __init__(self, step: float = 0.001, start: float = 0.0) -> None:
        self.now = start
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class Tracer:
    """Records spans for one (or more) query executions.

    Spans are kept in creation order (``spans``); the tree is reachable
    from ``roots``.  All timestamps come from :attr:`clock`.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self._spans: list[Span] = []
        self._roots: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    @property
    def clock(self) -> Callable[[], float]:
        return self._clock

    @property
    def spans(self) -> list[Span]:
        """All spans in creation order."""
        return list(self._spans)

    @property
    def roots(self) -> list[Span]:
        return list(self._roots)

    def __len__(self) -> int:
        return len(self._spans)

    def open_spans(self) -> list[Span]:
        return [span for span in self._spans if not span.closed]

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    def _attach(self, span: Span, parent: Optional[Span]) -> Span:
        self._spans.append(span)
        if parent is not None:
            parent.children.append(span)
        else:
            self._roots.append(span)
        return span

    def begin(
        self,
        name: str,
        parent: Optional[Span] = None,
        start: Optional[float] = None,
        track: Optional[int] = None,
        **args,
    ) -> Span:
        """Open a span (explicit-parent form, safe across async tasks)."""
        if start is None:
            start = self._clock()
        if track is None:
            track = parent.track if parent is not None else 0
        span = Span(
            name,
            self._next_id,
            parent.span_id if parent is not None else None,
            start,
            track=track,
            args=args,
        )
        self._next_id += 1
        return self._attach(span, parent)

    def end(self, span: Span, end: Optional[float] = None, **args) -> Span:
        """Close a span (idempotent: a closed span keeps its first end)."""
        if args:
            span.args.update(args)
        if span.end is None:
            span.end = end if end is not None else self._clock()
        return span

    def add(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[Span] = None,
        track: Optional[int] = None,
        **args,
    ) -> Span:
        """Record a retroactive, already-closed span with explicit times."""
        span = self.begin(name, parent=parent, start=start, track=track, **args)
        span.end = end
        return span

    def instant(
        self,
        name: str,
        parent: Optional[Span] = None,
        ts: Optional[float] = None,
        **args,
    ) -> Span:
        """Record a zero-duration marker event (e.g. ``first-result``)."""
        if ts is None:
            ts = self._clock()
        span = self.begin(name, parent=parent, start=ts, **args)
        span.end = ts
        span.kind = "instant"
        return span

    @contextmanager
    def span(self, name: str, parent=_UNSET, track: Optional[int] = None, **args) -> Iterator[Span]:
        """Context-manager span for synchronous code; nests via a stack.

        Without an explicit ``parent``, the innermost open context-manager
        span becomes the parent — so pipeline operators nest under their
        ``advance-batch`` span without threading references around.
        """
        if parent is _UNSET:
            resolved = self._stack[-1] if self._stack else None
        else:
            resolved = parent
        entry = self.begin(name, parent=resolved, track=track, **args)
        self._stack.append(entry)
        try:
            yield entry
        finally:
            self._stack.pop()
            self.end(entry)

    def close_open_spans(self, end: Optional[float] = None) -> int:
        """Force-close any spans left open (e.g. after cancellation)."""
        open_spans = self.open_spans()
        if not open_spans:
            return 0
        if end is None:
            end = self._clock()
        for span in open_spans:
            span.end = end
        return len(open_spans)
