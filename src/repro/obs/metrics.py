"""A zero-dependency metrics registry: counters, gauges, histograms.

Complements :mod:`repro.obs.trace`: spans answer *when and where time
went inside one execution*; metrics answer *how much, how often, and how
distributed* — queue depth over time, fetch latency distribution,
triples/s, breaker state transitions.  Like the tracer, the registry is
opt-in: instrumentation points hold a ``metrics`` reference that is
``None`` by default and guard with one identity check.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["Counter", "Gauge", "Histogram", "Metrics"]

#: Default histogram buckets, tuned for sub-second latencies (seconds).
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that goes up and down; remembers its observed extremes."""

    __slots__ = ("name", "value", "min", "max", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.samples = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)

    def as_dict(self) -> dict:
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "samples": self.samples,
        }


class Histogram:
    """Fixed-bucket histogram with count/sum (Prometheus-style semantics).

    ``buckets[i]`` counts observations ``<= bounds[i]``; an implicit
    overflow bucket counts the rest.
    """

    __slots__ = ("name", "bounds", "buckets", "overflow", "count", "sum", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        self.buckets = [0] * len(self.bounds)
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket bounds (upper-bound estimate)."""
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0
        for i, bound in enumerate(self.bounds):
            running += self.buckets[i]
            if running >= target:
                return bound
        return self.max if self.max is not None else self.bounds[-1]

    def as_dict(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "buckets": dict(zip((str(b) for b in self.bounds), self.buckets)),
            "overflow": self.overflow,
        }


class Metrics:
    """Named registry of counters, gauges, and histograms.

    Instruments are created on first use (``metrics.counter("http.retries")``)
    so call sites need no setup, and a name always maps to one instrument.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Counter(name)
        return instrument  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Gauge(name)
        return instrument  # type: ignore[return-value]

    def histogram(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = Histogram(name, bounds)
        return instrument  # type: ignore[return-value]

    def get(self, name: str):
        return self._instruments.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    def as_dict(self) -> dict:
        """All instruments, sorted by name — a stable JSON-able snapshot."""
        return {
            name: self._instruments[name].as_dict()  # type: ignore[attr-defined]
            for name in sorted(self._instruments)
        }

    def render(self) -> str:
        """Plain-text summary table (``--metrics`` CLI output)."""
        lines = [f"{'metric':<36}{'value':>14}  detail"]
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                lines.append(f"{name:<36}{instrument.value:>14,.0f}  counter")
            elif isinstance(instrument, Gauge):
                detail = f"gauge min={instrument.min} max={instrument.max}"
                lines.append(f"{name:<36}{instrument.value:>14,.1f}  {detail}")
            elif isinstance(instrument, Histogram):
                detail = (
                    f"histogram n={instrument.count} mean={instrument.mean:.4f}"
                    f" p95={instrument.quantile(0.95):.4f}"
                )
                lines.append(f"{name:<36}{instrument.sum:>14,.3f}  {detail}")
        return "\n".join(lines)
