"""Trace exporters: Chrome trace-event JSON and a flamegraph-style text summary.

Two renderings of the same span tree:

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the Chrome
  trace-event format (``chrome://tracing`` / https://ui.perfetto.dev):
  complete events (``ph: "X"``) per span, instant events (``ph: "i"``)
  for markers, one ``tid`` per worker track.  Timestamps are microseconds
  relative to the earliest span, so traces from the deterministic
  :class:`~repro.obs.trace.TickClock` are byte-stable.
* :func:`render_trace_summary` — a terminal flamegraph: the span tree
  indented by depth with inclusive/self times and per-name aggregate
  rollups, for ``--trace-summary`` and quick bench inspection.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

from .trace import Span, Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace", "render_trace_summary"]

#: Track (``tid``) names shown by the Chrome trace viewer.
_MAIN_TRACK = 0


def _micros(ts: float, epoch: float) -> int:
    return round((ts - epoch) * 1_000_000)


def _json_safe(args: dict) -> dict:
    safe = {}
    for key, value in args.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            safe[key] = value
        else:
            safe[key] = str(value)
    return safe


def chrome_trace_events(tracer: Tracer, process_name: str = "repro-ltqp") -> list[dict]:
    """The tracer's spans as a Chrome trace-event list (JSON-able).

    Open spans are skipped (a finished execution closes everything).
    """
    spans = [span for span in tracer.spans if span.closed]
    if not spans:
        return []
    epoch = min(span.start for span in spans)

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": _MAIN_TRACK,
            "args": {"name": "engine"},
        },
    ]
    tracks = sorted({span.track for span in spans if span.track != _MAIN_TRACK})
    for track in tracks:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": track,
                "args": {"name": f"worker-{track}"},
            }
        )

    for span in spans:
        args = _json_safe(span.args)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        if span.kind == "instant":
            events.append(
                {
                    "name": span.name,
                    "ph": "i",
                    "s": "p",
                    "pid": 1,
                    "tid": span.track,
                    "ts": _micros(span.start, epoch),
                    "args": args,
                }
            )
        else:
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "pid": 1,
                    "tid": span.track,
                    "ts": _micros(span.start, epoch),
                    "dur": _micros(span.end, epoch) - _micros(span.start, epoch),
                    "args": args,
                }
            )
    return events


def write_chrome_trace(tracer: Tracer, path: str, process_name: str = "repro-ltqp") -> int:
    """Write ``{"traceEvents": [...]}`` to ``path``; returns the event count."""
    events = chrome_trace_events(tracer, process_name=process_name)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return len(events)


def _self_time(span: Span) -> float:
    child_time = sum(child.duration for child in span.children if child.kind != "instant")
    return max(0.0, span.duration - child_time)


def _render_span(span: Span, depth: int, total: float, lines: list[str], max_children: int) -> None:
    if span.kind == "instant":
        lines.append(f"{'  ' * depth}· {span.name} @ {span.start * 1000:.2f}ms")
        return
    share = span.duration / total if total else 0.0
    label = span.args.get("url") or span.args.get("query") or ""
    label = f"  {label}" if label else ""
    lines.append(
        f"{'  ' * depth}{span.name:<{max(1, 24 - 2 * depth)}}"
        f"{span.duration * 1000:>10.2f}ms{share:>7.1%}"
        f"  self {_self_time(span) * 1000:.2f}ms{label}"
    )
    children = span.children
    shown = children[:max_children]
    for child in shown:
        _render_span(child, depth + 1, total, lines, max_children)
    if len(children) > len(shown):
        lines.append(f"{'  ' * (depth + 1)}… {len(children) - len(shown)} more")


def _aggregate(spans: Iterable[Span]) -> list[tuple[str, int, float, float]]:
    rollup: dict[str, list[float]] = {}
    for span in spans:
        if span.kind == "instant" or not span.closed:
            continue
        entry = rollup.setdefault(span.name, [0, 0.0, 0.0])
        entry[0] += 1
        entry[1] += span.duration
        entry[2] += _self_time(span)
    return sorted(
        ((name, int(e[0]), e[1], e[2]) for name, e in rollup.items()),
        key=lambda row: -row[3],
    )


def render_trace_summary(tracer: Tracer, max_children: int = 8) -> str:
    """Flamegraph-style text: indented tree + per-name self-time rollup."""
    roots = [span for span in tracer.roots if span.closed]
    if not roots:
        return "(empty trace)"
    total = sum(span.duration for span in roots if span.kind != "instant")

    lines = [f"{'span':<24}{'incl':>12}{'share':>7}"]
    for root in roots:
        _render_span(root, 0, total, lines, max_children)

    lines.append("")
    lines.append(f"{'by span name':<24}{'count':>8}{'incl_ms':>14}{'self_ms':>14}")
    for name, count, incl, self_t in _aggregate(tracer.spans):
        lines.append(
            f"{name:<24}{count:>8}{incl * 1000:>14,.2f}{self_t * 1000:>14,.2f}"
        )
    return "\n".join(lines)
