"""Snapshot SPARQL evaluator.

Evaluates an algebra tree over an immutable snapshot of data — a
:class:`repro.rdf.dataset.Graph` or a :class:`repro.rdf.dataset.Dataset`
(the latter enables ``GRAPH`` patterns over per-document named graphs).

This evaluator plays three roles in the reproduction:

* the *oracle* for LTQP completeness tests (evaluate over the union of all
  generated documents) — including the equivalence property suite that
  checks the incremental pipeline against it;
* a library of building blocks reused by the unified incremental pipeline
  (:mod:`repro.ltqp.pipeline`): ``EXISTS`` evaluation for
  ``ExistsFilterNode``, sort keys for ``OrderSliceNode``, the aggregate
  machinery in :mod:`repro.sparql.aggregates` for ``GroupAggregateNode``;
* a standalone local query engine over any parsed RDF document (and the
  federation/update endpoints).

Generator-based: every operator yields :class:`Binding` solutions lazily.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Union as TypingUnion

from ..rdf.dataset import Dataset, Graph
from ..rdf.terms import BlankNode, Literal, NamedNode, Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .algebra import (
    AggregateExpr,
    And,
    Arithmetic,
    BGP,
    Compare,
    Distinct,
    ExistsExpr,
    Expression,
    Extend,
    Filter,
    FunctionCall,
    GraphOp,
    GroupBy,
    InExpr,
    Join,
    LeftJoin,
    Minus,
    Not,
    Operator,
    OrderBy,
    PathPattern,
    Project,
    Query,
    Reduced,
    Slice,
    SubSelect,
    TermExpr,
    UnaryMinus,
    UnaryPlus,
    Union,
    ValuesOp,
    VariableExpr,
)
from .bindings import EMPTY_BINDING, Binding
from .expr import DescendingKey, ExpressionError, ExpressionEvaluator, order_key
from .aggregates import compute_aggregates, evaluate_having, group_solutions
from .paths import evaluate_path
from .planner import plan_bgp_order

__all__ = [
    "SnapshotEvaluator",
    "evaluate_query",
    "construct_triples",
    "order_sort_key",
    "substitute_operator",
]


class SnapshotEvaluator:
    """Evaluate SPARQL algebra over a fixed :class:`Graph` or :class:`Dataset`."""

    def __init__(
        self,
        data: TypingUnion[Graph, Dataset],
        seed_iris: Iterable[str] = (),
    ) -> None:
        if isinstance(data, Dataset):
            self._dataset: Optional[Dataset] = data
            self._graph = data.union
        else:
            self._dataset = None
            self._graph = data
        self._seed_iris = tuple(seed_iris)
        self._expressions = ExpressionEvaluator(exists_evaluator=self.exists)

    @property
    def expressions(self) -> ExpressionEvaluator:
        """The expression evaluator wired to this snapshot's EXISTS scope."""
        return self._expressions

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def evaluate(self, op: Operator, graph: Optional[Graph] = None) -> Iterator[Binding]:
        """Evaluate an operator tree, yielding solution mappings."""
        return self._eval(op, self._graph if graph is None else graph)

    def ask(self, query: Query) -> bool:
        """Evaluate an ASK query."""
        for _ in self.evaluate(query.where):
            return True
        return False

    def select(self, query: Query) -> Iterator[Binding]:
        """Evaluate a SELECT query."""
        return self.evaluate(query.where)

    def describe(self, query: Query) -> Iterator[Triple]:
        """Evaluate a DESCRIBE query: the concise bounded description (CBD)
        of each target resource — its outgoing triples, recursing through
        blank-node objects."""
        resources: set[Term] = set()
        variables = [t for t in query.describe_targets if isinstance(t, Variable)]
        constants = [t for t in query.describe_targets if not isinstance(t, Variable)]
        resources.update(constants)
        needs_where = bool(variables) or not query.describe_targets
        if needs_where:
            from .algebra import operator_variables

            in_scope = variables if variables else sorted(
                operator_variables(query.where), key=lambda v: v.value
            )
            for binding in self.evaluate(query.where):
                for variable in in_scope:
                    term = binding.get(variable)
                    if term is not None and not isinstance(term, Literal):
                        resources.add(term)
        emitted: set[Triple] = set()
        for resource in sorted(resources, key=str):
            yield from self._cbd(resource, emitted)

    def _cbd(self, resource: Term, emitted: set[Triple]) -> Iterator[Triple]:
        frontier = [resource]
        visited: set[Term] = set()
        while frontier:
            node = frontier.pop()
            if node in visited:
                continue
            visited.add(node)
            for triple in self._graph.match(node, None, None):
                if triple not in emitted:
                    emitted.add(triple)
                    yield triple
                if isinstance(triple.object, BlankNode):
                    frontier.append(triple.object)

    def construct(self, query: Query) -> Iterator[Triple]:
        """Evaluate a CONSTRUCT query, instantiating the template."""
        emitted: set[Triple] = set()
        for index, binding in enumerate(self.evaluate(query.where)):
            for triple in construct_triples(query.construct_template, binding, index):
                if triple not in emitted:
                    emitted.add(triple)
                    yield triple

    # ------------------------------------------------------------------
    # operator dispatch
    # ------------------------------------------------------------------

    def _eval(self, op: Operator, graph: Graph) -> Iterator[Binding]:
        if isinstance(op, BGP):
            return self._eval_bgp(op, graph)
        if isinstance(op, Join):
            return self._eval_join(op, graph)
        if isinstance(op, LeftJoin):
            return self._eval_left_join(op, graph)
        if isinstance(op, Union):
            return self._eval_union(op, graph)
        if isinstance(op, Minus):
            return self._eval_minus(op, graph)
        if isinstance(op, Filter):
            return self._eval_filter(op, graph)
        if isinstance(op, Extend):
            return self._eval_extend(op, graph)
        if isinstance(op, GraphOp):
            return self._eval_graph(op)
        if isinstance(op, ValuesOp):
            return self._eval_values(op)
        if isinstance(op, Project):
            return self._eval_project(op, graph)
        if isinstance(op, Distinct):
            return self._eval_distinct(op, graph)
        if isinstance(op, Reduced):
            return self._eval_reduced(op, graph)
        if isinstance(op, Slice):
            return self._eval_slice(op, graph)
        if isinstance(op, OrderBy):
            return self._eval_order(op, graph)
        if isinstance(op, GroupBy):
            return self._eval_group(op, graph)
        if isinstance(op, SubSelect):
            return self._eval(op.query.where, graph)
        raise TypeError(f"unknown operator: {op!r}")

    # ------------------------------------------------------------------
    # leaves
    # ------------------------------------------------------------------

    def _eval_bgp(self, op: BGP, graph: Graph) -> Iterator[Binding]:
        patterns = plan_bgp_order(
            list(op.patterns) + list(op.path_patterns), seed_iris=self._seed_iris
        )
        if not patterns:
            yield EMPTY_BINDING
            return
        yield from self._join_patterns(patterns, 0, EMPTY_BINDING, graph)

    def _join_patterns(
        self,
        patterns: list,
        index: int,
        binding: Binding,
        graph: Graph,
    ) -> Iterator[Binding]:
        if index == len(patterns):
            yield binding
            return
        pattern = patterns[index]
        if isinstance(pattern, PathPattern):
            candidates = self._match_path_pattern(pattern, binding, graph)
        else:
            candidates = self._match_triple_pattern(pattern, binding, graph)
        for extended in candidates:
            yield from self._join_patterns(patterns, index + 1, extended, graph)

    def _match_triple_pattern(
        self, pattern: TriplePattern, binding: Binding, graph: Graph
    ) -> Iterator[Binding]:
        subject = _substitute(pattern.subject, binding)
        predicate = _substitute(pattern.predicate, binding)
        object_term = _substitute(pattern.object, binding)
        for triple in graph.match(subject, predicate, object_term):
            extended = _extend_with_triple(binding, pattern, triple)
            if extended is not None:
                yield extended

    def _match_path_pattern(
        self, pattern: PathPattern, binding: Binding, graph: Graph
    ) -> Iterator[Binding]:
        subject = _substitute(pattern.subject, binding)
        object_term = _substitute(pattern.object, binding)
        for start, end in evaluate_path(graph, subject, pattern.path, object_term):
            extended = binding
            if isinstance(pattern.subject, Variable):
                bound = extended.get(pattern.subject)
                if bound is not None and bound != start:
                    continue
                extended = extended.extended(pattern.subject, start)
            if isinstance(pattern.object, Variable):
                bound = extended.get(pattern.object)
                if bound is not None and bound != end:
                    continue
                extended = extended.extended(pattern.object, end)
            yield extended

    # ------------------------------------------------------------------
    # binary operators
    # ------------------------------------------------------------------

    def _eval_join(self, op: Join, graph: Graph) -> Iterator[Binding]:
        # Hash join on shared variables; falls back to cross product.
        left_solutions = list(self._eval(op.left, graph))
        if not left_solutions:
            return
        from .algebra import operator_variables

        shared = tuple(
            sorted(
                (operator_variables(op.left) & operator_variables(op.right)),
                key=lambda v: v.value,
            )
        )
        if not shared:
            for right_binding in self._eval(op.right, graph):
                for left_binding in left_solutions:
                    merged = left_binding.merged(right_binding)
                    if merged is not None:
                        yield merged
            return
        table: dict[tuple, list[Binding]] = {}
        for left_binding in left_solutions:
            table.setdefault(left_binding.key(shared), []).append(left_binding)
        for right_binding in self._eval(op.right, graph):
            # Unbound shared vars on either side require compatibility checks;
            # enumerate candidate keys (exact, plus all-unbound probe).
            key = right_binding.key(shared)
            candidates = table.get(key, [])
            for left_binding in candidates:
                merged = left_binding.merged(right_binding)
                if merged is not None:
                    yield merged
            if any(k is None for k in key):
                # Right side leaves some shared variable unbound: probe all.
                for bucket_key, bucket in table.items():
                    if bucket_key == key:
                        continue
                    if _keys_compatible(bucket_key, key):
                        for left_binding in bucket:
                            merged = left_binding.merged(right_binding)
                            if merged is not None:
                                yield merged

    def _eval_left_join(self, op: LeftJoin, graph: Graph) -> Iterator[Binding]:
        right_solutions = list(self._eval(op.right, graph))
        for left_binding in self._eval(op.left, graph):
            matched = False
            for right_binding in right_solutions:
                merged = left_binding.merged(right_binding)
                if merged is None:
                    continue
                if op.expression is not None and not self._expressions.satisfied(
                    op.expression, merged
                ):
                    continue
                matched = True
                yield merged
            if not matched:
                yield left_binding

    def _eval_union(self, op: Union, graph: Graph) -> Iterator[Binding]:
        yield from self._eval(op.left, graph)
        yield from self._eval(op.right, graph)

    def _eval_minus(self, op: Minus, graph: Graph) -> Iterator[Binding]:
        right_solutions = list(self._eval(op.right, graph))
        for left_binding in self._eval(op.left, graph):
            excluded = False
            for right_binding in right_solutions:
                shared = set(left_binding) & set(right_binding)
                if not shared:
                    continue
                if left_binding.compatible(right_binding):
                    excluded = True
                    break
            if not excluded:
                yield left_binding

    # ------------------------------------------------------------------
    # unary operators
    # ------------------------------------------------------------------

    def _eval_filter(self, op: Filter, graph: Graph) -> Iterator[Binding]:
        for binding in self._eval(op.input, graph):
            if self._expressions.satisfied(op.expression, binding):
                yield binding

    def _eval_extend(self, op: Extend, graph: Graph) -> Iterator[Binding]:
        for binding in self._eval(op.input, graph):
            try:
                value = self._expressions.evaluate(op.expression, binding)
            except ExpressionError:
                yield binding  # BIND error leaves the variable unbound
                continue
            if op.variable in binding:
                # Re-binding an existing variable is a query error; keep the
                # solution only when values agree.
                if binding[op.variable] == value:
                    yield binding
                continue
            yield binding.extended(op.variable, value)

    def _eval_graph(self, op: GraphOp) -> Iterator[Binding]:
        if self._dataset is None:
            raise ValueError("GRAPH patterns require a Dataset, not a bare Graph")
        if isinstance(op.name, Variable):
            for name in list(self._dataset.graph_names()):
                if name is None:
                    continue
                named_graph = self._dataset.graph(name)
                for binding in self._eval(op.input, named_graph):
                    if op.name in binding:
                        if binding[op.name] == name:
                            yield binding
                    else:
                        yield binding.extended(op.name, name)
        else:
            if not isinstance(op.name, NamedNode):
                raise ValueError("GRAPH name must be an IRI or variable")
            if not self._dataset.has_graph(op.name):
                return
            yield from self._eval(op.input, self._dataset.graph(op.name))

    def _eval_values(self, op: ValuesOp) -> Iterator[Binding]:
        for row in op.rows:
            items = {
                variable: term
                for variable, term in zip(op.variables, row)
                if term is not None
            }
            yield Binding(items)

    def _eval_project(self, op: Project, graph: Graph) -> Iterator[Binding]:
        for binding in self._eval(op.input, graph):
            yield binding.projected(op.variables)

    def _eval_distinct(self, op: Distinct, graph: Graph) -> Iterator[Binding]:
        seen: set[Binding] = set()
        for binding in self._eval(op.input, graph):
            if binding not in seen:
                seen.add(binding)
                yield binding

    def _eval_reduced(self, op: Reduced, graph: Graph) -> Iterator[Binding]:
        # REDUCED permits but does not require deduplication; dedupe
        # adjacent duplicates, the cheap half-measure.
        previous: Optional[Binding] = None
        for binding in self._eval(op.input, graph):
            if binding != previous:
                yield binding
            previous = binding

    def _eval_slice(self, op: Slice, graph: Graph) -> Iterator[Binding]:
        produced = 0
        skipped = 0
        for binding in self._eval(op.input, graph):
            if skipped < op.offset:
                skipped += 1
                continue
            if op.limit is not None and produced >= op.limit:
                return
            produced += 1
            yield binding

    def _eval_order(self, op: OrderBy, graph: Graph) -> Iterator[Binding]:
        solutions = list(self._eval(op.input, graph))
        solutions.sort(key=lambda b: order_sort_key(op.conditions, b, self._expressions))
        return iter(solutions)

    def _eval_group(self, op: GroupBy, graph: Graph) -> Iterator[Binding]:
        solutions = list(self._eval(op.input, graph))
        groups = group_solutions(solutions, op.keys, self._expressions)
        for key_binding, members in groups:
            result = compute_aggregates(key_binding, members, op.bindings, self._expressions)
            if result is None:
                continue
            keep = True
            for having in op.having:
                if not evaluate_having(having, members, result, self._expressions):
                    keep = False
                    break
            if keep:
                yield result

    # ------------------------------------------------------------------

    def exists(self, pattern: Operator, binding: Binding) -> bool:
        """Does the (substituted) pattern have any solution in this snapshot?

        Public because the incremental pipeline's ``ExistsFilterNode``
        evaluates ``EXISTS`` through a snapshot evaluator over the current
        (growing) dataset.
        """
        substituted = substitute_operator(pattern, binding)
        for _ in self._eval(substituted, self._graph):
            return True
        return False


def order_sort_key(
    conditions, binding: Binding, expressions: ExpressionEvaluator
) -> tuple:
    """The composite ORDER BY sort key for one solution.

    Expression errors order as unbound; ``DESC`` conditions wrap their key
    in :class:`~repro.sparql.expr.DescendingKey`.  Shared by the snapshot
    evaluator's sort and the pipeline's ``OrderSliceNode`` so both produce
    the same ordering.
    """
    keys = []
    for condition in conditions:
        try:
            term = expressions.evaluate(condition.expression, binding)
        except ExpressionError:
            term = None
        key = order_key(term)
        keys.append(DescendingKey(key) if condition.descending else key)
    return tuple(keys)


def _substitute(term: Optional[Term], binding: Binding) -> Optional[Term]:
    if isinstance(term, Variable):
        return binding.get(term)
    return term


def _extend_with_triple(
    binding: Binding, pattern: TriplePattern, triple: Triple
) -> Optional[Binding]:
    items: Optional[dict] = None
    for pattern_term, data_term in zip(pattern, triple):
        if isinstance(pattern_term, Variable):
            bound = binding.get(pattern_term)
            if bound is None and items is not None:
                bound = items.get(pattern_term)
            if bound is None:
                if items is None:
                    items = dict(binding)
                items[pattern_term] = data_term
            elif bound != data_term:
                return None
    if items is None:
        return binding
    return Binding(items)


def _keys_compatible(left: tuple, right: tuple) -> bool:
    for a, b in zip(left, right):
        if a is not None and b is not None and a != b:
            return False
    return True


def substitute_operator(op: Operator, binding: Binding) -> Operator:
    """Inject bound variable values into a pattern (for EXISTS)."""
    if isinstance(op, BGP):
        new_patterns = tuple(
            TriplePattern(
                _substitute(p.subject, binding) if isinstance(p.subject, Variable) and p.subject in binding else p.subject,
                _substitute(p.predicate, binding) if isinstance(p.predicate, Variable) and p.predicate in binding else p.predicate,
                _substitute(p.object, binding) if isinstance(p.object, Variable) and p.object in binding else p.object,
            )
            for p in op.patterns
        )
        new_paths = tuple(
            PathPattern(
                binding.get(p.subject, p.subject) if isinstance(p.subject, Variable) else p.subject,
                p.path,
                binding.get(p.object, p.object) if isinstance(p.object, Variable) else p.object,
            )
            for p in op.path_patterns
        )
        return BGP(new_patterns, new_paths)
    if isinstance(op, Join):
        return Join(substitute_operator(op.left, binding), substitute_operator(op.right, binding))
    if isinstance(op, Union):
        return Union(substitute_operator(op.left, binding), substitute_operator(op.right, binding))
    if isinstance(op, Filter):
        return Filter(op.expression, substitute_operator(op.input, binding))
    if isinstance(op, LeftJoin):
        return LeftJoin(
            substitute_operator(op.left, binding),
            substitute_operator(op.right, binding),
            op.expression,
        )
    return op


def construct_triples(
    template: tuple[TriplePattern, ...], binding: Binding, solution_index: int
) -> Iterator[Triple]:
    """Instantiate a CONSTRUCT template for one solution.

    Query blank-node variables (``?__bn...``) get fresh blank nodes scoped
    per solution, per the CONSTRUCT semantics.
    """
    bnode_scope: dict[Variable, BlankNode] = {}
    for pattern in template:
        terms = []
        valid = True
        for position, term in enumerate(pattern):
            if isinstance(term, Variable):
                if term.value.startswith("__bn"):
                    if term not in bnode_scope:
                        bnode_scope[term] = BlankNode(f"c{solution_index}_{len(bnode_scope)}")
                    value: Optional[Term] = bnode_scope[term]
                else:
                    value = binding.get(term)
                if value is None:
                    valid = False
                    break
                terms.append(value)
            else:
                terms.append(term)
        if not valid:
            continue
        subject, predicate, object_term = terms
        if isinstance(subject, Literal) or not isinstance(predicate, NamedNode):
            continue
        yield Triple(subject, predicate, object_term)


def evaluate_query(
    data: TypingUnion[Graph, Dataset], query: Query, seed_iris: Iterable[str] = ()
):
    """One-shot convenience: evaluate a parsed query over a snapshot.

    Returns a list of bindings (SELECT), a bool (ASK), or a list of triples
    (CONSTRUCT).
    """
    evaluator = SnapshotEvaluator(data, seed_iris=seed_iris)
    if query.form == "SELECT":
        return list(evaluator.select(query))
    if query.form == "ASK":
        return evaluator.ask(query)
    if query.form == "CONSTRUCT":
        return list(evaluator.construct(query))
    if query.form == "DESCRIBE":
        return list(evaluator.describe(query))
    raise ValueError(f"unsupported query form {query.form!r}")
