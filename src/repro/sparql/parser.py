"""Recursive-descent SPARQL 1.1 parser.

Parses SELECT / ASK / CONSTRUCT queries into the algebra of
:mod:`repro.sparql.algebra`, following the SPARQL 1.1 translation rules:
group graph patterns become joins, ``OPTIONAL`` becomes ``LeftJoin`` (pulling
an inner top-level ``FILTER`` into the join condition), ``FILTER``s are
collected per group and applied at group end, and solution modifiers wrap the
WHERE tree (GroupBy → Having → Extend(select exprs) → OrderBy → Project →
Distinct/Reduced → Slice).

Blank nodes in query patterns (labels and ``[...]``) are replaced by
non-projectable internal variables (``?__bnN``/``?__bn_label``) per the
standard semantics that query blank nodes behave as fresh variables.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union as TypingUnion
from urllib.parse import urljoin

from ..rdf.namespaces import RDF
from ..rdf.terms import (
    XSD_BOOLEAN,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_INTEGER,
    Literal,
    NamedNode,
    Term,
    Variable,
)
from ..rdf.triples import TriplePattern
from .algebra import (
    AggregateExpr,
    AlternativePath,
    And,
    Or,
    Arithmetic,
    BGP,
    Compare,
    Distinct,
    ExistsExpr,
    Expression,
    Extend,
    Filter,
    FunctionCall,
    GraphOp,
    GroupBy,
    InExpr,
    InversePath,
    Join,
    LeftJoin,
    Minus,
    NegatedPropertySet,
    Not,
    OneOrMorePath,
    Operator,
    OrderBy,
    OrderCondition,
    Path,
    PathPattern,
    PredicatePath,
    Project,
    Query,
    Reduced,
    SequencePath,
    Slice,
    SubSelect,
    TermExpr,
    UnaryMinus,
    UnaryPlus,
    Union,
    ValuesOp,
    VariableExpr,
    ZeroOrMorePath,
    ZeroOrOnePath,
)
from .tokens import Token, TokenizeError, tokenize

__all__ = ["SparqlParseError", "parse_query"]

_RDF_TYPE = RDF.type
_RDF_FIRST = RDF.first
_RDF_REST = RDF.rest
_RDF_NIL = RDF.nil

_AGGREGATES = frozenset({"COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT"})

_BUILTIN_FUNCTIONS = frozenset(
    {
        "STR", "LANG", "LANGMATCHES", "DATATYPE", "BOUND", "IRI", "URI",
        "BNODE", "RAND", "ABS", "CEIL", "FLOOR", "ROUND", "CONCAT", "STRLEN",
        "UCASE", "LCASE", "ENCODE_FOR_URI", "CONTAINS", "STRSTARTS",
        "STRENDS", "STRBEFORE", "STRAFTER", "YEAR", "MONTH", "DAY", "HOURS",
        "MINUTES", "SECONDS", "TIMEZONE", "TZ", "NOW", "UUID", "STRUUID",
        "MD5", "SHA1", "SHA256", "SHA384", "SHA512", "COALESCE", "IF",
        "STRLANG", "STRDT", "SAMETERM", "ISIRI", "ISURI", "ISBLANK",
        "ISLITERAL", "ISNUMERIC", "REGEX", "SUBSTR", "REPLACE",
    }
)


class SparqlParseError(ValueError):
    """Raised on syntactically invalid SPARQL."""


class _Parser:
    def __init__(self, text: str) -> None:
        try:
            self._tokens = tokenize(text)
        except TokenizeError as error:
            raise SparqlParseError(str(error)) from error
        self._pos = 0
        self._prefixes: dict[str, str] = {}
        self._base = ""
        self._bnode_counter = 0

    # ------------------------------------------------------------------
    # token utilities
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _at_keyword(self, *keywords: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.value in keywords

    def _at_punct(self, *lexemes: str) -> bool:
        token = self._peek()
        return token.kind == "PUNCT" and token.value in lexemes

    def _accept_keyword(self, *keywords: str) -> Optional[str]:
        if self._at_keyword(*keywords):
            return self._next().value
        return None

    def _accept_punct(self, *lexemes: str) -> Optional[str]:
        if self._at_punct(*lexemes):
            return self._next().value
        return None

    def _expect_keyword(self, keyword: str) -> None:
        token = self._next()
        if token.kind != "KEYWORD" or token.value != keyword:
            self._fail(f"expected {keyword}", token)

    def _expect_punct(self, lexeme: str) -> None:
        token = self._next()
        if token.kind != "PUNCT" or token.value != lexeme:
            self._fail(f"expected {lexeme!r}", token)

    def _fail(self, message: str, token: Optional[Token] = None) -> None:
        token = token if token is not None else self._peek()
        raise SparqlParseError(
            f"{message}, found {token.kind}:{token.value!r} "
            f"(line {token.line}, column {token.column})"
        )

    def _fresh_bnode_var(self, hint: str = "") -> Variable:
        if hint:
            return Variable(f"__bn_{hint}")
        self._bnode_counter += 1
        return Variable(f"__bn{self._bnode_counter}")

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def parse(self) -> Query:
        self._parse_prologue()
        if self._at_keyword("SELECT"):
            query = self._parse_select()
        elif self._at_keyword("ASK"):
            query = self._parse_ask()
        elif self._at_keyword("CONSTRUCT"):
            query = self._parse_construct()
        elif self._at_keyword("DESCRIBE"):
            query = self._parse_describe()
        else:
            self._fail("expected SELECT, ASK, CONSTRUCT, or DESCRIBE")
            raise AssertionError
        token = self._peek()
        if token.kind != "EOF":
            self._fail("unexpected trailing input", token)
        return query

    def _parse_prologue(self) -> None:
        while True:
            if self._accept_keyword("PREFIX"):
                name_token = self._next()
                if name_token.kind != "PNAME" or not name_token.value.endswith(":"):
                    self._fail("expected prefix name ending with ':'", name_token)
                iri_token = self._next()
                if iri_token.kind != "IRIREF":
                    self._fail("expected IRI after prefix name", iri_token)
                self._prefixes[name_token.value[:-1]] = self._resolve_iri(iri_token.value)
            elif self._accept_keyword("BASE"):
                iri_token = self._next()
                if iri_token.kind != "IRIREF":
                    self._fail("expected IRI after BASE", iri_token)
                self._base = iri_token.value
            else:
                return

    def _resolve_iri(self, iri: str) -> str:
        if self._base and ":" not in iri.split("/")[0]:
            return urljoin(self._base, iri)
        return iri

    # ------------------------------------------------------------------
    # query forms
    # ------------------------------------------------------------------

    def _parse_select(self) -> Query:
        where = self._parse_select_body()
        return Query(
            form="SELECT",
            where=where,
            prefixes=tuple(self._prefixes.items()),
            base_iri=self._base,
        )

    def _parse_select_body(self) -> Operator:
        """Parse a SELECT clause + WHERE + modifiers into an algebra tree."""
        self._expect_keyword("SELECT")
        distinct = bool(self._accept_keyword("DISTINCT"))
        reduced = bool(self._accept_keyword("REDUCED"))

        select_all = False
        projections: list[tuple[Variable, Optional[Expression]]] = []
        if self._accept_punct("*"):
            select_all = True
        else:
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    self._next()
                    projections.append((Variable(token.value), None))
                elif token.kind == "PUNCT" and token.value == "(":
                    self._next()
                    expression = self._parse_expression()
                    self._expect_keyword("AS")
                    var_token = self._next()
                    if var_token.kind != "VAR":
                        self._fail("expected variable after AS", var_token)
                    self._expect_punct(")")
                    projections.append((Variable(var_token.value), expression))
                else:
                    break
            if not projections:
                self._fail("expected projection variables or *")

        self._accept_keyword("WHERE")
        group = self._parse_group_graph_pattern()

        # -- solution modifiers -------------------------------------------
        group_keys: list[tuple[Expression, Optional[Variable]]] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    self._next()
                    group_keys.append((VariableExpr(Variable(token.value)), None))
                elif token.kind == "PUNCT" and token.value == "(":
                    self._next()
                    expression = self._parse_expression()
                    alias: Optional[Variable] = None
                    if self._accept_keyword("AS"):
                        var_token = self._next()
                        if var_token.kind != "VAR":
                            self._fail("expected variable after AS", var_token)
                        alias = Variable(var_token.value)
                    self._expect_punct(")")
                    group_keys.append((expression, alias))
                elif token.kind in ("IRIREF", "PNAME") or (
                    token.kind == "KEYWORD" and token.value in _BUILTIN_FUNCTIONS
                ):
                    group_keys.append((self._parse_primary_expression(), None))
                else:
                    break
            if not group_keys:
                self._fail("expected GROUP BY conditions")

        having: list[Expression] = []
        if self._accept_keyword("HAVING"):
            while self._at_punct("(") or (
                self._peek().kind == "KEYWORD"
                and self._peek().value in (_BUILTIN_FUNCTIONS | _AGGREGATES)
            ):
                having.append(self._parse_primary_expression())
            if not having:
                self._fail("expected HAVING conditions")

        order_conditions: list[OrderCondition] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            while True:
                if self._accept_keyword("ASC"):
                    self._expect_punct("(")
                    expression = self._parse_expression()
                    self._expect_punct(")")
                    order_conditions.append(OrderCondition(expression, descending=False))
                elif self._accept_keyword("DESC"):
                    self._expect_punct("(")
                    expression = self._parse_expression()
                    self._expect_punct(")")
                    order_conditions.append(OrderCondition(expression, descending=True))
                elif self._peek().kind == "VAR":
                    token = self._next()
                    order_conditions.append(
                        OrderCondition(VariableExpr(Variable(token.value)))
                    )
                elif self._at_punct("(") or (
                    self._peek().kind == "KEYWORD"
                    and self._peek().value in (_BUILTIN_FUNCTIONS | _AGGREGATES)
                ):
                    order_conditions.append(OrderCondition(self._parse_primary_expression()))
                else:
                    break
            if not order_conditions:
                self._fail("expected ORDER BY conditions")

        limit: Optional[int] = None
        offset = 0
        while True:
            if self._accept_keyword("LIMIT"):
                token = self._next()
                if token.kind != "NUMBER":
                    self._fail("expected integer after LIMIT", token)
                limit = int(token.value)
            elif self._accept_keyword("OFFSET"):
                token = self._next()
                if token.kind != "NUMBER":
                    self._fail("expected integer after OFFSET", token)
                offset = int(token.value)
            else:
                break

        # -- assemble tree ---------------------------------------------------
        has_aggregates = any(
            expression is not None and _contains_aggregate(expression)
            for _, expression in projections
        ) or bool(group_keys) or any(_contains_aggregate(h) for h in having)

        node: Operator = group
        if has_aggregates:
            bindings = tuple(
                (variable, expression)
                for variable, expression in projections
                if expression is not None
            )
            node = GroupBy(
                input=node,
                keys=tuple(group_keys),
                bindings=bindings,
                having=tuple(having),
            )
        else:
            for variable, expression in projections:
                if expression is not None:
                    node = Extend(node, variable, expression)

        if order_conditions:
            node = OrderBy(node, tuple(order_conditions))

        if select_all:
            from .algebra import operator_variables

            variables = tuple(
                sorted(
                    (v for v in operator_variables(group) if not v.value.startswith("__bn")),
                    key=lambda v: v.value,
                )
            )
        else:
            variables = tuple(variable for variable, _ in projections)
        node = Project(node, variables)

        if distinct:
            node = Distinct(node)
        elif reduced:
            node = Reduced(node)
        if limit is not None or offset:
            node = Slice(node, offset=offset, limit=limit)
        return node

    def _parse_describe(self) -> Query:
        """``DESCRIBE (var | iri)+ [WHERE { ... }]`` or ``DESCRIBE *``."""
        self._expect_keyword("DESCRIBE")
        targets: list[Term] = []
        if self._accept_punct("*"):
            pass  # all in-scope variables; resolved at evaluation time
        else:
            while True:
                token = self._peek()
                if token.kind == "VAR":
                    self._next()
                    targets.append(Variable(token.value))
                elif token.kind in ("IRIREF", "PNAME"):
                    targets.append(self._parse_iri())
                else:
                    break
            if not targets:
                self._fail("expected DESCRIBE targets or *")
        where: Operator = BGP((), ())
        if self._accept_keyword("WHERE") or self._at_punct("{"):
            where = self._parse_group_graph_pattern()
        return Query(
            form="DESCRIBE",
            where=where,
            describe_targets=tuple(targets),
            prefixes=tuple(self._prefixes.items()),
            base_iri=self._base,
        )

    def _parse_ask(self) -> Query:
        self._expect_keyword("ASK")
        self._accept_keyword("WHERE")
        group = self._parse_group_graph_pattern()
        return Query(
            form="ASK",
            where=group,
            prefixes=tuple(self._prefixes.items()),
            base_iri=self._base,
        )

    def _parse_construct(self) -> Query:
        self._expect_keyword("CONSTRUCT")
        template: list[TriplePattern] = []
        self._expect_punct("{")
        template_bgp = BGP((), ())
        patterns, path_patterns = self._parse_triples_block(stop_chars=("}",))
        if path_patterns:
            raise SparqlParseError("property paths are not allowed in CONSTRUCT templates")
        template = list(patterns)
        self._expect_punct("}")
        del template_bgp
        self._accept_keyword("WHERE")
        group = self._parse_group_graph_pattern()

        limit: Optional[int] = None
        offset = 0
        while True:
            if self._accept_keyword("LIMIT"):
                token = self._next()
                limit = int(token.value)
            elif self._accept_keyword("OFFSET"):
                token = self._next()
                offset = int(token.value)
            else:
                break
        node: Operator = group
        if limit is not None or offset:
            node = Slice(node, offset=offset, limit=limit)
        return Query(
            form="CONSTRUCT",
            where=node,
            construct_template=tuple(template),
            prefixes=tuple(self._prefixes.items()),
            base_iri=self._base,
        )

    # ------------------------------------------------------------------
    # group graph patterns
    # ------------------------------------------------------------------

    def _parse_group_graph_pattern(self) -> Operator:
        self._expect_punct("{")

        if self._at_keyword("SELECT"):
            sub = self._parse_select_body()
            self._expect_punct("}")
            return SubSelect(
                Query(form="SELECT", where=sub, prefixes=tuple(self._prefixes.items()))
            )

        current: Optional[Operator] = None
        filters: list[Expression] = []

        def join_with(op: Operator) -> None:
            nonlocal current
            current = op if current is None else Join(current, op)

        while True:
            if self._at_punct("}"):
                self._next()
                break

            if self._at_keyword("OPTIONAL"):
                self._next()
                inner = self._parse_group_graph_pattern()
                condition: Optional[Expression] = None
                if isinstance(inner, Filter):
                    condition = inner.expression
                    inner = inner.input
                left = current if current is not None else BGP((), ())
                current = LeftJoin(left, inner, condition)
                self._accept_punct(".")
                continue

            if self._at_keyword("MINUS"):
                self._next()
                inner = self._parse_group_graph_pattern()
                left = current if current is not None else BGP((), ())
                current = Minus(left, inner)
                self._accept_punct(".")
                continue

            if self._at_keyword("FILTER"):
                self._next()
                filters.append(self._parse_constraint())
                self._accept_punct(".")
                continue

            if self._at_keyword("BIND"):
                self._next()
                self._expect_punct("(")
                expression = self._parse_expression()
                self._expect_keyword("AS")
                var_token = self._next()
                if var_token.kind != "VAR":
                    self._fail("expected variable after AS", var_token)
                self._expect_punct(")")
                base = current if current is not None else BGP((), ())
                current = Extend(base, Variable(var_token.value), expression)
                self._accept_punct(".")
                continue

            if self._at_keyword("VALUES"):
                self._next()
                join_with(self._parse_values_clause())
                self._accept_punct(".")
                continue

            if self._at_keyword("GRAPH"):
                self._next()
                name = self._parse_var_or_iri()
                inner = self._parse_group_graph_pattern()
                join_with(GraphOp(name, inner))
                self._accept_punct(".")
                continue

            if self._at_punct("{"):
                # GroupOrUnionGraphPattern
                branch = self._parse_group_graph_pattern()
                while self._accept_keyword("UNION"):
                    right = self._parse_group_graph_pattern()
                    branch = Union(branch, right)
                join_with(branch)
                self._accept_punct(".")
                continue

            # Otherwise: a triples block.
            patterns, path_patterns = self._parse_triples_block(stop_chars=("}",))
            if patterns or path_patterns:
                join_with(BGP(tuple(patterns), tuple(path_patterns)))
                continue
            self._fail("expected graph pattern element")

        result: Operator = current if current is not None else BGP((), ())
        for expression in filters:
            result = Filter(expression, result)
        return result

    def _parse_constraint(self) -> Expression:
        if self._at_punct("("):
            self._next()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        return self._parse_primary_expression()

    def _parse_values_clause(self) -> ValuesOp:
        variables: list[Variable] = []
        rows: list[tuple[Optional[Term], ...]] = []
        if self._peek().kind == "VAR":
            token = self._next()
            variables.append(Variable(token.value))
            self._expect_punct("{")
            while not self._at_punct("}"):
                rows.append((self._parse_data_value(),))
            self._next()
        else:
            if self._peek().kind == "NIL":
                self._next()
            else:
                self._expect_punct("(")
                while self._peek().kind == "VAR":
                    variables.append(Variable(self._next().value))
                self._expect_punct(")")
            self._expect_punct("{")
            while not self._at_punct("}"):
                row: list[Optional[Term]] = []
                if self._peek().kind == "NIL":
                    self._next()
                else:
                    self._expect_punct("(")
                    while not self._at_punct(")"):
                        row.append(self._parse_data_value())
                    self._next()
                if len(row) != len(variables):
                    self._fail("VALUES row arity mismatch")
                rows.append(tuple(row))
            self._next()
        return ValuesOp(tuple(variables), tuple(rows))

    def _parse_data_value(self) -> Optional[Term]:
        if self._accept_keyword("UNDEF"):
            return None
        term = self._parse_graph_term(allow_var=False)
        return term

    def _parse_var_or_iri(self) -> Term:
        token = self._peek()
        if token.kind == "VAR":
            self._next()
            return Variable(token.value)
        return self._parse_iri()

    # ------------------------------------------------------------------
    # triples blocks
    # ------------------------------------------------------------------

    def _parse_triples_block(
        self, stop_chars: tuple[str, ...]
    ) -> tuple[list[TriplePattern], list[PathPattern]]:
        patterns: list[TriplePattern] = []
        path_patterns: list[PathPattern] = []
        while True:
            token = self._peek()
            if token.kind == "EOF":
                break
            if token.kind == "PUNCT" and token.value in stop_chars:
                break
            if token.kind == "KEYWORD" and token.value in (
                "OPTIONAL", "MINUS", "FILTER", "BIND", "VALUES", "GRAPH", "SELECT",
            ):
                break
            if token.kind == "PUNCT" and token.value == "{":
                break
            subject = self._parse_term_or_bnode_list(patterns, path_patterns, as_subject=True)
            self._parse_property_list(subject, patterns, path_patterns, optional=False)
            if not self._accept_punct("."):
                break
        return patterns, path_patterns

    def _parse_term_or_bnode_list(
        self,
        patterns: list[TriplePattern],
        path_patterns: list[PathPattern],
        as_subject: bool,
    ) -> Term:
        token = self._peek()
        if token.kind == "ANON":
            self._next()
            return self._fresh_bnode_var()
        if token.kind == "PUNCT" and token.value == "[":
            self._next()
            node = self._fresh_bnode_var()
            self._parse_property_list(node, patterns, path_patterns, optional=False)
            self._expect_punct("]")
            return node
        if token.kind == "NIL":
            self._next()
            return _RDF_NIL
        if token.kind == "PUNCT" and token.value == "(":
            return self._parse_collection_pattern(patterns, path_patterns)
        return self._parse_graph_term(allow_var=True)

    def _parse_collection_pattern(
        self, patterns: list[TriplePattern], path_patterns: list[PathPattern]
    ) -> Term:
        self._expect_punct("(")
        items: list[Term] = []
        while not self._at_punct(")"):
            items.append(self._parse_term_or_bnode_list(patterns, path_patterns, as_subject=False))
        self._next()
        if not items:
            return _RDF_NIL
        head = self._fresh_bnode_var()
        current = head
        for index, item in enumerate(items):
            patterns.append(TriplePattern(current, _RDF_FIRST, item))
            if index + 1 < len(items):
                nxt = self._fresh_bnode_var()
                patterns.append(TriplePattern(current, _RDF_REST, nxt))
                current = nxt
            else:
                patterns.append(TriplePattern(current, _RDF_REST, _RDF_NIL))
        return head

    def _parse_property_list(
        self,
        subject: Term,
        patterns: list[TriplePattern],
        path_patterns: list[PathPattern],
        optional: bool,
    ) -> None:
        first = True
        while True:
            token = self._peek()
            if token.kind == "PUNCT" and token.value in (".", "]", "}"):
                if first and not optional:
                    self._fail("expected predicate")
                return
            if token.kind == "EOF":
                return
            if token.kind == "VAR":
                self._next()
                verb_var = Variable(token.value)
                first = False
                while True:
                    obj = self._parse_term_or_bnode_list(
                        patterns, path_patterns, as_subject=False
                    )
                    patterns.append(TriplePattern(subject, verb_var, obj))
                    if not self._accept_punct(","):
                        break
                if self._accept_punct(";"):
                    continue
                return
            path = self._parse_path()
            first = False
            while True:
                obj = self._parse_term_or_bnode_list(patterns, path_patterns, as_subject=False)
                self._emit_pattern(subject, path, obj, patterns, path_patterns)
                if not self._accept_punct(","):
                    break
            if self._accept_punct(";"):
                continue
            return

    def _emit_pattern(
        self,
        subject: Term,
        path: Path,
        obj: Term,
        patterns: list[TriplePattern],
        path_patterns: list[PathPattern],
    ) -> None:
        if isinstance(path, PredicatePath):
            patterns.append(TriplePattern(subject, path.predicate, obj))
        else:
            path_patterns.append(PathPattern(subject, path, obj))

    # ------------------------------------------------------------------
    # property paths
    # ------------------------------------------------------------------

    def _parse_path(self) -> Path:
        return self._parse_path_alternative()

    def _parse_path_alternative(self) -> Path:
        options = [self._parse_path_sequence()]
        while self._accept_punct("|"):
            options.append(self._parse_path_sequence())
        if len(options) == 1:
            return options[0]
        return AlternativePath(tuple(options))

    def _parse_path_sequence(self) -> Path:
        steps = [self._parse_path_elt_or_inverse()]
        while self._accept_punct("/"):
            steps.append(self._parse_path_elt_or_inverse())
        if len(steps) == 1:
            return steps[0]
        return SequencePath(tuple(steps))

    def _parse_path_elt_or_inverse(self) -> Path:
        if self._accept_punct("^"):
            return InversePath(self._parse_path_elt())
        return self._parse_path_elt()

    def _parse_path_elt(self) -> Path:
        primary = self._parse_path_primary()
        if self._accept_punct("*"):
            return ZeroOrMorePath(primary)
        if self._accept_punct("+"):
            return OneOrMorePath(primary)
        if self._accept_punct("?"):
            return ZeroOrOnePath(primary)
        return primary

    def _parse_path_primary(self) -> Path:
        token = self._peek()
        if token.kind == "PUNCT" and token.value == "(":
            self._next()
            inner = self._parse_path()
            self._expect_punct(")")
            return inner
        if token.kind == "PUNCT" and token.value == "!":
            self._next()
            return self._parse_negated_property_set()
        if token.kind == "KEYWORD" and token.value == "A":
            self._next()
            return PredicatePath(_RDF_TYPE)
        return PredicatePath(self._parse_iri())

    def _parse_negated_property_set(self) -> NegatedPropertySet:
        forward: list[NamedNode] = []
        inverse: list[NamedNode] = []

        def one() -> None:
            if self._accept_punct("^"):
                inverse.append(self._parse_iri_or_a())
            else:
                forward.append(self._parse_iri_or_a())

        if self._accept_punct("("):
            one()
            while self._accept_punct("|"):
                one()
            self._expect_punct(")")
        else:
            one()
        return NegatedPropertySet(tuple(forward), tuple(inverse))

    def _parse_iri_or_a(self) -> NamedNode:
        if self._accept_keyword("A"):
            return _RDF_TYPE
        return self._parse_iri()

    # ------------------------------------------------------------------
    # terms
    # ------------------------------------------------------------------

    def _parse_iri(self) -> NamedNode:
        token = self._next()
        if token.kind == "IRIREF":
            return NamedNode(self._resolve_iri(token.value))
        if token.kind == "PNAME":
            return self._expand_pname(token)
        self._fail("expected IRI", token)
        raise AssertionError

    def _expand_pname(self, token: Token) -> NamedNode:
        prefix, _, local = token.value.partition(":")
        if prefix not in self._prefixes:
            self._fail(f"undefined prefix {prefix!r}", token)
        return NamedNode(self._prefixes[prefix] + local)

    def _parse_graph_term(self, allow_var: bool) -> Term:
        token = self._next()
        if token.kind == "VAR":
            if not allow_var:
                self._fail("variable not allowed here", token)
            return Variable(token.value)
        if token.kind == "IRIREF":
            return NamedNode(self._resolve_iri(token.value))
        if token.kind == "PNAME":
            return self._expand_pname(token)
        if token.kind == "BLANK":
            return self._fresh_bnode_var(hint=token.value)
        if token.kind == "STRING":
            return self._finish_literal(token.value)
        if token.kind == "NUMBER":
            return _number_literal(token.value)
        if token.kind == "KEYWORD" and token.value in ("TRUE", "FALSE"):
            return Literal(token.value.lower(), datatype=XSD_BOOLEAN)
        if token.kind == "KEYWORD" and token.value == "A":
            return _RDF_TYPE
        self._fail("expected RDF term", token)
        raise AssertionError

    def _finish_literal(self, value: str) -> Literal:
        token = self._peek()
        if token.kind == "LANGTAG":
            self._next()
            return Literal(value, language=token.value)
        if token.kind == "PUNCT" and token.value == "^^":
            self._next()
            datatype = self._parse_iri()
            return Literal(value, datatype=datatype.value)
        return Literal(value)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def _parse_expression(self) -> Expression:
        return self._parse_or_expression()

    def _parse_or_expression(self) -> Expression:
        left = self._parse_and_expression()
        while self._accept_punct("||"):
            left = Or(left, self._parse_and_expression())
        return left

    def _parse_and_expression(self) -> Expression:
        left = self._parse_relational_expression()
        while self._accept_punct("&&"):
            left = And(left, self._parse_relational_expression())
        return left

    def _parse_relational_expression(self) -> Expression:
        left = self._parse_additive_expression()
        token = self._peek()
        if token.kind == "PUNCT" and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self._next()
            right = self._parse_additive_expression()
            return Compare(token.value, left, right)
        if self._at_keyword("IN"):
            self._next()
            return InExpr(left, self._parse_expression_list(), negated=False)
        if self._at_keyword("NOT") and self._peek(1).value == "IN":
            self._next()
            self._next()
            return InExpr(left, self._parse_expression_list(), negated=True)
        return left

    def _parse_expression_list(self) -> tuple[Expression, ...]:
        if self._peek().kind == "NIL":
            self._next()
            return ()
        self._expect_punct("(")
        items = [self._parse_expression()]
        while self._accept_punct(","):
            items.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(items)

    def _parse_additive_expression(self) -> Expression:
        left = self._parse_multiplicative_expression()
        while True:
            if self._accept_punct("+"):
                left = Arithmetic("+", left, self._parse_multiplicative_expression())
            elif self._accept_punct("-"):
                left = Arithmetic("-", left, self._parse_multiplicative_expression())
            else:
                return left

    def _parse_multiplicative_expression(self) -> Expression:
        left = self._parse_unary_expression()
        while True:
            if self._accept_punct("*"):
                left = Arithmetic("*", left, self._parse_unary_expression())
            elif self._accept_punct("/"):
                left = Arithmetic("/", left, self._parse_unary_expression())
            else:
                return left

    def _parse_unary_expression(self) -> Expression:
        if self._accept_punct("!"):
            return Not(self._parse_unary_expression())
        if self._accept_punct("-"):
            return UnaryMinus(self._parse_unary_expression())
        if self._accept_punct("+"):
            return UnaryPlus(self._parse_unary_expression())
        return self._parse_primary_expression()

    def _parse_primary_expression(self) -> Expression:
        token = self._peek()
        if token.kind == "PUNCT" and token.value == "(":
            self._next()
            expression = self._parse_expression()
            self._expect_punct(")")
            return expression
        if token.kind == "VAR":
            self._next()
            return VariableExpr(Variable(token.value))
        if token.kind == "STRING":
            self._next()
            return TermExpr(self._finish_literal(token.value))
        if token.kind == "NUMBER":
            self._next()
            return TermExpr(_number_literal(token.value))
        if token.kind == "IRIREF" or token.kind == "PNAME":
            iri = self._parse_iri()
            if self._at_punct("(") or self._peek().kind == "NIL":
                args = self._parse_call_args()
                return FunctionCall(iri.value, args)
            return TermExpr(iri)
        if token.kind == "KEYWORD":
            if token.value in ("TRUE", "FALSE"):
                self._next()
                return TermExpr(Literal(token.value.lower(), datatype=XSD_BOOLEAN))
            if token.value == "NOT" and self._peek(1).value == "EXISTS":
                self._next()
                self._next()
                pattern = self._parse_group_graph_pattern()
                return ExistsExpr(pattern, negated=True)
            if token.value == "EXISTS":
                self._next()
                pattern = self._parse_group_graph_pattern()
                return ExistsExpr(pattern, negated=False)
            if token.value in _AGGREGATES:
                return self._parse_aggregate()
            if token.value in _BUILTIN_FUNCTIONS:
                self._next()
                args = self._parse_call_args()
                return FunctionCall(token.value, args)
        self._fail("expected expression", token)
        raise AssertionError

    def _parse_call_args(self) -> tuple[Expression, ...]:
        if self._peek().kind == "NIL":
            self._next()
            return ()
        self._expect_punct("(")
        if self._accept_punct(")"):
            return ()
        args = [self._parse_expression()]
        while self._accept_punct(","):
            args.append(self._parse_expression())
        self._expect_punct(")")
        return tuple(args)

    def _parse_aggregate(self) -> AggregateExpr:
        name = self._next().value
        self._expect_punct("(")
        distinct = bool(self._accept_keyword("DISTINCT"))
        operand: Optional[Expression]
        if self._accept_punct("*"):
            operand = None
        else:
            operand = self._parse_expression()
        separator = " "
        if name == "GROUP_CONCAT" and self._accept_punct(";"):
            self._expect_keyword("SEPARATOR")
            self._expect_punct("=")
            sep_token = self._next()
            if sep_token.kind != "STRING":
                self._fail("expected string separator", sep_token)
            separator = sep_token.value
        self._expect_punct(")")
        return AggregateExpr(name, operand, distinct=distinct, separator=separator)


def _number_literal(lexical: str) -> Literal:
    if "e" in lexical or "E" in lexical:
        return Literal(lexical, datatype=XSD_DOUBLE)
    if "." in lexical:
        return Literal(lexical, datatype=XSD_DECIMAL)
    return Literal(lexical, datatype=XSD_INTEGER)


def _contains_aggregate(expression: Expression) -> bool:
    if isinstance(expression, AggregateExpr):
        return True
    if isinstance(expression, (And, Or, Compare, Arithmetic)):
        return _contains_aggregate(expression.left) or _contains_aggregate(expression.right)
    if isinstance(expression, (Not, UnaryMinus, UnaryPlus)):
        return _contains_aggregate(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(_contains_aggregate(a) for a in expression.args)
    if isinstance(expression, InExpr):
        return _contains_aggregate(expression.operand) or any(
            _contains_aggregate(c) for c in expression.choices
        )
    return False


def parse_query(text: str) -> Query:
    """Parse SPARQL query text into a :class:`repro.sparql.algebra.Query`.

    The returned query keeps its source text (``Query.text``) so
    front-ends that route on or re-transmit the original string — e.g.
    the sharded service — never need to reconstruct it.
    """
    return dataclasses.replace(_Parser(text).parse(), text=text)
