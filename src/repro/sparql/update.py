"""SPARQL 1.1 Update (the subset Solid servers accept in PATCH bodies).

Solid pods are *live*: applications modify documents with
``application/sparql-update`` PATCH requests, and a traversal-based
engine sees the changes on its next execution ("can query over live data
that is spread over multiple pods", paper §1).  This module provides the
update operations the Solid protocol uses:

* ``INSERT DATA { ... }`` — add ground triples
* ``DELETE DATA { ... }`` — remove ground triples
* ``DELETE WHERE { ... }`` — remove all instantiations of a pattern
* ``DELETE { ... } INSERT { ... } WHERE { ... }`` — templated rewrite

Updates parse with the same tokenizer/term machinery as queries and
apply to a :class:`~repro.rdf.dataset.Graph` via :func:`apply_update`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..rdf.dataset import Graph
from ..rdf.terms import BlankNode, Literal, NamedNode, Term, Variable
from ..rdf.triples import Triple, TriplePattern
from .algebra import BGP
from .bindings import Binding
from .eval import SnapshotEvaluator
from .parser import SparqlParseError, _Parser

__all__ = [
    "InsertData",
    "DeleteData",
    "DeleteWhere",
    "Modify",
    "UpdateOperation",
    "parse_update",
    "apply_update",
]


@dataclass(frozen=True)
class InsertData:
    triples: tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteData:
    triples: tuple[Triple, ...]


@dataclass(frozen=True)
class DeleteWhere:
    patterns: tuple[TriplePattern, ...]


@dataclass(frozen=True)
class Modify:
    """DELETE { } INSERT { } WHERE { } — either template may be empty."""

    delete_template: tuple[TriplePattern, ...]
    insert_template: tuple[TriplePattern, ...]
    where: tuple[TriplePattern, ...]


UpdateOperation = Union[InsertData, DeleteData, DeleteWhere, Modify]


class _UpdateParser(_Parser):
    """Reuses the query parser's prologue/triples machinery for updates."""

    def parse_update(self) -> list[UpdateOperation]:
        self._parse_prologue()
        operations: list[UpdateOperation] = []
        while self._peek().kind != "EOF":
            operations.append(self._parse_operation())
            self._accept_punct(";")
        if not operations:
            self._fail("expected an update operation")
        return operations

    def _parse_operation(self) -> UpdateOperation:
        token = self._peek()
        if token.kind != "KEYWORD":
            self._fail("expected INSERT or DELETE", token)
        if token.value == "INSERT":
            self._next()
            if self._peek().kind == "KEYWORD" and self._peek().value == "DATA":
                self._next()
                return InsertData(self._parse_ground_block())
            insert_template = self._parse_template_block()
            self._expect_keyword("WHERE")
            where = self._parse_pattern_block()
            return Modify((), insert_template, where)
        if token.value == "DELETE":
            self._next()
            peeked = self._peek()
            if peeked.kind == "KEYWORD" and peeked.value == "DATA":
                self._next()
                return DeleteData(self._parse_ground_block())
            if peeked.kind == "KEYWORD" and peeked.value == "WHERE":
                self._next()
                return DeleteWhere(self._parse_pattern_block())
            delete_template = self._parse_template_block()
            insert_template: tuple[TriplePattern, ...] = ()
            if self._accept_keyword("INSERT"):
                insert_template = self._parse_template_block()
            self._expect_keyword("WHERE")
            where = self._parse_pattern_block()
            return Modify(delete_template, insert_template, where)
        self._fail("expected INSERT or DELETE", token)
        raise AssertionError

    def _parse_pattern_block(self) -> tuple[TriplePattern, ...]:
        self._expect_punct("{")
        patterns, path_patterns = self._parse_triples_block(stop_chars=("}",))
        if path_patterns:
            raise SparqlParseError("property paths are not allowed in updates")
        self._expect_punct("}")
        return tuple(patterns)

    _parse_template_block = _parse_pattern_block

    def _parse_ground_block(self) -> tuple[Triple, ...]:
        patterns = self._parse_pattern_block()
        triples: list[Triple] = []
        for pattern in patterns:
            triples.append(_ground(pattern))
        return tuple(triples)


def _ground(pattern: TriplePattern) -> Triple:
    """Ground a parsed pattern: query blank nodes become blank nodes again,
    real variables are illegal in DATA blocks."""
    terms = []
    for term in pattern:
        if isinstance(term, Variable):
            if term.value.startswith("__bn"):
                terms.append(BlankNode(term.value[4:] or term.value))
                continue
            raise SparqlParseError(f"variable ?{term.value} not allowed in DATA block")
        terms.append(term)
    subject, predicate, object_term = terms
    if isinstance(subject, Literal) or not isinstance(predicate, NamedNode):
        raise SparqlParseError("malformed triple in DATA block")
    return Triple(subject, predicate, object_term)


def parse_update(text: str) -> list[UpdateOperation]:
    """Parse a SPARQL Update request into its operations."""
    return _UpdateParser(text).parse_update()


def _instantiate(template: tuple[TriplePattern, ...], binding: Binding) -> list[Triple]:
    triples: list[Triple] = []
    for pattern in template:
        terms: list[Optional[Term]] = []
        for term in pattern:
            if isinstance(term, Variable):
                terms.append(binding.get(term))
            else:
                terms.append(term)
        if any(t is None for t in terms):
            continue
        subject, predicate, object_term = terms
        if isinstance(subject, Literal) or not isinstance(predicate, NamedNode):
            continue
        triples.append(Triple(subject, predicate, object_term))
    return triples


def apply_update(graph: Graph, operations: Union[UpdateOperation, list[UpdateOperation]]) -> dict:
    """Apply update operation(s) to a graph in place.

    Returns ``{"added": n, "removed": m}`` counts.
    """
    if not isinstance(operations, list):
        operations = [operations]
    added = removed = 0
    for operation in operations:
        if isinstance(operation, InsertData):
            for triple in operation.triples:
                if graph.add(triple):
                    added += 1
        elif isinstance(operation, DeleteData):
            for triple in operation.triples:
                if graph.discard(triple):
                    removed += 1
        elif isinstance(operation, DeleteWhere):
            evaluator = SnapshotEvaluator(graph)
            solutions = list(evaluator.evaluate(BGP(operation.patterns)))
            for binding in solutions:
                for triple in _instantiate(operation.patterns, binding):
                    if graph.discard(triple):
                        removed += 1
        elif isinstance(operation, Modify):
            evaluator = SnapshotEvaluator(graph)
            solutions = list(evaluator.evaluate(BGP(operation.where)))
            to_remove: list[Triple] = []
            to_add: list[Triple] = []
            for binding in solutions:
                to_remove.extend(_instantiate(operation.delete_template, binding))
                to_add.extend(_instantiate(operation.insert_template, binding))
            for triple in to_remove:
                if graph.discard(triple):
                    removed += 1
            for triple in to_add:
                if graph.add(triple):
                    added += 1
        else:
            raise TypeError(f"unknown update operation: {operation!r}")
    return {"added": added, "removed": removed}
