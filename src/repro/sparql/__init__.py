"""SPARQL 1.1 query processing.

Pipeline: :func:`parse_query` (text → algebra) → planner
(:mod:`repro.sparql.planner`, zero-knowledge BGP ordering) → evaluation —
either the snapshot evaluator here (:class:`SnapshotEvaluator`) or the
incremental pipelined operators in :mod:`repro.ltqp.pipeline`.
"""

from .algebra import Operator, Query, is_monotonic, operator_variables
from .bindings import Binding
from .eval import SnapshotEvaluator, evaluate_query
from .expr import ExpressionError, ExpressionEvaluator, compare_terms, effective_boolean_value
from .parser import SparqlParseError, parse_query
from .paths import evaluate_path
from .planner import plan_bgp_order
from .update import (
    DeleteData,
    DeleteWhere,
    InsertData,
    Modify,
    apply_update,
    parse_update,
)
from .results import (
    binding_to_cli_line,
    binding_to_json_dict,
    results_to_csv,
    results_to_sparql_json,
)

__all__ = [
    "parse_query",
    "SparqlParseError",
    "Query",
    "Operator",
    "Binding",
    "SnapshotEvaluator",
    "evaluate_query",
    "ExpressionEvaluator",
    "ExpressionError",
    "effective_boolean_value",
    "compare_terms",
    "evaluate_path",
    "plan_bgp_order",
    "is_monotonic",
    "operator_variables",
    "binding_to_json_dict",
    "binding_to_cli_line",
    "results_to_sparql_json",
    "results_to_csv",
    "parse_update",
    "apply_update",
    "InsertData",
    "DeleteData",
    "DeleteWhere",
    "Modify",
]
