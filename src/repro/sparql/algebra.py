"""SPARQL algebra: operator tree and expression tree dataclasses.

The parser (:mod:`repro.sparql.parser`) translates query syntax directly into
this algebra, closely following the SPARQL 1.1 specification's translation
rules (group graph patterns become joins, ``OPTIONAL`` becomes ``LeftJoin``,
etc.).  Evaluators — the snapshot evaluator in :mod:`repro.sparql.eval` and
the incremental pipeline in :mod:`repro.ltqp.pipeline` — both consume this
representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from ..rdf.terms import NamedNode, Term, Variable  # noqa: F401 (Term used in Query)
from ..rdf.triples import TriplePattern

__all__ = [
    # expressions
    "Expression",
    "TermExpr",
    "VariableExpr",
    "And",
    "Or",
    "Not",
    "Compare",
    "Arithmetic",
    "UnaryMinus",
    "UnaryPlus",
    "FunctionCall",
    "InExpr",
    "ExistsExpr",
    "AggregateExpr",
    # property paths
    "Path",
    "PredicatePath",
    "InversePath",
    "SequencePath",
    "AlternativePath",
    "ZeroOrMorePath",
    "OneOrMorePath",
    "ZeroOrOnePath",
    "NegatedPropertySet",
    "PathPattern",
    # operators
    "Operator",
    "BGP",
    "Join",
    "LeftJoin",
    "Union",
    "Minus",
    "Filter",
    "Extend",
    "GraphOp",
    "ValuesOp",
    "Project",
    "Distinct",
    "Reduced",
    "Slice",
    "OrderBy",
    "OrderCondition",
    "GroupBy",
    "SubSelect",
    "Query",
    "is_monotonic",
    "is_blocking",
    "expression_contains_exists",
    "operator_children",
    "operator_variables",
]


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expression:
    """Base class for SPARQL expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class TermExpr(Expression):
    """A constant RDF term (IRI or literal) in an expression."""

    term: Term


@dataclass(frozen=True, slots=True)
class VariableExpr(Expression):
    """A variable reference in an expression."""

    variable: Variable


@dataclass(frozen=True, slots=True)
class And(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Or(Expression):
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Not(Expression):
    operand: Expression


@dataclass(frozen=True, slots=True)
class Compare(Expression):
    """Binary comparison: operator is one of ``= != < <= > >=``."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class Arithmetic(Expression):
    """Binary arithmetic: operator is one of ``+ - * /``."""

    operator: str
    left: Expression
    right: Expression


@dataclass(frozen=True, slots=True)
class UnaryMinus(Expression):
    operand: Expression


@dataclass(frozen=True, slots=True)
class UnaryPlus(Expression):
    operand: Expression


@dataclass(frozen=True, slots=True)
class FunctionCall(Expression):
    """A built-in (by upper-cased name) or extension function (by IRI)."""

    name: str
    args: tuple[Expression, ...]


@dataclass(frozen=True, slots=True)
class InExpr(Expression):
    """``expr IN (e1, ..., en)`` or its negation."""

    operand: Expression
    choices: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True, slots=True)
class ExistsExpr(Expression):
    """``EXISTS { pattern }`` / ``NOT EXISTS { pattern }``."""

    pattern: "Operator"
    negated: bool = False


@dataclass(frozen=True, slots=True)
class AggregateExpr(Expression):
    """An aggregate: name in COUNT/SUM/MIN/MAX/AVG/SAMPLE/GROUP_CONCAT.

    ``operand`` is ``None`` for ``COUNT(*)``.
    """

    name: str
    operand: Optional[Expression]
    distinct: bool = False
    separator: str = " "


# ---------------------------------------------------------------------------
# Property paths
# ---------------------------------------------------------------------------


class Path:
    """Base class for property-path expressions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class PredicatePath(Path):
    predicate: NamedNode


@dataclass(frozen=True, slots=True)
class InversePath(Path):
    path: Path


@dataclass(frozen=True, slots=True)
class SequencePath(Path):
    steps: tuple[Path, ...]


@dataclass(frozen=True, slots=True)
class AlternativePath(Path):
    options: tuple[Path, ...]


@dataclass(frozen=True, slots=True)
class ZeroOrMorePath(Path):
    path: Path


@dataclass(frozen=True, slots=True)
class OneOrMorePath(Path):
    path: Path


@dataclass(frozen=True, slots=True)
class ZeroOrOnePath(Path):
    path: Path


@dataclass(frozen=True, slots=True)
class NegatedPropertySet(Path):
    """``!(iri1|...|irin)`` including inverse members."""

    forward: tuple[NamedNode, ...]
    inverse: tuple[NamedNode, ...] = ()


@dataclass(frozen=True, slots=True)
class PathPattern:
    """A subject-path-object pattern inside a BGP."""

    subject: Term
    path: Path
    object: Term

    def variables(self) -> set[Variable]:
        return {t for t in (self.subject, self.object) if isinstance(t, Variable)}


# ---------------------------------------------------------------------------
# Operators
# ---------------------------------------------------------------------------


class Operator:
    """Base class for algebra operators."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class BGP(Operator):
    """Basic graph pattern: triple patterns plus property-path patterns."""

    patterns: tuple[TriplePattern, ...]
    path_patterns: tuple[PathPattern, ...] = ()

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for pattern in self.patterns:
            result |= pattern.variables()
        for path_pattern in self.path_patterns:
            result |= path_pattern.variables()
        return result


@dataclass(frozen=True, slots=True)
class Join(Operator):
    left: Operator
    right: Operator


@dataclass(frozen=True, slots=True)
class LeftJoin(Operator):
    """OPTIONAL with an optional embedded filter expression."""

    left: Operator
    right: Operator
    expression: Optional[Expression] = None


@dataclass(frozen=True, slots=True)
class Union(Operator):
    left: Operator
    right: Operator


@dataclass(frozen=True, slots=True)
class Minus(Operator):
    left: Operator
    right: Operator


@dataclass(frozen=True, slots=True)
class Filter(Operator):
    expression: Expression
    input: Operator


@dataclass(frozen=True, slots=True)
class Extend(Operator):
    """BIND: extend each solution with variable := expression."""

    input: Operator
    variable: Variable
    expression: Expression


@dataclass(frozen=True, slots=True)
class GraphOp(Operator):
    """GRAPH term { pattern } — term is an IRI or a variable."""

    name: Term
    input: Operator


@dataclass(frozen=True, slots=True)
class ValuesOp(Operator):
    """Inline data: VALUES clause."""

    variables: tuple[Variable, ...]
    rows: tuple[tuple[Optional[Term], ...], ...]


@dataclass(frozen=True, slots=True)
class Project(Operator):
    input: Operator
    variables: tuple[Variable, ...]


@dataclass(frozen=True, slots=True)
class Distinct(Operator):
    input: Operator


@dataclass(frozen=True, slots=True)
class Reduced(Operator):
    input: Operator


@dataclass(frozen=True, slots=True)
class Slice(Operator):
    input: Operator
    offset: int = 0
    limit: Optional[int] = None


@dataclass(frozen=True, slots=True)
class OrderCondition:
    expression: Expression
    descending: bool = False


@dataclass(frozen=True, slots=True)
class OrderBy(Operator):
    input: Operator
    conditions: tuple[OrderCondition, ...]


@dataclass(frozen=True, slots=True)
class GroupBy(Operator):
    """Grouping plus aggregate bindings plus HAVING filters.

    ``bindings`` maps output variables to expressions that may contain
    :class:`AggregateExpr` nodes; ``keys`` are the GROUP BY expressions
    (paired with an optional output variable for ``GROUP BY (expr AS ?v)``).
    """

    input: Operator
    keys: tuple[tuple[Expression, Optional[Variable]], ...]
    bindings: tuple[tuple[Variable, Expression], ...]
    having: tuple[Expression, ...] = ()


@dataclass(frozen=True, slots=True)
class SubSelect(Operator):
    """A nested SELECT used as a group graph pattern element."""

    query: "Query"


@dataclass(frozen=True, slots=True)
class Query:
    """A parsed SPARQL query.

    ``form`` is one of ``SELECT``, ``ASK``, ``CONSTRUCT``.  ``where`` is the
    full algebra tree including solution modifiers (Project/Distinct/Slice
    etc. are part of the tree, rooted at ``where``).
    """

    form: str
    where: Operator
    construct_template: tuple[TriplePattern, ...] = ()
    describe_targets: tuple[Term, ...] = ()
    prefixes: tuple[tuple[str, str], ...] = ()
    base_iri: str = ""
    #: The source text this query was parsed from (``""`` for queries
    #: built programmatically).  Excluded from equality/hash: two parses
    #: of differently-formatted but structurally identical text still
    #: compare equal.  Front-ends that ship queries across process
    #: boundaries (the sharded service) re-submit this text.
    text: str = field(default="", compare=False)

    def variables(self) -> tuple[Variable, ...]:
        """Projected variables (for SELECT), in projection order."""
        node = self.where
        while True:
            if isinstance(node, Project):
                return node.variables
            if isinstance(node, (Distinct, Reduced)):
                node = node.input
            elif isinstance(node, Slice):
                node = node.input
            elif isinstance(node, OrderBy):
                node = node.input
            else:
                return tuple(sorted(operator_variables(node), key=lambda v: v.value))


# ---------------------------------------------------------------------------
# Introspection helpers
# ---------------------------------------------------------------------------

_MONOTONIC_SAFE = (BGP, Join, Union, Filter, Extend, ValuesOp, Project, Distinct, Reduced, GraphOp)


def is_monotonic(op: Operator) -> bool:
    """True when the operator tree yields only monotonic results.

    Monotonic means: as the underlying data grows, the result set only
    grows — previously emitted solutions remain valid.  This is the class of
    queries the paper's engine evaluates fully pipelined during traversal;
    non-monotonic operators (OPTIONAL, MINUS, ORDER BY, GROUP BY, OFFSET)
    must wait for traversal quiescence.

    LIMIT without OFFSET is monotonic (any N answers are a valid prefix).
    """
    if isinstance(op, BGP):
        return True
    if isinstance(op, (Join, Union)):
        return is_monotonic(op.left) and is_monotonic(op.right)
    if isinstance(op, Filter):
        return _expression_monotonic(op.expression) and is_monotonic(op.input)
    if isinstance(op, Extend):
        return _expression_monotonic(op.expression) and is_monotonic(op.input)
    if isinstance(op, (Project, Distinct, Reduced)):
        return is_monotonic(op.input)
    if isinstance(op, GraphOp):
        return is_monotonic(op.input)
    if isinstance(op, ValuesOp):
        return True
    if isinstance(op, Slice):
        return op.offset == 0 and is_monotonic(op.input)
    if isinstance(op, SubSelect):
        return is_monotonic(op.query.where)
    return False


def expression_contains_exists(expression: Expression) -> bool:
    """True when the expression mentions ``EXISTS``/``NOT EXISTS`` anywhere.

    Such expressions cannot be decided against a growing dataset: an
    ``EXISTS`` that is false now may become true once more documents
    arrive (and vice versa for ``NOT EXISTS``), so any operator evaluating
    them must hold its verdict until traversal quiescence.
    """
    if isinstance(expression, ExistsExpr):
        return True
    if isinstance(expression, (And, Or, Compare, Arithmetic)):
        return expression_contains_exists(expression.left) or expression_contains_exists(
            expression.right
        )
    if isinstance(expression, (Not, UnaryMinus, UnaryPlus)):
        return expression_contains_exists(expression.operand)
    if isinstance(expression, FunctionCall):
        return any(expression_contains_exists(a) for a in expression.args)
    if isinstance(expression, InExpr):
        return expression_contains_exists(expression.operand) or any(
            expression_contains_exists(c) for c in expression.choices
        )
    if isinstance(expression, AggregateExpr):
        return expression.operand is not None and expression_contains_exists(
            expression.operand
        )
    return False


def _expression_monotonic(expression: Expression) -> bool:
    """EXISTS / NOT EXISTS make a filter non-monotonic; everything else is fine."""
    return not expression_contains_exists(expression)


def is_blocking(op: Operator) -> bool:
    """True when *this* operator must hold (some) results until quiescence.

    Blocking operators still consume deltas incrementally — the unified
    pipeline compiles them into stateful physical nodes — but part (or
    all) of their output can only be emitted once the underlying data has
    stopped growing:

    * ``LeftJoin`` — matched merges are monotonic, but the bare-left rows
      for never-matched solutions are only known at the end.
    * ``Minus`` — a late right-side solution can retract a left row.
    * ``OrderBy`` / ``Slice`` with ``OFFSET`` — position depends on the
      full result.
    * ``GroupBy`` — group membership and aggregates finalize at the end.
    * ``Filter`` / ``Extend`` whose expression mentions ``EXISTS``.

    Note this is a property of the operator itself, not its subtree; use
    :func:`repro.sparql.planner.annotate` for subtree-level analysis.
    """
    if isinstance(op, (LeftJoin, Minus, OrderBy, GroupBy)):
        return True
    if isinstance(op, Slice):
        return op.offset != 0
    if isinstance(op, (Filter, Extend)):
        return expression_contains_exists(op.expression)
    return False


def operator_children(op: Operator) -> tuple[Operator, ...]:
    """The direct child operators of ``op`` (empty for leaves)."""
    if isinstance(op, (Join, LeftJoin, Union, Minus)):
        return (op.left, op.right)
    if isinstance(
        op, (Filter, Extend, GraphOp, Project, Distinct, Reduced, Slice, OrderBy, GroupBy)
    ):
        return (op.input,)
    if isinstance(op, SubSelect):
        return (op.query.where,)
    return ()


def operator_variables(op: Operator) -> set[Variable]:
    """All variables that the operator may bind (in-scope variables)."""
    if isinstance(op, BGP):
        return op.variables()
    if isinstance(op, (Join, LeftJoin, Union, Minus)):
        left = operator_variables(op.left)
        if isinstance(op, Minus):
            return left
        return left | operator_variables(op.right)
    if isinstance(op, Filter):
        return operator_variables(op.input)
    if isinstance(op, Extend):
        return operator_variables(op.input) | {op.variable}
    if isinstance(op, GraphOp):
        inner = operator_variables(op.input)
        if isinstance(op.name, Variable):
            inner = inner | {op.name}
        return inner
    if isinstance(op, ValuesOp):
        return set(op.variables)
    if isinstance(op, Project):
        return set(op.variables)
    if isinstance(op, (Distinct, Reduced, Slice, OrderBy)):
        return operator_variables(op.input)
    if isinstance(op, GroupBy):
        result = {var for _, var in op.keys if var is not None}
        for expression, _ in ((k, v) for k, v in op.keys):
            if isinstance(expression, VariableExpr):
                result.add(expression.variable)
        result |= {var for var, _ in op.bindings}
        return result
    if isinstance(op, SubSelect):
        return set(op.query.variables())
    raise TypeError(f"unknown operator: {op!r}")
