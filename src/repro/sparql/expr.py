"""SPARQL expression evaluation.

Implements the SPARQL 1.1 operator semantics over the expression trees of
:mod:`repro.sparql.algebra`: effective boolean value, three-valued error
handling (errors raise :class:`ExpressionError`, which FILTER treats as
false), value comparison with type promotion, and the built-in function
library used in practice (string, numeric, date, hash, and term functions).

``EXISTS`` expressions need to evaluate a nested pattern, so the evaluator
accepts an ``exists_evaluator`` callback, which the snapshot evaluator wires
to itself.
"""

from __future__ import annotations

import hashlib
import math
import re
import uuid
from datetime import datetime, timezone
from decimal import Decimal, InvalidOperation
from typing import Callable, Optional
from urllib.parse import quote

from ..rdf.terms import (
    RDF_LANGSTRING,
    XSD_BOOLEAN,
    XSD_DATE,
    XSD_DATETIME,
    XSD_DECIMAL,
    XSD_DOUBLE,
    XSD_FLOAT,
    XSD_INTEGER,
    XSD_STRING,
    BlankNode,
    Literal,
    NamedNode,
    Term,
    Variable,
)
from .algebra import (
    AggregateExpr,
    And,
    Arithmetic,
    Compare,
    ExistsExpr,
    Expression,
    FunctionCall,
    InExpr,
    Not,
    Operator,
    Or,
    TermExpr,
    UnaryMinus,
    UnaryPlus,
    VariableExpr,
)
from .bindings import Binding

__all__ = [
    "ExpressionError",
    "ExpressionEvaluator",
    "effective_boolean_value",
    "compare_terms",
    "order_key",
    "DescendingKey",
]

_TRUE = Literal("true", datatype=XSD_BOOLEAN)
_FALSE = Literal("false", datatype=XSD_BOOLEAN)


class ExpressionError(ValueError):
    """A SPARQL expression evaluation error (maps to 'error' in the spec)."""


ExistsEvaluator = Callable[[Operator, Binding], bool]


def _boolean(value: bool) -> Literal:
    return _TRUE if value else _FALSE


def effective_boolean_value(term: Term) -> bool:
    """SPARQL 17.2.2 Effective Boolean Value."""
    if not isinstance(term, Literal):
        raise ExpressionError(f"no effective boolean value for {term!r}")
    if term.datatype == XSD_BOOLEAN:
        if term.value in ("true", "1"):
            return True
        if term.value in ("false", "0"):
            return False
        raise ExpressionError(f"ill-typed boolean {term.value!r}")
    if term.datatype in (XSD_STRING, RDF_LANGSTRING):
        return len(term.value) > 0
    if term.is_numeric:
        try:
            return float(term.to_python()) != 0.0 and not math.isnan(float(term.to_python()))
        except (ValueError, InvalidOperation):
            return False
    raise ExpressionError(f"no effective boolean value for {term!r}")


def _numeric_value(term: Term):
    if not isinstance(term, Literal) or not term.is_numeric:
        raise ExpressionError(f"not a numeric literal: {term!r}")
    try:
        return term.to_python()
    except (ValueError, InvalidOperation) as error:
        raise ExpressionError(str(error)) from error


def _promote(left, right):
    """Numeric type promotion: integer < decimal < double."""
    if isinstance(left, float) or isinstance(right, float):
        return float(left), float(right)
    if isinstance(left, Decimal) or isinstance(right, Decimal):
        return Decimal(left) if not isinstance(left, Decimal) else left, (
            Decimal(right) if not isinstance(right, Decimal) else right
        )
    return left, right


def _numeric_literal(value) -> Literal:
    if isinstance(value, bool):
        return _boolean(value)
    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, Decimal):
        text = format(value, "f")
        return Literal(text, datatype=XSD_DECIMAL)
    if isinstance(value, float):
        if math.isnan(value):
            return Literal("NaN", datatype=XSD_DOUBLE)
        if math.isinf(value):
            return Literal("INF" if value > 0 else "-INF", datatype=XSD_DOUBLE)
        return Literal(repr(value), datatype=XSD_DOUBLE)
    raise ExpressionError(f"cannot build numeric literal from {value!r}")


def compare_terms(left: Term, right: Term, operator: str) -> bool:
    """SPARQL value comparison for ``= != < <= > >=``.

    Numeric literals compare by value with promotion; strings by codepoint;
    booleans false<true; dateTimes chronologically.  ``=``/``!=`` fall back
    to RDF term equality for IRIs and blank nodes; ordering comparisons on
    unordered types raise :class:`ExpressionError`.
    """
    if operator in ("=", "!="):
        equal = _terms_equal(left, right)
        return equal if operator == "=" else not equal

    key_left = _ordering_value(left)
    key_right = _ordering_value(right)
    if type(key_left) is not type(key_right) and not (
        isinstance(key_left, (int, float, Decimal)) and isinstance(key_right, (int, float, Decimal))
    ):
        raise ExpressionError(f"cannot order {left!r} against {right!r}")
    if operator == "<":
        return key_left < key_right
    if operator == "<=":
        return key_left <= key_right
    if operator == ">":
        return key_left > key_right
    if operator == ">=":
        return key_left >= key_right
    raise ExpressionError(f"unknown comparison operator {operator!r}")


def _terms_equal(left: Term, right: Term) -> bool:
    if left == right:
        return True
    if isinstance(left, Literal) and isinstance(right, Literal):
        if left.is_numeric and right.is_numeric:
            try:
                a, b = _promote(_numeric_value(left), _numeric_value(right))
                return a == b
            except ExpressionError:
                return False
        if left.datatype == XSD_DATETIME and right.datatype == XSD_DATETIME:
            try:
                return left.to_python() == right.to_python()
            except ValueError:
                raise ExpressionError("ill-typed dateTime")
        if left.datatype == XSD_BOOLEAN and right.datatype == XSD_BOOLEAN:
            return left.to_python() == right.to_python()
        # Same lexical different unknown datatypes: spec says error, we say False.
        return False
    return False


def _ordering_value(term: Term):
    if not isinstance(term, Literal):
        raise ExpressionError(f"cannot order non-literal {term!r}")
    if term.is_numeric:
        value = _numeric_value(term)
        return float(value) if isinstance(value, (int, Decimal)) else value
    if term.datatype in (XSD_STRING, RDF_LANGSTRING):
        return term.value
    if term.datatype == XSD_BOOLEAN:
        return bool(term.to_python())
    if term.datatype == XSD_DATETIME:
        try:
            return term.to_python()
        except ValueError as error:
            raise ExpressionError(str(error)) from error
    if term.datatype == XSD_DATE:
        try:
            parsed = term.to_python()
        except ValueError as error:
            raise ExpressionError(str(error)) from error
        return datetime(parsed.year, parsed.month, parsed.day, tzinfo=timezone.utc)
    # Unknown datatypes order by lexical form (pragmatic extension).
    return term.value


def order_key(term: Optional[Term]):
    """Total order key for ORDER BY: unbound < blank < IRI < literal."""
    if term is None:
        return (0, "")
    if isinstance(term, BlankNode):
        return (1, term.value)
    if isinstance(term, NamedNode):
        return (2, term.value)
    try:
        value = _ordering_value(term)
    except ExpressionError:
        value = term.value
    if isinstance(value, bool):
        return (3, "boolean", int(value))
    if isinstance(value, (int, float, Decimal)):
        return (3, "number", float(value))
    if isinstance(value, datetime):
        return (3, "datetime", value.timestamp())
    return (3, "string", str(value))


class DescendingKey:
    """Wraps an :func:`order_key` to invert comparison for ``DESC`` sorts.

    Shared by the snapshot evaluator's sort and the incremental
    ``OrderSliceNode`` top-k heap, so both produce identical orderings.
    """

    __slots__ = ("key",)

    def __init__(self, key) -> None:
        self.key = key

    def __lt__(self, other: "DescendingKey") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DescendingKey) and other.key == self.key


class ExpressionEvaluator:
    """Evaluates expression trees against a :class:`Binding`."""

    def __init__(self, exists_evaluator: Optional[ExistsEvaluator] = None, now: Optional[datetime] = None) -> None:
        self._exists_evaluator = exists_evaluator
        self._now = now if now is not None else datetime.now(timezone.utc)
        self._bnode_map: dict[str, BlankNode] = {}
        self._bnode_counter = 0

    # ------------------------------------------------------------------

    def evaluate(self, expression: Expression, binding: Binding) -> Term:
        """Evaluate to an RDF term; raises :class:`ExpressionError` on error."""
        if isinstance(expression, TermExpr):
            return expression.term
        if isinstance(expression, VariableExpr):
            term = binding.get(expression.variable)
            if term is None:
                raise ExpressionError(f"unbound variable ?{expression.variable.value}")
            return term
        if isinstance(expression, And):
            return self._evaluate_and(expression, binding)
        if isinstance(expression, Or):
            return self._evaluate_or(expression, binding)
        if isinstance(expression, Not):
            return _boolean(not self.ebv(expression.operand, binding))
        if isinstance(expression, Compare):
            left = self.evaluate(expression.left, binding)
            right = self.evaluate(expression.right, binding)
            return _boolean(compare_terms(left, right, expression.operator))
        if isinstance(expression, Arithmetic):
            return self._evaluate_arithmetic(expression, binding)
        if isinstance(expression, UnaryMinus):
            value = _numeric_value(self.evaluate(expression.operand, binding))
            return _numeric_literal(-value)
        if isinstance(expression, UnaryPlus):
            value = _numeric_value(self.evaluate(expression.operand, binding))
            return _numeric_literal(value)
        if isinstance(expression, FunctionCall):
            return self._evaluate_function(expression, binding)
        if isinstance(expression, InExpr):
            return self._evaluate_in(expression, binding)
        if isinstance(expression, ExistsExpr):
            if self._exists_evaluator is None:
                raise ExpressionError("EXISTS is not supported in this context")
            result = self._exists_evaluator(expression.pattern, binding)
            return _boolean(not result if expression.negated else result)
        if isinstance(expression, AggregateExpr):
            raise ExpressionError("aggregate used outside of GROUP BY context")
        raise ExpressionError(f"unknown expression: {expression!r}")

    def ebv(self, expression: Expression, binding: Binding) -> bool:
        """Effective boolean value of an expression (errors propagate)."""
        return effective_boolean_value(self.evaluate(expression, binding))

    def satisfied(self, expression: Expression, binding: Binding) -> bool:
        """FILTER semantics: evaluation errors count as false."""
        try:
            return self.ebv(expression, binding)
        except ExpressionError:
            return False

    # ------------------------------------------------------------------

    def _evaluate_and(self, expression: And, binding: Binding) -> Literal:
        # SPARQL logical AND with error tolerance: F && error = F.
        try:
            left = self.ebv(expression.left, binding)
        except ExpressionError:
            if not self.ebv(expression.right, binding):
                return _FALSE
            raise
        if not left:
            return _FALSE
        return _boolean(self.ebv(expression.right, binding))

    def _evaluate_or(self, expression: Or, binding: Binding) -> Literal:
        # SPARQL logical OR with error tolerance: T || error = T.
        try:
            left = self.ebv(expression.left, binding)
        except ExpressionError:
            if self.ebv(expression.right, binding):
                return _TRUE
            raise
        if left:
            return _TRUE
        return _boolean(self.ebv(expression.right, binding))

    def _evaluate_arithmetic(self, expression: Arithmetic, binding: Binding) -> Literal:
        left = _numeric_value(self.evaluate(expression.left, binding))
        right = _numeric_value(self.evaluate(expression.right, binding))
        left, right = _promote(left, right)
        operator = expression.operator
        if operator == "+":
            return _numeric_literal(left + right)
        if operator == "-":
            return _numeric_literal(left - right)
        if operator == "*":
            return _numeric_literal(left * right)
        if operator == "/":
            if right == 0:
                if isinstance(left, float):
                    if left == 0:
                        return _numeric_literal(float("nan"))
                    return _numeric_literal(math.copysign(float("inf"), left))
                raise ExpressionError("division by zero")
            if isinstance(left, int) and isinstance(right, int):
                return _numeric_literal(Decimal(left) / Decimal(right))
            return _numeric_literal(left / right)
        raise ExpressionError(f"unknown arithmetic operator {operator!r}")

    def _evaluate_in(self, expression: InExpr, binding: Binding) -> Literal:
        operand = self.evaluate(expression.operand, binding)
        found = False
        saw_error = False
        for choice in expression.choices:
            try:
                value = self.evaluate(choice, binding)
                if _terms_equal(operand, value):
                    found = True
                    break
            except ExpressionError:
                saw_error = True
        if not found and saw_error:
            raise ExpressionError("IN list evaluation error")
        return _boolean(not found if expression.negated else found)

    # ------------------------------------------------------------------
    # built-in functions
    # ------------------------------------------------------------------

    def _evaluate_function(self, call: FunctionCall, binding: Binding) -> Term:
        name = call.name

        if name == "BOUND":
            argument = call.args[0]
            if not isinstance(argument, VariableExpr):
                raise ExpressionError("BOUND requires a variable")
            return _boolean(argument.variable in binding)
        if name == "COALESCE":
            for argument in call.args:
                try:
                    return self.evaluate(argument, binding)
                except ExpressionError:
                    continue
            raise ExpressionError("COALESCE: all arguments errored")
        if name == "IF":
            condition = self.ebv(call.args[0], binding)
            return self.evaluate(call.args[1] if condition else call.args[2], binding)

        args = [self.evaluate(argument, binding) for argument in call.args]

        if name == "STR":
            term = args[0]
            if isinstance(term, NamedNode):
                return Literal(term.value)
            if isinstance(term, Literal):
                return Literal(term.value)
            raise ExpressionError("STR on blank node")
        if name in ("IRI", "URI"):
            term = args[0]
            if isinstance(term, NamedNode):
                return term
            if isinstance(term, Literal) and term.datatype in (XSD_STRING,):
                return NamedNode(term.value)
            raise ExpressionError("IRI requires a string or IRI")
        if name == "BNODE":
            if not args:
                self._bnode_counter += 1
                return BlankNode(f"expr{self._bnode_counter}")
            label = _string_value(args[0])
            if label not in self._bnode_map:
                self._bnode_counter += 1
                self._bnode_map[label] = BlankNode(f"expr{self._bnode_counter}")
            return self._bnode_map[label]
        if name == "LANG":
            term = args[0]
            if not isinstance(term, Literal):
                raise ExpressionError("LANG requires a literal")
            return Literal(term.language)
        if name == "LANGMATCHES":
            tag = _string_value(args[0]).lower()
            pattern = _string_value(args[1]).lower()
            if pattern == "*":
                return _boolean(bool(tag))
            return _boolean(tag == pattern or tag.startswith(pattern + "-"))
        if name == "DATATYPE":
            term = args[0]
            if not isinstance(term, Literal):
                raise ExpressionError("DATATYPE requires a literal")
            return NamedNode(term.datatype)
        if name == "SAMETERM":
            return _boolean(args[0] == args[1])
        if name in ("ISIRI", "ISURI"):
            return _boolean(isinstance(args[0], NamedNode))
        if name == "ISBLANK":
            return _boolean(isinstance(args[0], BlankNode))
        if name == "ISLITERAL":
            return _boolean(isinstance(args[0], Literal))
        if name == "ISNUMERIC":
            return _boolean(isinstance(args[0], Literal) and args[0].is_numeric)

        if name == "STRLEN":
            return _numeric_literal(len(_string_value(args[0])))
        if name == "UCASE":
            return _copy_string_literal(args[0], _string_value(args[0]).upper())
        if name == "LCASE":
            return _copy_string_literal(args[0], _string_value(args[0]).lower())
        if name == "CONCAT":
            return Literal("".join(_string_value(a) for a in args))
        if name == "CONTAINS":
            return _boolean(_string_value(args[1]) in _string_value(args[0]))
        if name == "STRSTARTS":
            return _boolean(_string_value(args[0]).startswith(_string_value(args[1])))
        if name == "STRENDS":
            return _boolean(_string_value(args[0]).endswith(_string_value(args[1])))
        if name == "STRBEFORE":
            haystack, needle = _string_value(args[0]), _string_value(args[1])
            index = haystack.find(needle)
            return _copy_string_literal(args[0], haystack[:index] if index >= 0 else "")
        if name == "STRAFTER":
            haystack, needle = _string_value(args[0]), _string_value(args[1])
            index = haystack.find(needle)
            return _copy_string_literal(
                args[0], haystack[index + len(needle):] if index >= 0 else ""
            )
        if name == "SUBSTR":
            source = _string_value(args[0])
            start = int(_numeric_value(args[1]))
            if len(args) > 2:
                length = int(_numeric_value(args[2]))
                return _copy_string_literal(args[0], source[start - 1:start - 1 + length])
            return _copy_string_literal(args[0], source[start - 1:])
        if name == "REPLACE":
            source = _string_value(args[0])
            pattern = _string_value(args[1])
            replacement = _string_value(args[2]).replace("$", "\\")
            flags = _regex_flags(_string_value(args[3])) if len(args) > 3 else 0
            return _copy_string_literal(args[0], re.sub(pattern, replacement, source, flags=flags))
        if name == "REGEX":
            source = _string_value(args[0])
            pattern = _string_value(args[1])
            flags = _regex_flags(_string_value(args[2])) if len(args) > 2 else 0
            return _boolean(re.search(pattern, source, flags=flags) is not None)
        if name == "ENCODE_FOR_URI":
            return Literal(quote(_string_value(args[0]), safe=""))
        if name == "STRLANG":
            return Literal(_string_value(args[0]), language=_string_value(args[1]))
        if name == "STRDT":
            datatype = args[1]
            if not isinstance(datatype, NamedNode):
                raise ExpressionError("STRDT requires an IRI datatype")
            return Literal(_string_value(args[0]), datatype=datatype.value)

        if name in ("ABS", "CEIL", "FLOOR", "ROUND"):
            value = _numeric_value(args[0])
            if name == "ABS":
                return _numeric_literal(abs(value))
            if name == "CEIL":
                return _numeric_literal(int(math.ceil(value)))
            if name == "FLOOR":
                return _numeric_literal(int(math.floor(value)))
            return _numeric_literal(int(Decimal(value).quantize(Decimal("1"), rounding="ROUND_HALF_UP")) if not isinstance(value, float) else round(value))
        if name == "RAND":
            # Deterministic stand-in: SPARQL RAND has no seeding facility; a
            # reproducible engine returns a fixed midpoint value.
            return _numeric_literal(0.5)

        if name in ("YEAR", "MONTH", "DAY", "HOURS", "MINUTES", "SECONDS"):
            moment = _datetime_value(args[0])
            if name == "YEAR":
                return _numeric_literal(moment.year)
            if name == "MONTH":
                return _numeric_literal(moment.month)
            if name == "DAY":
                return _numeric_literal(moment.day)
            if name == "HOURS":
                return _numeric_literal(moment.hour)
            if name == "MINUTES":
                return _numeric_literal(moment.minute)
            return _numeric_literal(Decimal(moment.second) + Decimal(moment.microsecond) / 1_000_000)
        if name == "NOW":
            return Literal(self._now.isoformat(), datatype=XSD_DATETIME)
        if name == "TZ":
            moment = _datetime_value(args[0])
            if moment.tzinfo is None:
                return Literal("")
            offset = moment.utcoffset()
            if offset is None or offset.total_seconds() == 0:
                return Literal("Z")
            minutes = int(offset.total_seconds() // 60)
            sign = "+" if minutes >= 0 else "-"
            minutes = abs(minutes)
            return Literal(f"{sign}{minutes // 60:02d}:{minutes % 60:02d}")
        if name == "TIMEZONE":
            moment = _datetime_value(args[0])
            offset = moment.utcoffset()
            if offset is None:
                raise ExpressionError("no timezone")
            total = int(offset.total_seconds())
            return Literal(_duration_lexical(total), datatype=XSD + "dayTimeDuration")

        if name == "UUID":
            return NamedNode(f"urn:uuid:{uuid.uuid5(uuid.NAMESPACE_URL, str(self._now))}")
        if name == "STRUUID":
            return Literal(str(uuid.uuid5(uuid.NAMESPACE_URL, str(self._now))))
        if name in ("MD5", "SHA1", "SHA256", "SHA384", "SHA512"):
            algorithm = name.lower()
            digest = hashlib.new(algorithm, _string_value(args[0]).encode("utf-8")).hexdigest()
            return Literal(digest)

        raise ExpressionError(f"unknown function {name!r}")


XSD = "http://www.w3.org/2001/XMLSchema#"


def _duration_lexical(total_seconds: int) -> str:
    sign = "-" if total_seconds < 0 else ""
    total_seconds = abs(total_seconds)
    hours, remainder = divmod(total_seconds, 3600)
    minutes, seconds = divmod(remainder, 60)
    parts = [sign, "PT"]
    if hours:
        parts.append(f"{hours}H")
    if minutes:
        parts.append(f"{minutes}M")
    if seconds or (not hours and not minutes):
        parts.append(f"{seconds}S")
    return "".join(parts)


def _string_value(term: Term) -> str:
    if isinstance(term, Literal):
        return term.value
    if isinstance(term, NamedNode):
        raise ExpressionError(f"expected string, got IRI {term.value!r}")
    raise ExpressionError(f"expected string, got {term!r}")


def _copy_string_literal(template: Term, value: str) -> Literal:
    """Preserve the language tag of the first argument per the spec."""
    if isinstance(template, Literal) and template.language:
        return Literal(value, language=template.language)
    return Literal(value)


def _datetime_value(term: Term) -> datetime:
    if isinstance(term, Literal) and term.datatype in (XSD_DATETIME, XSD_DATE):
        try:
            value = term.to_python()
        except ValueError as error:
            raise ExpressionError(str(error)) from error
        if isinstance(value, datetime):
            return value
        return datetime(value.year, value.month, value.day, tzinfo=timezone.utc)
    raise ExpressionError(f"expected dateTime, got {term!r}")


def _regex_flags(letters: str) -> int:
    flags = 0
    for letter in letters:
        if letter == "i":
            flags |= re.IGNORECASE
        elif letter == "s":
            flags |= re.DOTALL
        elif letter == "m":
            flags |= re.MULTILINE
        elif letter == "x":
            flags |= re.VERBOSE
        else:
            raise ExpressionError(f"unsupported regex flag {letter!r}")
    return flags
