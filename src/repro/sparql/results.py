"""SPARQL result serialization: JSON results format, CSV, and the
line-delimited JSON bindings the paper's CLI prints (Fig. 2)."""

from __future__ import annotations

import json
from typing import Iterable, Optional, Sequence

from ..rdf.terms import RDF_LANGSTRING, XSD_STRING, BlankNode, Literal, NamedNode, Term, Variable
from .bindings import Binding

__all__ = [
    "binding_to_json_dict",
    "results_to_sparql_json",
    "results_to_csv",
    "results_to_tsv",
    "results_to_sparql_xml",
    "binding_to_cli_line",
]


def _term_to_json(term: Term) -> dict:
    if isinstance(term, NamedNode):
        return {"type": "uri", "value": term.value}
    if isinstance(term, BlankNode):
        return {"type": "bnode", "value": term.value}
    if isinstance(term, Literal):
        result: dict = {"type": "literal", "value": term.value}
        if term.language:
            result["xml:lang"] = term.language
        elif term.datatype and term.datatype not in (XSD_STRING,):
            result["datatype"] = term.datatype
        return result
    raise TypeError(f"cannot serialize term {term!r}")


def binding_to_json_dict(binding: Binding) -> dict:
    """One solution as a SPARQL-JSON-results binding object."""
    return {variable.value: _term_to_json(term) for variable, term in binding.items()}


def results_to_sparql_json(
    variables: Sequence[Variable], bindings: Iterable[Binding]
) -> str:
    """Full application/sparql-results+json document."""
    document = {
        "head": {"vars": [v.value for v in variables]},
        "results": {"bindings": [binding_to_json_dict(b) for b in bindings]},
    }
    return json.dumps(document, indent=2)


def _term_to_csv(term: Optional[Term]) -> str:
    if term is None:
        return ""
    if isinstance(term, NamedNode):
        return term.value
    if isinstance(term, BlankNode):
        return f"_:{term.value}"
    if isinstance(term, Literal):
        return term.value
    raise TypeError(f"cannot serialize term {term!r}")


def results_to_csv(variables: Sequence[Variable], bindings: Iterable[Binding]) -> str:
    """text/csv results per the SPARQL 1.1 CSV results format."""
    def escape(cell: str) -> str:
        if any(c in cell for c in ",\"\n\r"):
            return '"' + cell.replace('"', '""') + '"'
        return cell

    lines = [",".join(v.value for v in variables)]
    for binding in bindings:
        lines.append(",".join(escape(_term_to_csv(binding.get(v))) for v in variables))
    return "\r\n".join(lines) + "\r\n"


def _xml_escape(text: str) -> str:
    return (
        text.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def results_to_sparql_xml(
    variables: Sequence[Variable], bindings: Iterable[Binding]
) -> str:
    """application/sparql-results+xml document."""
    lines = [
        '<?xml version="1.0"?>',
        '<sparql xmlns="http://www.w3.org/2005/sparql-results#">',
        "  <head>",
    ]
    for variable in variables:
        lines.append(f'    <variable name="{_xml_escape(variable.value)}"/>')
    lines.append("  </head>")
    lines.append("  <results>")
    for binding in bindings:
        lines.append("    <result>")
        for variable, term in binding.items():
            name = _xml_escape(variable.value)
            if isinstance(term, NamedNode):
                body = f"<uri>{_xml_escape(term.value)}</uri>"
            elif isinstance(term, BlankNode):
                body = f"<bnode>{_xml_escape(term.value)}</bnode>"
            else:
                value = _xml_escape(term.value)
                if term.language:
                    body = f'<literal xml:lang="{term.language}">{value}</literal>'
                elif term.datatype and term.datatype != XSD_STRING:
                    body = f'<literal datatype="{_xml_escape(term.datatype)}">{value}</literal>'
                else:
                    body = f"<literal>{value}</literal>"
            lines.append(f'      <binding name="{name}">{body}</binding>')
        lines.append("    </result>")
    lines.append("  </results>")
    lines.append("</sparql>")
    return "\n".join(lines) + "\n"


def _term_to_tsv(term: Optional[Term]) -> str:
    if term is None:
        return ""
    from ..rdf.terms import term_to_ntriples

    rendered = term_to_ntriples(term)
    return rendered.replace("\t", "\\t").replace("\n", "\\n").replace("\r", "\\r")


def results_to_tsv(variables: Sequence[Variable], bindings: Iterable[Binding]) -> str:
    """text/tab-separated-values results per the SPARQL 1.1 TSV format.

    Unlike CSV, TSV keeps full term syntax (angle brackets, quoted
    literals with datatypes), so it round-trips losslessly.
    """
    lines = ["\t".join(f"?{v.value}" for v in variables)]
    for binding in bindings:
        lines.append("\t".join(_term_to_tsv(binding.get(v)) for v in variables))
    return "\n".join(lines) + "\n"


def _term_to_cli(term: Term) -> str:
    """Comunica-CLI-style rendering: literals keep quotes, typed literals
    append ``^^datatype`` — matching the output shown in the paper's Fig. 2."""
    if isinstance(term, NamedNode):
        return term.value
    if isinstance(term, BlankNode):
        return f"_:{term.value}"
    if isinstance(term, Literal):
        body = f'"{term.value}"'
        if term.language:
            return f"{body}@{term.language}"
        if term.datatype and term.datatype not in (XSD_STRING, RDF_LANGSTRING):
            return f"{body}^^{term.datatype}"
        return body
    raise TypeError(f"cannot serialize term {term!r}")


def binding_to_cli_line(binding: Binding, variables: Sequence[Variable]) -> str:
    """One line of the CLI's streaming JSON output (Fig. 2 format)."""
    payload = {
        variable.value: _term_to_cli(binding[variable])
        for variable in variables
        if variable in binding
    }
    return json.dumps(payload, ensure_ascii=False)
