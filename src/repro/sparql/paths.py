"""Property-path evaluation over a :class:`repro.rdf.dataset.Graph`.

Used by the snapshot evaluator for all path forms, and by the incremental
pipeline for the transitive forms (``*``, ``+``) which it re-evaluates per
delta batch.  Non-transitive forms (predicate, inverse, sequence,
alternative, zero-or-one, negated sets) are compiled away by the pipeline
into ordinary scans/joins/unions.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..rdf.dataset import Graph
from ..rdf.terms import Term, Variable
from .algebra import (
    AlternativePath,
    InversePath,
    NegatedPropertySet,
    OneOrMorePath,
    Path,
    PredicatePath,
    SequencePath,
    ZeroOrMorePath,
    ZeroOrOnePath,
)

__all__ = ["evaluate_path", "path_predicates"]


def _concrete(term: Optional[Term]) -> Optional[Term]:
    if term is None or isinstance(term, Variable):
        return None
    return term


def evaluate_path(
    graph: Graph,
    subject: Optional[Term],
    path: Path,
    object: Optional[Term],
) -> Iterator[tuple[Term, Term]]:
    """Yield ``(subject, object)`` pairs connected by ``path``.

    ``subject``/``object`` may be concrete terms (constraining the ends) or
    ``None``/variables (wildcards).  Duplicate pairs are suppressed, matching
    SPARQL's existential path semantics.
    """
    seen: set[tuple[Term, Term]] = set()
    for pair in _eval(graph, _concrete(subject), path, _concrete(object)):
        if pair not in seen:
            seen.add(pair)
            yield pair


def _eval(
    graph: Graph, subject: Optional[Term], path: Path, object: Optional[Term]
) -> Iterator[tuple[Term, Term]]:
    if isinstance(path, PredicatePath):
        for triple in graph.match(subject, path.predicate, object):
            yield triple.subject, triple.object
        return

    if isinstance(path, InversePath):
        for obj, subj in _eval(graph, object, path.path, subject):
            yield subj, obj
        return

    if isinstance(path, SequencePath):
        yield from _eval_sequence(graph, subject, path.steps, object)
        return

    if isinstance(path, AlternativePath):
        for option in path.options:
            yield from _eval(graph, subject, option, object)
        return

    if isinstance(path, ZeroOrOnePath):
        yield from _eval_zero_width(graph, subject, object)
        yield from _eval(graph, subject, path.path, object)
        return

    if isinstance(path, ZeroOrMorePath):
        yield from _eval_zero_width(graph, subject, object)
        yield from _eval_transitive(graph, subject, path.path, object)
        return

    if isinstance(path, OneOrMorePath):
        yield from _eval_transitive(graph, subject, path.path, object)
        return

    if isinstance(path, NegatedPropertySet):
        forward = set(path.forward)
        inverse = set(path.inverse)
        if forward or not inverse:
            for triple in graph.match(subject, None, object):
                if triple.predicate not in forward:
                    yield triple.subject, triple.object
        if inverse:
            for triple in graph.match(object, None, subject):
                if triple.predicate not in inverse:
                    yield triple.object, triple.subject
        return

    raise TypeError(f"unknown path: {path!r}")


def _eval_sequence(
    graph: Graph, subject: Optional[Term], steps: tuple[Path, ...], object: Optional[Term]
) -> Iterator[tuple[Term, Term]]:
    if len(steps) == 1:
        yield from _eval(graph, subject, steps[0], object)
        return
    first, rest = steps[0], steps[1:]
    # Evaluate the more-bound side first for efficiency.
    if subject is not None or object is None:
        for start, middle in _eval(graph, subject, first, None):
            for _, end in _eval_sequence(graph, middle, rest, object):
                yield start, end
    else:
        for middle, end in _eval_sequence(graph, None, rest, object):
            for start, _ in _eval(graph, subject, first, middle):
                yield start, end


def _eval_zero_width(
    graph: Graph, subject: Optional[Term], object: Optional[Term]
) -> Iterator[tuple[Term, Term]]:
    """The zero-length part of ``?``/``*``: every node relates to itself."""
    if subject is not None and object is not None:
        if subject == object:
            yield subject, object
        return
    if subject is not None:
        yield subject, subject
        return
    if object is not None:
        yield object, object
        return
    for node in _all_nodes(graph):
        yield node, node


def _all_nodes(graph: Graph) -> Iterator[Term]:
    seen: set[Term] = set()
    for triple in graph:
        for term in (triple.subject, triple.object):
            if term not in seen:
                seen.add(term)
                yield term


def _eval_transitive(
    graph: Graph, subject: Optional[Term], inner: Path, object: Optional[Term]
) -> Iterator[tuple[Term, Term]]:
    """One-or-more closure via BFS from the bound side (or every start node)."""
    if subject is not None:
        yield from ((subject, reached) for reached in _bfs_forward(graph, subject, inner, object))
        return
    if object is not None:
        yield from ((reached, object) for reached in _bfs_backward(graph, object, inner))
        return
    starts = {pair[0] for pair in _eval(graph, None, inner, None)}
    for start in starts:
        for reached in _bfs_forward(graph, start, inner, None):
            yield start, reached


def _bfs_forward(
    graph: Graph, start: Term, inner: Path, target: Optional[Term]
) -> Iterator[Term]:
    visited: set[Term] = set()
    frontier = [start]
    while frontier:
        next_frontier: list[Term] = []
        for node in frontier:
            for _, reached in _eval(graph, node, inner, None):
                if reached not in visited:
                    visited.add(reached)
                    next_frontier.append(reached)
                    if target is None or reached == target:
                        yield reached
        frontier = next_frontier


def _bfs_backward(graph: Graph, end: Term, inner: Path) -> Iterator[Term]:
    visited: set[Term] = set()
    frontier = [end]
    while frontier:
        next_frontier: list[Term] = []
        for node in frontier:
            for reached, _ in _eval(graph, None, inner, node):
                if reached not in visited:
                    visited.add(reached)
                    next_frontier.append(reached)
                    yield reached
        frontier = next_frontier


def path_predicates(path: Path) -> set:
    """All predicate IRIs mentioned in a path (for cMatch link extraction)."""
    if isinstance(path, PredicatePath):
        return {path.predicate}
    if isinstance(path, InversePath):
        return path_predicates(path.path)
    if isinstance(path, SequencePath):
        result: set = set()
        for step in path.steps:
            result |= path_predicates(step)
        return result
    if isinstance(path, AlternativePath):
        result = set()
        for option in path.options:
            result |= path_predicates(option)
        return result
    if isinstance(path, (ZeroOrMorePath, OneOrMorePath, ZeroOrOnePath)):
        return path_predicates(path.path)
    if isinstance(path, NegatedPropertySet):
        return set(path.forward) | set(path.inverse)
    raise TypeError(f"unknown path: {path!r}")
