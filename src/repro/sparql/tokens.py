"""SPARQL tokenizer.

Converts query text into a flat token stream consumed by the recursive
descent parser.  Token kinds:

==========  =====================================================
kind        examples
==========  =====================================================
IRIREF      ``<http://example.org/x>`` (value without brackets)
PNAME       ``foaf:name``, ``:x``, ``snvoc:`` (value as written)
VAR         ``?x`` / ``$x`` (value without sigil)
BLANK       ``_:b1`` (value without ``_:``)
STRING      quoted string (value unescaped); ``language``/``datatype``
            are attached by the parser from following tokens
NUMBER      integer/decimal/double (value as written)
LANGTAG     ``@en`` (value without ``@``)
KEYWORD     uppercased bare word: ``SELECT``, ``WHERE``, ``a`` → ``A``
PUNCT       one of the operator/punctuation lexemes
ANON        ``[]`` (anonymous blank node)
NIL         ``()`` (empty collection)
EOF         end of input
==========  =====================================================
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..rdf.terms import unescape_string_literal

__all__ = ["Token", "TokenizeError", "tokenize"]


class TokenizeError(ValueError):
    """Raised on unrecognized input, with position context."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


_IRIREF = re.compile(r"<([^<>\"{}|^`\\\x00-\x20]*)>")
_VAR = re.compile(r"[?$]([A-Za-z0-9_À-￿]+)")
_BLANK = re.compile(r"_:([A-Za-z0-9_\-.À-￿]+)")
_PNAME = re.compile(r"([A-Za-z0-9_\-.À-￿]*):([A-Za-z0-9_\-.%À-￿]*)")
_NUMBER = re.compile(r"[+-]?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)")
_WORD = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_LANGTAG = re.compile(r"@([a-zA-Z]+(?:-[a-zA-Z0-9]+)*)")
_ANON = re.compile(r"\[\s*\]")
_NIL = re.compile(r"\(\s*\)")

# Multi-character punctuation first, then single characters.
_PUNCT = [
    "^^",
    "&&",
    "||",
    "!=",
    "<=",
    ">=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ".",
    ";",
    ",",
    "*",
    "/",
    "|",
    "^",
    "?",
    "+",
    "-",
    "=",
    "<",
    ">",
    "!",
]

#: Bare words that are SPARQL keywords (matched case-insensitively).
KEYWORDS = frozenset(
    {
        "SELECT", "ASK", "CONSTRUCT", "DESCRIBE", "WHERE", "PREFIX", "BASE",
        "DISTINCT", "REDUCED", "AS", "FROM", "NAMED", "ORDER", "BY", "ASC",
        "DESC", "LIMIT", "OFFSET", "GROUP", "HAVING", "OPTIONAL", "UNION",
        "MINUS", "GRAPH", "FILTER", "BIND", "VALUES", "UNDEF", "EXISTS",
        "NOT", "IN", "SERVICE", "SILENT", "TRUE", "FALSE", "A",
        # built-in call keywords (parsed as function names)
        "STR", "LANG", "LANGMATCHES", "DATATYPE", "BOUND", "IRI", "URI",
        "BNODE", "RAND", "ABS", "CEIL", "FLOOR", "ROUND", "CONCAT", "STRLEN",
        "UCASE", "LCASE", "ENCODE_FOR_URI", "CONTAINS", "STRSTARTS",
        "STRENDS", "STRBEFORE", "STRAFTER", "YEAR", "MONTH", "DAY", "HOURS",
        "MINUTES", "SECONDS", "TIMEZONE", "TZ", "NOW", "UUID", "STRUUID",
        "MD5", "SHA1", "SHA256", "SHA384", "SHA512", "COALESCE", "IF",
        "STRLANG", "STRDT", "SAMETERM", "ISIRI", "ISURI", "ISBLANK",
        "ISLITERAL", "ISNUMERIC", "REGEX", "SUBSTR", "REPLACE",
        "COUNT", "SUM", "MIN", "MAX", "AVG", "SAMPLE", "GROUP_CONCAT",
        "SEPARATOR",
    }
)


def tokenize(text: str) -> list[Token]:
    """Tokenize a SPARQL query; the result always ends with an EOF token."""
    tokens: list[Token] = []
    pos = 0
    length = len(text)
    line = 1
    line_start = 0

    def location() -> tuple[int, int]:
        return line, pos - line_start + 1

    while pos < length:
        char = text[pos]
        if char == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if char in " \t\r":
            pos += 1
            continue
        if char == "#":
            newline = text.find("\n", pos)
            pos = length if newline < 0 else newline
            continue

        lin, col = location()

        if char == "<":
            match = _IRIREF.match(text, pos)
            if match:
                value = match.group(1)
                if "\\" in value:
                    value = unescape_string_literal(value)
                tokens.append(Token("IRIREF", value, lin, col))
                pos = match.end()
                continue
            # fall through to punctuation "<", "<="

        if char in "?$":
            match = _VAR.match(text, pos)
            if match:
                tokens.append(Token("VAR", match.group(1), lin, col))
                pos = match.end()
                continue
            # bare "?" is the zero-or-one path modifier

        if char == "_" and text.startswith("_:", pos):
            match = _BLANK.match(text, pos)
            if not match:
                raise TokenizeError("malformed blank node label", lin, col)
            label = match.group(1)
            end = match.end()
            while label.endswith("."):
                label = label[:-1]
                end -= 1
            tokens.append(Token("BLANK", label, lin, col))
            pos = end
            continue

        if char in "\"'":
            value, pos = _read_string(text, pos, lin, col)
            tokens.append(Token("STRING", value, lin, col))
            continue

        if char == "@":
            match = _LANGTAG.match(text, pos)
            if not match:
                raise TokenizeError("malformed language tag", lin, col)
            tokens.append(Token("LANGTAG", match.group(1), lin, col))
            pos = match.end()
            continue

        if char.isdigit() or (char in "+-." and _NUMBER.match(text, pos) and _NUMBER.match(text, pos).end() > pos + (1 if char in "+-" else 0)):
            # Disambiguate "." as punctuation from ".5" as a number, and
            # "+"/"-" signs from arithmetic operators: a sign is part of the
            # number only when directly followed by a digit or dot-digit.
            match = _NUMBER.match(text, pos)
            if match and match.group(0) not in ("+", "-", "."):
                tokens.append(Token("NUMBER", match.group(0), lin, col))
                pos = match.end()
                continue

        if char == "[":
            match = _ANON.match(text, pos)
            if match:
                tokens.append(Token("ANON", "[]", lin, col))
                pos = match.end()
                continue

        if char == "(":
            match = _NIL.match(text, pos)
            if match:
                tokens.append(Token("NIL", "()", lin, col))
                pos = match.end()
                continue

        # Prefixed names before bare words: "foaf:name" must not split.
        pname = _PNAME.match(text, pos)
        if pname and (char.isalnum() or char == "_" or char == ":" or ord(char) >= 0xC0):
            value = pname.group(0)
            end = pname.end()
            while value.endswith("."):
                value = value[:-1]
                end -= 1
            tokens.append(Token("PNAME", value, lin, col))
            pos = end
            continue

        word = _WORD.match(text, pos)
        if word:
            upper = word.group(0).upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, lin, col))
            else:
                # Unknown bare word: treat as keyword-like so the parser can
                # produce a targeted error message.
                tokens.append(Token("KEYWORD", upper, lin, col))
            pos = word.end()
            continue

        for punct in _PUNCT:
            if text.startswith(punct, pos):
                tokens.append(Token("PUNCT", punct, lin, col))
                pos += len(punct)
                break
        else:
            raise TokenizeError(f"unexpected character {char!r}", lin, col)

    tokens.append(Token("EOF", "", line, 1))
    return tokens


def _read_string(text: str, pos: int, line: int, column: int) -> tuple[str, int]:
    quote = text[pos]
    long_quote = quote * 3
    if text.startswith(long_quote, pos):
        end = text.find(long_quote, pos + 3)
        while end > 0 and _escaped_at(text, end):
            end = text.find(long_quote, end + 1)
        if end < 0:
            raise TokenizeError("unterminated long string", line, column)
        return unescape_string_literal(text[pos + 3:end]), end + 3
    index = pos + 1
    while index < len(text):
        char = text[index]
        if char == "\\":
            index += 2
            continue
        if char == quote:
            return unescape_string_literal(text[pos + 1:index]), index + 1
        if char == "\n":
            break
        index += 1
    raise TokenizeError("unterminated string", line, column)


def _escaped_at(text: str, index: int) -> bool:
    backslashes = 0
    index -= 1
    while index >= 0 and text[index] == "\\":
        backslashes += 1
        index -= 1
    return backslashes % 2 == 1
