"""Zero-knowledge query planning (Hartig, ESWC 2011).

Link traversal engines have no cardinality statistics for the data they will
encounter, so join ordering must rely on the *shape* of the patterns alone.
This module implements the zero-knowledge heuristics used by the paper's
engine to order the triple patterns of a BGP:

1. **Seed filter**: patterns mentioning a seed IRI (or any IRI — IRIs are
   dereferenceable anchors) come first.
2. **Bound-term count**: patterns with more bound (non-variable) positions
   are more selective and are scheduled earlier; already-bound variables
   (those appearing in previously chosen patterns) count as bound.
3. **Position weighting**: a bound subject is worth more than a bound
   object, which is worth more than a bound predicate — mirroring the
   typical selectivity in Web data (subject pages enumerate few triples,
   predicates are near-universal).
4. **Connectedness**: among equals, prefer patterns sharing a variable with
   the already-ordered prefix, avoiding Cartesian products.

The output is a permutation of the input patterns; the physical pipeline
builds a left-deep join tree in that order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..rdf.terms import NamedNode, Term, Variable
from ..rdf.triples import TriplePattern
from .algebra import Operator, PathPattern, is_blocking, operator_children

__all__ = [
    "plan_bgp_order",
    "pattern_score",
    "LogicalNode",
    "annotate",
    "blocking_operators",
    "blocking_boundary",
]

_SUBJECT_WEIGHT = 4
_OBJECT_WEIGHT = 2
_PREDICATE_WEIGHT = 1


# ---------------------------------------------------------------------------
# Logical plan: monotonicity annotation + blocking boundary
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class LogicalNode:
    """One algebra operator annotated for the logical→physical compiler.

    ``blocking`` marks operators that hold (part of) their output until
    traversal quiescence; ``monotonic`` means the whole subtree streams —
    every emitted solution stays valid as the data grows.  The *blocking
    boundary* of a plan is the set of lowest blocking nodes: everything
    beneath the boundary streams during traversal, everything on or above
    it participates in the finalize phase.
    """

    op: Operator
    monotonic: bool
    blocking: bool
    children: tuple["LogicalNode", ...]


def annotate(op: Operator) -> LogicalNode:
    """Annotate an algebra tree bottom-up with monotonicity/blocking flags."""
    children = tuple(annotate(child) for child in operator_children(op))
    blocking = is_blocking(op)
    monotonic = not blocking and all(child.monotonic for child in children)
    return LogicalNode(op, monotonic, blocking, children)


def blocking_operators(plan: LogicalNode) -> list[LogicalNode]:
    """Every blocking node in the plan, in pre-order."""
    found: list[LogicalNode] = []
    stack = [plan]
    while stack:
        node = stack.pop()
        if node.blocking:
            found.append(node)
        stack.extend(reversed(node.children))
    return found


def blocking_boundary(plan: LogicalNode) -> list[LogicalNode]:
    """The lowest blocking nodes — the streaming/finalize frontier.

    A boundary node is a blocking operator all of whose children are fully
    monotonic subtrees: deltas stream freely up to (and into) it, and its
    held-back output is released by the finalize phase.  An empty list
    means the whole plan streams.
    """
    return [node for node in blocking_operators(plan) if all(c.monotonic for c in node.children)]


def pattern_score(
    pattern: TriplePattern | PathPattern,
    bound_variables: frozenset[Variable],
    seed_iris: frozenset[str],
) -> tuple[int, int, int]:
    """Score a pattern; higher sorts earlier.

    Returns ``(connected, weighted_boundness, seed_bonus)``.
    """
    if isinstance(pattern, PathPattern):
        positions: list[tuple[Optional[Term], int]] = [
            (pattern.subject, _SUBJECT_WEIGHT),
            (None, _PREDICATE_WEIGHT),
            (pattern.object, _OBJECT_WEIGHT),
        ]
    else:
        positions = [
            (pattern.subject, _SUBJECT_WEIGHT),
            (pattern.predicate, _PREDICATE_WEIGHT),
            (pattern.object, _OBJECT_WEIGHT),
        ]

    weighted = 0
    connected = 0
    seed_bonus = 0
    for term, weight in positions:
        if term is None:
            continue
        if isinstance(term, Variable):
            if term in bound_variables:
                weighted += weight
                connected = 1
        else:
            weighted += weight
            if isinstance(term, NamedNode) and term.value in seed_iris:
                seed_bonus += 1
    return connected, weighted, seed_bonus


def plan_bgp_order(
    patterns: Sequence[TriplePattern | PathPattern],
    seed_iris: Sequence[str] = (),
) -> list[TriplePattern | PathPattern]:
    """Order BGP patterns with the zero-knowledge heuristics.

    Greedy: repeatedly pick the highest-scoring remaining pattern given the
    variables bound so far.  Ties break on the original pattern order, which
    keeps plans stable and predictable for users.
    """
    remaining = list(patterns)
    seeds = frozenset(seed_iris)
    ordered: list[TriplePattern | PathPattern] = []
    bound: set[Variable] = set()

    while remaining:
        best_index = 0
        best_score: tuple[int, int, int] = (-1, -1, -1)
        frozen_bound = frozenset(bound)
        for index, pattern in enumerate(remaining):
            score = pattern_score(pattern, frozen_bound, seeds)
            # For the very first pattern connectedness is meaningless; treat
            # all patterns as connected so boundness dominates.
            if not ordered:
                score = (1, score[1], score[2])
            if score > best_score:
                best_score = score
                best_index = index
        chosen = remaining.pop(best_index)
        ordered.append(chosen)
        bound |= chosen.variables()
    return ordered
