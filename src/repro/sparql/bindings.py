"""Solution mappings (bindings) for SPARQL evaluation."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from ..rdf.terms import Term, Variable

__all__ = ["Binding", "EMPTY_BINDING"]


class Binding(Mapping[Variable, Term]):
    """An immutable solution mapping from variables to RDF terms.

    Hashable (usable in DISTINCT sets and hash-join tables) and cheap to
    extend: :meth:`extended` shares nothing mutable with its parent.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Optional[Mapping[Variable, Term]] = None) -> None:
        self._items: dict[Variable, Term] = dict(items) if items else {}
        self._hash: Optional[int] = None

    @classmethod
    def _adopt(cls, items: dict[Variable, Term]) -> "Binding":
        """Wrap ``items`` without copying; the caller must not reuse it."""
        binding = cls.__new__(cls)
        binding._items = items
        binding._hash = None
        return binding

    # -- Mapping interface --------------------------------------------------

    def __getitem__(self, variable: Variable) -> Term:
        return self._items[variable]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, variable: object) -> bool:
        return variable in self._items

    # -- SPARQL semantics ----------------------------------------------------

    def compatible(self, other: "Binding") -> bool:
        """Two mappings are compatible when shared variables agree."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for variable, term in small._items.items():
            existing = large._items.get(variable)
            if existing is not None and existing != term:
                return False
        return True

    def merged(self, other: "Binding") -> Optional["Binding"]:
        """Union of two mappings, or ``None`` when incompatible.

        Single-pass: the compatibility check is folded into the merge loop —
        the smaller side is walked once, checking shared variables and
        collecting new pairs as it goes (the hash-join hot path calls this
        for every candidate pair).
        """
        if not other._items:
            return self
        if not self._items:
            return other
        small, large = (self, other) if len(self._items) <= len(other._items) else (other, self)
        combined = None  # copy of large's items, made lazily on first new pair
        for variable, term in small._items.items():
            existing = large._items.get(variable)
            if existing is None:
                if combined is None:
                    combined = dict(large._items)
                combined[variable] = term
            elif existing != term:
                return None
        if combined is None:
            return large  # small is a sub-mapping of large
        return Binding._adopt(combined)

    def extended(self, variable: Variable, term: Term) -> "Binding":
        """Return a new binding with one additional pair."""
        combined = dict(self._items)
        combined[variable] = term
        return Binding._adopt(combined)

    def projected(self, variables: Iterable[Variable]) -> "Binding":
        """Restrict to the given variables (unbound ones are dropped)."""
        items = self._items
        return Binding._adopt({v: items[v] for v in variables if v in items})

    def key(self, variables: Iterable[Variable]) -> tuple:
        """Hashable join key over ``variables`` (None for unbound)."""
        return tuple(self._items.get(v) for v in variables)

    # -- identity -------------------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"?{v.value}={t}" for v, t in sorted(
            self._items.items(), key=lambda item: item[0].value))
        return f"{{{body}}}"

    def __reduce__(self):
        # Slotted with a process-local cached hash — rebuild via __init__
        # so the hash is recomputed on the receiving side.
        return (Binding, (self._items,))


EMPTY_BINDING = Binding()
