"""Solution mappings (bindings) for SPARQL evaluation."""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional

from ..rdf.terms import Term, Variable

__all__ = ["Binding", "EMPTY_BINDING"]


class Binding(Mapping[Variable, Term]):
    """An immutable solution mapping from variables to RDF terms.

    Hashable (usable in DISTINCT sets and hash-join tables) and cheap to
    extend: :meth:`extended` shares nothing mutable with its parent.
    """

    __slots__ = ("_items", "_hash")

    def __init__(self, items: Optional[Mapping[Variable, Term]] = None) -> None:
        self._items: dict[Variable, Term] = dict(items) if items else {}
        self._hash: Optional[int] = None

    # -- Mapping interface --------------------------------------------------

    def __getitem__(self, variable: Variable) -> Term:
        return self._items[variable]

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, variable: object) -> bool:
        return variable in self._items

    # -- SPARQL semantics ----------------------------------------------------

    def compatible(self, other: "Binding") -> bool:
        """Two mappings are compatible when shared variables agree."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        for variable, term in small._items.items():
            existing = large._items.get(variable)
            if existing is not None and existing != term:
                return False
        return True

    def merged(self, other: "Binding") -> Optional["Binding"]:
        """Union of two mappings, or ``None`` when incompatible."""
        if not self.compatible(other):
            return None
        if not other._items:
            return self
        if not self._items:
            return other
        combined = dict(self._items)
        combined.update(other._items)
        return Binding(combined)

    def extended(self, variable: Variable, term: Term) -> "Binding":
        """Return a new binding with one additional pair."""
        combined = dict(self._items)
        combined[variable] = term
        return Binding(combined)

    def projected(self, variables: Iterable[Variable]) -> "Binding":
        """Restrict to the given variables (unbound ones are dropped)."""
        return Binding({v: self._items[v] for v in variables if v in self._items})

    def key(self, variables: Iterable[Variable]) -> tuple:
        """Hashable join key over ``variables`` (None for unbound)."""
        return tuple(self._items.get(v) for v in variables)

    # -- identity -------------------------------------------------------------

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._items.items()))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Binding):
            return self._items == other._items
        return NotImplemented

    def __repr__(self) -> str:
        body = ", ".join(f"?{v.value}={t}" for v, t in sorted(
            self._items.items(), key=lambda item: item[0].value))
        return f"{{{body}}}"


EMPTY_BINDING = Binding()
