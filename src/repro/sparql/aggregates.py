"""Grouping and aggregate computation for GROUP BY queries."""

from __future__ import annotations

from decimal import Decimal
from typing import Optional, Sequence

from ..rdf.terms import Literal, Term, Variable, XSD_INTEGER
from .algebra import (
    AggregateExpr,
    And,
    Arithmetic,
    Compare,
    Expression,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    UnaryMinus,
    UnaryPlus,
    VariableExpr,
)
from .bindings import Binding
from .expr import ExpressionError, ExpressionEvaluator, compare_terms

__all__ = ["group_solutions", "compute_aggregates"]


def group_solutions(
    solutions: list[Binding],
    keys: Sequence[tuple[Expression, Optional[Variable]]],
    expressions: ExpressionEvaluator,
) -> list[tuple[Binding, list[Binding]]]:
    """Partition solutions into groups keyed by the GROUP BY expressions.

    Returns ``(key_binding, members)`` pairs; ``key_binding`` carries the
    grouped variables (and aliases) so they survive into the output.  With
    no keys, all solutions form one implicit group (even when empty, per the
    spec's single-empty-group rule for aggregate-only queries).
    """
    if not keys:
        return [(Binding(), solutions)]

    groups: dict[tuple, tuple[Binding, list[Binding]]] = {}
    for solution in solutions:
        key_terms: list[Optional[Term]] = []
        items: dict[Variable, Term] = {}
        for expression, alias in keys:
            try:
                value: Optional[Term] = expressions.evaluate(expression, solution)
            except ExpressionError:
                value = None
            key_terms.append(value)
            if value is not None:
                if alias is not None:
                    items[alias] = value
                elif isinstance(expression, VariableExpr):
                    items[expression.variable] = value
        key = tuple(key_terms)
        if key not in groups:
            groups[key] = (Binding(items), [])
        groups[key][1].append(solution)
    return list(groups.values())


def compute_aggregates(
    key_binding: Binding,
    members: list[Binding],
    bindings: Sequence[tuple[Variable, Expression]],
    expressions: ExpressionEvaluator,
) -> Optional[Binding]:
    """Evaluate aggregate output bindings for one group."""
    result = dict(key_binding)
    for variable, expression in bindings:
        try:
            value = _evaluate_with_aggregates(expression, members, key_binding, expressions)
        except ExpressionError:
            continue  # aggregate error leaves the variable unbound
        result[variable] = value
    return Binding(result)


def evaluate_having(
    expression: Expression,
    members: list[Binding],
    result_binding: Binding,
    expressions: ExpressionEvaluator,
) -> bool:
    """HAVING semantics: aggregate-aware EBV; errors count as false."""
    from .expr import effective_boolean_value

    try:
        value = _evaluate_with_aggregates(expression, members, result_binding, expressions)
        return effective_boolean_value(value)
    except ExpressionError:
        return False


def _evaluate_with_aggregates(
    expression: Expression,
    members: list[Binding],
    key_binding: Binding,
    expressions: ExpressionEvaluator,
) -> Term:
    if isinstance(expression, AggregateExpr):
        return _compute_aggregate(expression, members, expressions)
    if isinstance(expression, (TermExpr, VariableExpr)):
        return expressions.evaluate(expression, key_binding)
    if isinstance(expression, Arithmetic):
        left = _evaluate_with_aggregates(expression.left, members, key_binding, expressions)
        right = _evaluate_with_aggregates(expression.right, members, key_binding, expressions)
        return expressions.evaluate(
            Arithmetic(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, Compare):
        left = _evaluate_with_aggregates(expression.left, members, key_binding, expressions)
        right = _evaluate_with_aggregates(expression.right, members, key_binding, expressions)
        return expressions.evaluate(
            Compare(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, FunctionCall):
        evaluated_args = tuple(
            TermExpr(_evaluate_with_aggregates(argument, members, key_binding, expressions))
            for argument in expression.args
        )
        return expressions.evaluate(FunctionCall(expression.name, evaluated_args), key_binding)
    # And/Or/Not etc. with aggregates inside are rare; evaluate per key binding.
    return expressions.evaluate(expression, key_binding)


def _compute_aggregate(
    aggregate: AggregateExpr,
    members: list[Binding],
    expressions: ExpressionEvaluator,
) -> Term:
    values: list[Term] = []
    if aggregate.operand is None:
        # COUNT(*): every solution counts.
        if aggregate.name != "COUNT":
            raise ExpressionError(f"{aggregate.name}(*) is not defined")
        count = len(members) if not aggregate.distinct else len(set(members))
        return Literal(str(count), datatype=XSD_INTEGER)

    for member in members:
        try:
            values.append(expressions.evaluate(aggregate.operand, member))
        except ExpressionError:
            if aggregate.name != "COUNT":
                # Per spec, an error in SUM/AVG/MIN/MAX propagates; COUNT skips.
                raise
    if aggregate.distinct:
        unique: list[Term] = []
        seen: set[Term] = set()
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique

    name = aggregate.name
    if name == "COUNT":
        return Literal(str(len(values)), datatype=XSD_INTEGER)
    if name == "SAMPLE":
        if not values:
            raise ExpressionError("SAMPLE of empty group")
        return values[0]
    if name == "GROUP_CONCAT":
        parts = []
        for value in values:
            if not isinstance(value, Literal):
                raise ExpressionError("GROUP_CONCAT over non-literal")
            parts.append(value.value)
        return Literal(aggregate.separator.join(parts))
    if not values:
        if name == "SUM":
            return Literal("0", datatype=XSD_INTEGER)
        raise ExpressionError(f"{name} of empty group")
    if name in ("MIN", "MAX"):
        best = values[0]
        for value in values[1:]:
            operator = "<" if name == "MIN" else ">"
            try:
                if compare_terms(value, best, operator):
                    best = value
            except ExpressionError:
                # Fall back to lexical comparison for mixed types.
                if (str(value) < str(best)) == (name == "MIN"):
                    best = value
        return best
    if name in ("SUM", "AVG"):
        total: object = 0
        for value in values:
            if not isinstance(value, Literal) or not value.is_numeric:
                raise ExpressionError(f"{name} over non-numeric value {value!r}")
            number = value.to_python()
            if isinstance(total, float) or isinstance(number, float):
                total = float(total) + float(number)
            elif isinstance(total, Decimal) or isinstance(number, Decimal):
                total = Decimal(total) + Decimal(number)
            else:
                total = total + number
        if name == "AVG":
            if isinstance(total, float):
                average = total / len(values)
            else:
                average = Decimal(total) / Decimal(len(values))
            return _to_literal(average)
        return _to_literal(total)
    raise ExpressionError(f"unknown aggregate {name!r}")


def _to_literal(value) -> Literal:
    from ..rdf.terms import XSD_DECIMAL, XSD_DOUBLE

    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, Decimal):
        return Literal(format(value, "f"), datatype=XSD_DECIMAL)
    return Literal(repr(value), datatype=XSD_DOUBLE)
