"""Grouping and aggregate computation for GROUP BY queries.

Two consumption styles share one semantics:

* **batch** — :func:`group_solutions` / :func:`compute_aggregates` /
  :func:`evaluate_having` partition a materialized solution list (the
  snapshot evaluator's path);
* **incremental** — :class:`AggregateState` accumulates one member at a
  time and :func:`evaluate_with_states` / :func:`having_with_states`
  resolve the same output expressions from running states (the unified
  pipeline's ``GroupAggregateNode``), so a group's aggregates finalize in
  O(result) at traversal quiescence instead of re-scanning members.
"""

from __future__ import annotations

from decimal import Decimal
from typing import Optional, Sequence

from ..rdf.terms import Literal, Term, Variable, XSD_INTEGER
from .algebra import (
    AggregateExpr,
    And,
    Arithmetic,
    Compare,
    Expression,
    FunctionCall,
    InExpr,
    Not,
    Or,
    TermExpr,
    UnaryMinus,
    UnaryPlus,
    VariableExpr,
)
from .bindings import Binding
from .expr import ExpressionError, ExpressionEvaluator, compare_terms

__all__ = [
    "group_solutions",
    "compute_aggregates",
    "evaluate_having",
    "AggregateState",
    "collect_aggregates",
    "evaluate_with_states",
    "having_with_states",
]


def group_solutions(
    solutions: list[Binding],
    keys: Sequence[tuple[Expression, Optional[Variable]]],
    expressions: ExpressionEvaluator,
) -> list[tuple[Binding, list[Binding]]]:
    """Partition solutions into groups keyed by the GROUP BY expressions.

    Returns ``(key_binding, members)`` pairs; ``key_binding`` carries the
    grouped variables (and aliases) so they survive into the output.  With
    no keys, all solutions form one implicit group (even when empty, per the
    spec's single-empty-group rule for aggregate-only queries).
    """
    if not keys:
        return [(Binding(), solutions)]

    groups: dict[tuple, tuple[Binding, list[Binding]]] = {}
    for solution in solutions:
        key_terms: list[Optional[Term]] = []
        items: dict[Variable, Term] = {}
        for expression, alias in keys:
            try:
                value: Optional[Term] = expressions.evaluate(expression, solution)
            except ExpressionError:
                value = None
            key_terms.append(value)
            if value is not None:
                if alias is not None:
                    items[alias] = value
                elif isinstance(expression, VariableExpr):
                    items[expression.variable] = value
        key = tuple(key_terms)
        if key not in groups:
            groups[key] = (Binding(items), [])
        groups[key][1].append(solution)
    return list(groups.values())


def compute_aggregates(
    key_binding: Binding,
    members: list[Binding],
    bindings: Sequence[tuple[Variable, Expression]],
    expressions: ExpressionEvaluator,
) -> Optional[Binding]:
    """Evaluate aggregate output bindings for one group."""
    result = dict(key_binding)
    for variable, expression in bindings:
        try:
            value = _evaluate_with_aggregates(expression, members, key_binding, expressions)
        except ExpressionError:
            continue  # aggregate error leaves the variable unbound
        result[variable] = value
    return Binding(result)


def evaluate_having(
    expression: Expression,
    members: list[Binding],
    result_binding: Binding,
    expressions: ExpressionEvaluator,
) -> bool:
    """HAVING semantics: aggregate-aware EBV; errors count as false."""
    from .expr import effective_boolean_value

    try:
        value = _evaluate_with_aggregates(expression, members, result_binding, expressions)
        return effective_boolean_value(value)
    except ExpressionError:
        return False


def _evaluate_with_aggregates(
    expression: Expression,
    members: list[Binding],
    key_binding: Binding,
    expressions: ExpressionEvaluator,
) -> Term:
    if isinstance(expression, AggregateExpr):
        return _compute_aggregate(expression, members, expressions)
    if isinstance(expression, (TermExpr, VariableExpr)):
        return expressions.evaluate(expression, key_binding)
    if isinstance(expression, Arithmetic):
        left = _evaluate_with_aggregates(expression.left, members, key_binding, expressions)
        right = _evaluate_with_aggregates(expression.right, members, key_binding, expressions)
        return expressions.evaluate(
            Arithmetic(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, Compare):
        left = _evaluate_with_aggregates(expression.left, members, key_binding, expressions)
        right = _evaluate_with_aggregates(expression.right, members, key_binding, expressions)
        return expressions.evaluate(
            Compare(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, FunctionCall):
        evaluated_args = tuple(
            TermExpr(_evaluate_with_aggregates(argument, members, key_binding, expressions))
            for argument in expression.args
        )
        return expressions.evaluate(FunctionCall(expression.name, evaluated_args), key_binding)
    # And/Or/Not etc. with aggregates inside are rare; evaluate per key binding.
    return expressions.evaluate(expression, key_binding)


def _compute_aggregate(
    aggregate: AggregateExpr,
    members: list[Binding],
    expressions: ExpressionEvaluator,
) -> Term:
    values: list[Term] = []
    if aggregate.operand is None:
        # COUNT(*): every solution counts.
        if aggregate.name != "COUNT":
            raise ExpressionError(f"{aggregate.name}(*) is not defined")
        count = len(members) if not aggregate.distinct else len(set(members))
        return Literal(str(count), datatype=XSD_INTEGER)

    for member in members:
        try:
            values.append(expressions.evaluate(aggregate.operand, member))
        except ExpressionError:
            if aggregate.name != "COUNT":
                # Per spec, an error in SUM/AVG/MIN/MAX propagates; COUNT skips.
                raise
    if aggregate.distinct:
        unique: list[Term] = []
        seen: set[Term] = set()
        for value in values:
            if value not in seen:
                seen.add(value)
                unique.append(value)
        values = unique

    name = aggregate.name
    if name == "COUNT":
        return Literal(str(len(values)), datatype=XSD_INTEGER)
    if name == "SAMPLE":
        if not values:
            raise ExpressionError("SAMPLE of empty group")
        return values[0]
    if name == "GROUP_CONCAT":
        parts = []
        for value in values:
            if not isinstance(value, Literal):
                raise ExpressionError("GROUP_CONCAT over non-literal")
            parts.append(value.value)
        return Literal(aggregate.separator.join(parts))
    if not values:
        if name == "SUM":
            return Literal("0", datatype=XSD_INTEGER)
        raise ExpressionError(f"{name} of empty group")
    if name in ("MIN", "MAX"):
        best = values[0]
        for value in values[1:]:
            operator = "<" if name == "MIN" else ">"
            try:
                if compare_terms(value, best, operator):
                    best = value
            except ExpressionError:
                # Fall back to lexical comparison for mixed types.
                if (str(value) < str(best)) == (name == "MIN"):
                    best = value
        return best
    if name in ("SUM", "AVG"):
        total: object = 0
        for value in values:
            if not isinstance(value, Literal) or not value.is_numeric:
                raise ExpressionError(f"{name} over non-numeric value {value!r}")
            number = value.to_python()
            if isinstance(total, float) or isinstance(number, float):
                total = float(total) + float(number)
            elif isinstance(total, Decimal) or isinstance(number, Decimal):
                total = Decimal(total) + Decimal(number)
            else:
                total = total + number
        if name == "AVG":
            if isinstance(total, float):
                average = total / len(values)
            else:
                average = Decimal(total) / Decimal(len(values))
            return _to_literal(average)
        return _to_literal(total)
    raise ExpressionError(f"unknown aggregate {name!r}")


def _to_literal(value) -> Literal:
    from ..rdf.terms import XSD_DECIMAL, XSD_DOUBLE

    if isinstance(value, int):
        return Literal(str(value), datatype=XSD_INTEGER)
    if isinstance(value, Decimal):
        return Literal(format(value, "f"), datatype=XSD_DECIMAL)
    return Literal(repr(value), datatype=XSD_DOUBLE)


# ---------------------------------------------------------------------------
# Incremental aggregation (one member at a time)
# ---------------------------------------------------------------------------


def collect_aggregates(expression: Expression, found: list[AggregateExpr]) -> None:
    """Append every distinct :class:`AggregateExpr` in the tree to ``found``.

    Nested aggregates are illegal in SPARQL, so the walk does not descend
    into aggregate operands.
    """
    if isinstance(expression, AggregateExpr):
        if expression not in found:
            found.append(expression)
        return
    if isinstance(expression, (And, Or, Compare, Arithmetic)):
        collect_aggregates(expression.left, found)
        collect_aggregates(expression.right, found)
    elif isinstance(expression, (Not, UnaryMinus, UnaryPlus)):
        collect_aggregates(expression.operand, found)
    elif isinstance(expression, FunctionCall):
        for argument in expression.args:
            collect_aggregates(argument, found)
    elif isinstance(expression, InExpr):
        collect_aggregates(expression.operand, found)
        for choice in expression.choices:
            collect_aggregates(choice, found)


class AggregateState:
    """Running state for one aggregate over one group.

    ``update`` folds members in as traversal delivers them; ``result``
    produces the same term :func:`_compute_aggregate` would compute from
    the full member list (same error semantics: an evaluation error in a
    ``COUNT`` operand skips the member, in any other aggregate it poisons
    the group's value, which :meth:`result` then raises).
    """

    __slots__ = ("aggregate", "_error", "_count", "_total", "_best", "_first", "_parts", "_seen")

    def __init__(self, aggregate: AggregateExpr) -> None:
        self.aggregate = aggregate
        # A non-COUNT ``agg(*)`` is undefined: poison the group so ``result``
        # raises (mirrors the batch path) instead of failing at compile time.
        self._error = aggregate.operand is None and aggregate.name != "COUNT"
        self._count = 0
        self._total: object = 0
        self._best: Optional[Term] = None
        self._first: Optional[Term] = None
        self._parts: list[str] = []
        self._seen: Optional[set] = set() if aggregate.distinct else None

    def update(self, member: Binding, expressions: ExpressionEvaluator) -> None:
        """Fold one group member into the running state."""
        if self._error:
            return
        aggregate = self.aggregate
        if aggregate.operand is None:
            # COUNT(*): every solution counts; DISTINCT dedupes whole rows.
            if self._seen is not None:
                if member in self._seen:
                    return
                self._seen.add(member)
            self._count += 1
            return
        try:
            value = expressions.evaluate(aggregate.operand, member)
        except ExpressionError:
            if aggregate.name != "COUNT":
                self._error = True
            return
        if self._seen is not None:
            if value in self._seen:
                return
            self._seen.add(value)
        name = aggregate.name
        if name == "COUNT":
            self._count += 1
        elif name in ("SUM", "AVG"):
            if not isinstance(value, Literal) or not value.is_numeric:
                self._error = True
                return
            number = value.to_python()
            total = self._total
            if isinstance(total, float) or isinstance(number, float):
                self._total = float(total) + float(number)
            elif isinstance(total, Decimal) or isinstance(number, Decimal):
                self._total = Decimal(total) + Decimal(number)
            else:
                self._total = total + number
            self._count += 1
        elif name in ("MIN", "MAX"):
            if self._count == 0:
                self._best = value
            else:
                best = self._best
                operator = "<" if name == "MIN" else ">"
                try:
                    if compare_terms(value, best, operator):
                        self._best = value
                except ExpressionError:
                    # Lexical fallback for mixed types (mirrors batch path).
                    if (str(value) < str(best)) == (name == "MIN"):
                        self._best = value
            self._count += 1
        elif name == "SAMPLE":
            if self._count == 0:
                self._first = value
            self._count += 1
        elif name == "GROUP_CONCAT":
            if not isinstance(value, Literal):
                self._error = True
                return
            self._parts.append(value.value)
            self._count += 1
        else:
            self._error = True

    def retract(self, member: Binding, expressions: ExpressionEvaluator) -> bool:
        """Un-fold one previously-:meth:`update`-ed member, when possible.

        Returns ``True`` when the state now reflects the group without
        ``member``; ``False`` when this aggregate cannot be decremented
        (DISTINCT, MIN/MAX/SAMPLE/GROUP_CONCAT order/extremum state, or a
        poisoned group) — the caller must then rebuild the state from the
        surviving members.
        """
        if self._error:
            # The poisoning member might be this one; only a rebuild knows.
            return False
        if self._seen is not None:
            return False  # DISTINCT: removal may resurrect a duplicate.
        aggregate = self.aggregate
        name = aggregate.name
        if name in ("MIN", "MAX", "SAMPLE", "GROUP_CONCAT"):
            return False  # extremum / order-sensitive state
        if aggregate.operand is None:  # COUNT(*)
            self._count -= 1
            return True
        try:
            value = expressions.evaluate(aggregate.operand, member)
        except ExpressionError:
            # COUNT skipped this member on update; nothing to undo.
            return True
        if name == "COUNT":
            self._count -= 1
            return True
        # SUM / AVG: subtract with the same numeric-promotion rules.
        if not isinstance(value, Literal) or not value.is_numeric:
            return False
        number = value.to_python()
        total = self._total
        if isinstance(total, float) or isinstance(number, float):
            self._total = float(total) - float(number)
        elif isinstance(total, Decimal) or isinstance(number, Decimal):
            self._total = Decimal(total) - Decimal(number)
        else:
            self._total = total - number
        self._count -= 1
        return True

    def result(self) -> Term:
        """The aggregate's value; raises :class:`ExpressionError` like the
        batch path (poisoned group, empty non-COUNT/SUM/GROUP_CONCAT group,
        unknown aggregate)."""
        if self._error:
            raise ExpressionError(f"{self.aggregate.name} aggregation error")
        name = self.aggregate.name
        if name == "COUNT":
            return Literal(str(self._count), datatype=XSD_INTEGER)
        if name == "SAMPLE":
            if self._count == 0:
                raise ExpressionError("SAMPLE of empty group")
            return self._first
        if name == "GROUP_CONCAT":
            return Literal(self.aggregate.separator.join(self._parts))
        if self._count == 0:
            if name == "SUM":
                return Literal("0", datatype=XSD_INTEGER)
            raise ExpressionError(f"{name} of empty group")
        if name in ("MIN", "MAX"):
            return self._best
        if name == "SUM":
            return _to_literal(self._total)
        if name == "AVG":
            total = self._total
            if isinstance(total, float):
                average = total / self._count
            else:
                average = Decimal(total) / Decimal(self._count)
            return _to_literal(average)
        raise ExpressionError(f"unknown aggregate {name!r}")


def evaluate_with_states(
    expression: Expression,
    states: dict[AggregateExpr, AggregateState],
    key_binding: Binding,
    expressions: ExpressionEvaluator,
) -> Term:
    """Like :func:`_evaluate_with_aggregates`, but aggregates resolve from
    running :class:`AggregateState` values instead of a member list."""
    if isinstance(expression, AggregateExpr):
        return states[expression].result()
    if isinstance(expression, (TermExpr, VariableExpr)):
        return expressions.evaluate(expression, key_binding)
    if isinstance(expression, Arithmetic):
        left = evaluate_with_states(expression.left, states, key_binding, expressions)
        right = evaluate_with_states(expression.right, states, key_binding, expressions)
        return expressions.evaluate(
            Arithmetic(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, Compare):
        left = evaluate_with_states(expression.left, states, key_binding, expressions)
        right = evaluate_with_states(expression.right, states, key_binding, expressions)
        return expressions.evaluate(
            Compare(expression.operator, TermExpr(left), TermExpr(right)), key_binding
        )
    if isinstance(expression, FunctionCall):
        evaluated_args = tuple(
            TermExpr(evaluate_with_states(argument, states, key_binding, expressions))
            for argument in expression.args
        )
        return expressions.evaluate(FunctionCall(expression.name, evaluated_args), key_binding)
    # And/Or/Not etc. with aggregates inside are rare; evaluate per key binding.
    return expressions.evaluate(expression, key_binding)


def having_with_states(
    expression: Expression,
    states: dict[AggregateExpr, AggregateState],
    result_binding: Binding,
    expressions: ExpressionEvaluator,
) -> bool:
    """HAVING over running states: aggregate-aware EBV; errors are false."""
    from .expr import effective_boolean_value

    try:
        value = evaluate_with_states(expression, states, result_binding, expressions)
        return effective_boolean_value(value)
    except ExpressionError:
        return False
