"""Solid pod data model.

A pod is a hierarchy of RDF documents rooted at a base URL, exposed through
LDP containers (Listing 1 of the paper), owned by an agent identified by a
WebID (Listing 2), and optionally indexed by a Solid Type Index
(Listing 3).  This module models the *contents*; :mod:`repro.solid.server`
serves them over the simulated Web.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from ..rdf.namespaces import FOAF, LDP, PIM, RDF, SOLID
from ..rdf.terms import Literal, NamedNode
from ..rdf.triples import Triple
from ..rdf.writer import serialize_turtle

__all__ = ["PodDocument", "Pod"]


@dataclass(slots=True)
class PodDocument:
    """One RDF document stored in a pod.

    ``path`` is pod-relative without a leading slash (``profile/card``).
    ``public`` documents are world-readable; private ones require an
    authorized WebID (see :mod:`repro.solid.acl`).
    """

    path: str
    triples: list[Triple] = field(default_factory=list)
    public: bool = True

    def __post_init__(self) -> None:
        if self.path.startswith("/"):
            raise ValueError("document paths are pod-relative (no leading slash)")
        if self.path.endswith("/"):
            raise ValueError("document paths must not end with '/' (that's a container)")


class Pod:
    """A Solid personal data pod.

    The pod derives its LDP container tree from document paths: storing
    ``posts/2010-10-12`` implies containers ``/`` and ``posts/``.  Container
    representations (Listing 1) are generated on demand.
    """

    def __init__(self, base_url: str, owner_name: str = "", oidc_issuer: str = "") -> None:
        if not base_url.endswith("/"):
            base_url += "/"
        self.base_url = base_url
        self.owner_name = owner_name
        self.oidc_issuer = oidc_issuer or base_url
        self._documents: dict[str, PodDocument] = {}

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------

    @property
    def profile_path(self) -> str:
        return "profile/card"

    @property
    def profile_url(self) -> str:
        return self.base_url + self.profile_path

    @property
    def webid(self) -> str:
        return self.profile_url + "#me"

    @property
    def type_index_path(self) -> str:
        return "settings/publicTypeIndex"

    @property
    def type_index_url(self) -> str:
        return self.base_url + self.type_index_path

    # ------------------------------------------------------------------
    # documents
    # ------------------------------------------------------------------

    def add_document(
        self, path: str, triples: Iterable[Triple], public: bool = True
    ) -> PodDocument:
        document = PodDocument(path=path, triples=list(triples), public=public)
        self._documents[path] = document
        return document

    def document(self, path: str) -> Optional[PodDocument]:
        return self._documents.get(path)

    def has_document(self, path: str) -> bool:
        return path in self._documents

    def document_paths(self) -> list[str]:
        return sorted(self._documents)

    def documents(self) -> Iterator[PodDocument]:
        return iter(self._documents.values())

    def document_url(self, path: str) -> str:
        return self.base_url + path

    def triple_count(self) -> int:
        return sum(len(d.triples) for d in self._documents.values())

    # ------------------------------------------------------------------
    # LDP containers
    # ------------------------------------------------------------------

    def container_paths(self) -> set[str]:
        """All container paths implied by stored documents ('' = root)."""
        containers: set[str] = {""}
        for path in self._documents:
            parts = path.split("/")[:-1]
            for index in range(len(parts)):
                containers.add("/".join(parts[: index + 1]) + "/")
        return containers

    def is_container(self, path: str) -> bool:
        if path in ("", "/"):
            return True
        return path.rstrip("/") + "/" in self.container_paths()

    def container_members(self, container_path: str) -> tuple[list[str], list[str]]:
        """Direct (document_paths, child_container_paths) of a container."""
        prefix = "" if container_path in ("", "/") else container_path.rstrip("/") + "/"
        documents: list[str] = []
        children: set[str] = set()
        for path in self._documents:
            if not path.startswith(prefix):
                continue
            remainder = path[len(prefix):]
            if "/" in remainder:
                children.add(prefix + remainder.split("/", 1)[0] + "/")
            else:
                documents.append(path)
        return sorted(documents), sorted(children)

    def container_triples(self, container_path: str) -> list[Triple]:
        """The LDP representation of a container (paper Listing 1)."""
        prefix = "" if container_path in ("", "/") else container_path.rstrip("/") + "/"
        container = NamedNode(self.base_url + prefix)
        triples = [
            Triple(container, RDF.type, LDP.Container),
            Triple(container, RDF.type, LDP.BasicContainer),
            Triple(container, RDF.type, LDP.Resource),
        ]
        documents, children = self.container_members(container_path)
        for path in documents:
            member = NamedNode(self.base_url + path)
            triples.append(Triple(container, LDP.contains, member))
            triples.append(Triple(member, RDF.type, LDP.Resource))
        for child in children:
            member = NamedNode(self.base_url + child)
            triples.append(Triple(container, LDP.contains, member))
            triples.append(Triple(member, RDF.type, LDP.Container))
            triples.append(Triple(member, RDF.type, LDP.BasicContainer))
            triples.append(Triple(member, RDF.type, LDP.Resource))
        return triples

    # ------------------------------------------------------------------
    # standard documents
    # ------------------------------------------------------------------

    def build_profile(self, extra_triples: Iterable[Triple] = ()) -> PodDocument:
        """Create the WebID profile document (paper Listing 2)."""
        me = NamedNode(self.webid)
        triples = [
            Triple(me, RDF.type, FOAF.Person),
            Triple(me, PIM.storage, NamedNode(self.base_url)),
            Triple(me, SOLID.oidcIssuer, NamedNode(self.oidc_issuer)),
            Triple(me, SOLID.publicTypeIndex, NamedNode(self.type_index_url)),
        ]
        if self.owner_name:
            triples.append(Triple(me, FOAF.name, Literal(self.owner_name)))
        triples.extend(extra_triples)
        return self.add_document(self.profile_path, triples)

    def build_type_index(
        self, registrations: Iterable[tuple[NamedNode, str, bool]]
    ) -> PodDocument:
        """Create the public Type Index (paper Listing 3).

        ``registrations`` holds ``(rdf_class, target_path, is_container)``
        tuples; container targets use ``solid:instanceContainer``, single
        documents use ``solid:instance``.
        """
        index_node = NamedNode(self.type_index_url)
        triples = [
            Triple(index_node, RDF.type, SOLID.TypeIndex),
            Triple(index_node, RDF.type, SOLID.ListedDocument),
        ]
        for position, (rdf_class, target_path, is_container) in enumerate(registrations):
            registration = NamedNode(f"{self.type_index_url}#registration{position}")
            target = NamedNode(self.base_url + target_path)
            triples.append(Triple(registration, RDF.type, SOLID.TypeRegistration))
            triples.append(Triple(registration, SOLID.forClass, rdf_class))
            predicate = SOLID.instanceContainer if is_container else SOLID.instance
            triples.append(Triple(registration, predicate, target))
        return self.add_document(self.type_index_path, triples)

    # ------------------------------------------------------------------

    def serialize_document(self, path: str) -> str:
        """Turtle text of a stored document or a generated container view."""
        document = self._documents.get(path)
        if document is not None:
            return serialize_turtle(document.triples, base_iri=self.base_url)
        if self.is_container(path):
            return serialize_turtle(self.container_triples(path), base_iri=self.base_url)
        raise KeyError(path)

    def __repr__(self) -> str:
        return f"<Pod {self.base_url} with {len(self._documents)} documents>"
