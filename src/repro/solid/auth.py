"""Simulated Solid-OIDC authentication.

The real demo logs users in through a Solid OIDC issuer and attaches DPoP
tokens to every engine request.  The behaviour the engine depends on is
simply: *a request carries a token; the server resolves it to a WebID and
enforces ACLs against it*.  :class:`IdentityProvider` reproduces exactly
that: it issues opaque bearer tokens bound to WebIDs and validates them.
"""

from __future__ import annotations

import hashlib
import hmac
from typing import Optional

__all__ = ["IdentityProvider", "AuthSession"]


class AuthSession:
    """A logged-in identity: attach :attr:`headers` to engine requests."""

    def __init__(self, webid: str, token: str) -> None:
        self.webid = webid
        self.token = token

    @property
    def headers(self) -> dict[str, str]:
        return {"authorization": f"Bearer {self.token}"}

    def __repr__(self) -> str:
        return f"<AuthSession for {self.webid}>"


class IdentityProvider:
    """Issues and validates bearer tokens for WebIDs.

    Tokens are HMAC-derived from a server secret, so validation is
    stateless and deterministic; revocation is supported through an
    explicit denylist.
    """

    def __init__(self, issuer_url: str, secret: bytes = b"solid-sim-secret") -> None:
        self.issuer_url = issuer_url.rstrip("/") + "/"
        self._secret = secret
        self._revoked: set[str] = set()
        self._tokens: dict[str, str] = {}

    def login(self, webid: str) -> AuthSession:
        """Authenticate as ``webid`` (the simulation trusts the caller —
        it plays both the user and the issuer)."""
        token = self._mint(webid)
        self._tokens[token] = webid
        return AuthSession(webid, token)

    def _mint(self, webid: str) -> str:
        digest = hmac.new(self._secret, webid.encode("utf-8"), hashlib.sha256)
        return digest.hexdigest()

    def resolve(self, token: Optional[str]) -> Optional[str]:
        """Return the WebID for a valid, unrevoked token, else ``None``."""
        if not token or token in self._revoked:
            return None
        webid = self._tokens.get(token)
        if webid is not None and self._mint(webid) == token:
            return webid
        return None

    def resolve_authorization_header(self, header_value: str) -> Optional[str]:
        """Extract and resolve a ``Bearer`` token from an Authorization header."""
        if not header_value:
            return None
        scheme, _, token = header_value.partition(" ")
        if scheme.lower() != "bearer":
            return None
        return self.resolve(token.strip())

    def revoke(self, token: str) -> None:
        self._revoked.add(token)
