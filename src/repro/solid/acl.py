"""Web Access Control (WAC) for simulated Solid pods.

The paper's engine supports authenticated querying: "users log into the
query engine using their Solid WebID, after which the query engine will
execute queries on their behalf across all data the user can access."
This module provides the server side of that: per-resource ACL rules with
the standard WAC agent categories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from ..rdf.namespaces import ACL as ACL_NS, FOAF, RDF
from ..rdf.terms import NamedNode
from ..rdf.triples import Triple

__all__ = ["AccessMode", "AclRule", "AccessControlList", "acl_document_triples"]


class AccessMode(str, Enum):
    READ = "Read"
    WRITE = "Write"
    APPEND = "Append"
    CONTROL = "Control"


@dataclass(slots=True)
class AclRule:
    """One WAC authorization.

    ``agents``: explicitly allowed WebIDs.  ``public`` allows every agent
    (``acl:agentClass foaf:Agent``); ``authenticated`` allows any logged-in
    agent (``acl:agentClass acl:AuthenticatedAgent``).
    """

    modes: frozenset[AccessMode] = frozenset({AccessMode.READ})
    agents: frozenset[str] = frozenset()
    public: bool = False
    authenticated: bool = False

    def allows(self, webid: Optional[str], mode: AccessMode) -> bool:
        if mode not in self.modes:
            return False
        if self.public:
            return True
        if self.authenticated and webid is not None:
            return True
        return webid is not None and webid in self.agents


class AccessControlList:
    """Resource-path → rules mapping with container inheritance.

    Rules attach to pod-relative paths.  A rule on a container path (ending
    in ``/`` or the empty string for the root) is inherited by everything
    beneath it unless a more specific rule exists — mirroring WAC's
    ``acl:default`` semantics.
    """

    def __init__(self, owner_webid: str) -> None:
        self._owner = owner_webid
        self._rules: dict[str, list[AclRule]] = {}
        # Default: the whole pod is publicly readable (SolidBench default).
        self.grant("", AclRule(public=True))

    @property
    def owner(self) -> str:
        return self._owner

    def grant(self, path: str, rule: AclRule) -> None:
        self._rules.setdefault(path, []).append(rule)

    def has_rule(self, path: str) -> bool:
        """True when an explicit (non-inherited) rule exists for ``path``."""
        return path in self._rules

    def restrict(self, path: str, agents: Iterable[str] = (), authenticated: bool = False) -> None:
        """Make ``path`` private: readable only by owner + ``agents``."""
        allowed = frozenset(agents) | {self._owner}
        self._rules[path] = [
            AclRule(
                modes=frozenset({AccessMode.READ}),
                agents=allowed,
                authenticated=authenticated,
            )
        ]

    def rules_for(self, path: str) -> list[AclRule]:
        """Effective rules: most specific matching path wins."""
        if path in self._rules:
            return self._rules[path]
        # Walk up the container hierarchy.
        current = path
        while current:
            slash = current.rstrip("/").rfind("/")
            if slash < 0:
                current = ""
            else:
                current = current[: slash + 1]
            if current in self._rules:
                return self._rules[current]
            if current == "":
                break
        return self._rules.get("", [])

    def allows(self, path: str, webid: Optional[str], mode: AccessMode = AccessMode.READ) -> bool:
        if webid is not None and webid == self._owner:
            return True  # owners always control their pods
        return any(rule.allows(webid, mode) for rule in self.rules_for(path))


def acl_document_triples(resource_url: str, acl_url: str, rules: list[AclRule]) -> list[Triple]:
    """Render rules as a WAC RDF document (for serving ``.acl`` resources)."""
    triples: list[Triple] = []
    for index, rule in enumerate(rules):
        auth = NamedNode(f"{acl_url}#authorization{index}")
        triples.append(Triple(auth, RDF.type, ACL_NS.Authorization))
        triples.append(Triple(auth, ACL_NS.accessTo, NamedNode(resource_url)))
        for mode in sorted(rule.modes, key=lambda m: m.value):
            triples.append(Triple(auth, ACL_NS.mode, ACL_NS[mode.value]))
        if rule.public:
            triples.append(Triple(auth, ACL_NS.agentClass, FOAF.Agent))
        if rule.authenticated:
            triples.append(Triple(auth, ACL_NS.agentClass, ACL_NS.AuthenticatedAgent))
        for agent in sorted(rule.agents):
            triples.append(Triple(auth, ACL_NS.agent, NamedNode(agent)))
    return triples
