"""The Solid pod server: an :class:`~repro.net.router.App` serving pods.

One :class:`SolidServer` instance serves many pods under one origin
(matching SolidBench's layout ``https://host/pods/<id>/...``).  It
implements the subset of the Solid protocol the LTQP engine exercises:

* ``GET``/``HEAD`` on documents → Turtle with correct content type
* ``GET`` on containers → generated LDP listing (paper Listing 1) plus a
  ``Link: <...#BasicContainer>; rel="type"`` header
* WAC enforcement (401 for anonymous, 403 for unauthorized WebIDs)
* ``.acl`` documents for ACL introspection
* content negotiation: Turtle (default) or N-Triples via ``Accept``
"""

from __future__ import annotations

from typing import Optional

from ..net.message import Request, Response
from ..net.router import App
from ..rdf.ntriples import serialize_ntriples
from ..rdf.writer import serialize_turtle
from .acl import AccessControlList, AccessMode, acl_document_triples
from .auth import IdentityProvider
from .pod import Pod

__all__ = ["SolidServer"]

_LDP_CONTAINER_LINK = '<http://www.w3.org/ns/ldp#BasicContainer>; rel="type"'
_LDP_RESOURCE_LINK = '<http://www.w3.org/ns/ldp#Resource>; rel="type"'

#: Deterministic write clock origin: every accepted write advances the
#: server's clock by exactly one second from this fixed epoch, so
#: ``Last-Modified`` stamps are monotone *and* reproducible run to run
#: (no wall-clock dependence) — 2025-08-01T00:00:00Z.
_WRITE_EPOCH = 1754006400


def _http_date(timestamp: int) -> str:
    from email.utils import formatdate

    return formatdate(timestamp, usegmt=True)


class SolidServer(App):
    """Serves a set of pods mounted at path prefixes under one origin."""

    def __init__(self, origin: str, idp: Optional[IdentityProvider] = None) -> None:
        self.origin = origin.rstrip("/")
        self.idp = idp
        self._pods: dict[str, Pod] = {}
        self._acls: dict[str, AccessControlList] = {}
        # Rendered representations keyed by (pod, path, content type).
        # Documents are static between writes, so serialization — the
        # dominant per-GET cost — is paid once per representation; any
        # PATCH/PUT invalidates the whole cache (writes are rare).
        self._render_cache: dict[tuple[str, str, str], bytes] = {}
        # Write bookkeeping: document URL → monotone write version and
        # write-clock stamp.  The version rides the ETag so *every*
        # accepted write yields a distinct validator, even a write that
        # leaves the body byte-identical (insert-then-delete PATCHes).
        self._versions: dict[str, int] = {}
        self._modified: dict[str, int] = {}
        self._write_clock = 0
        # Called with the document URL after every accepted write — the
        # change-notification hook standing queries subscribe through.
        self._change_listeners: list = []

    # ------------------------------------------------------------------
    # change notification
    # ------------------------------------------------------------------

    def add_change_listener(self, listener) -> None:
        """Register ``listener(url)`` to fire after each accepted write."""
        self._change_listeners.append(listener)

    def remove_change_listener(self, listener) -> None:
        try:
            self._change_listeners.remove(listener)
        except ValueError:
            pass

    def document_version(self, url: str) -> int:
        """How many accepted writes ``url`` has seen (0 = pristine)."""
        return self._versions.get(url, 0)

    def login_owner(self, path: str) -> dict[str, str]:
        """Auth headers for the owner of the pod serving ``path``.

        The simulation driver's "the pod owner edits their pod" helper:
        update traffic (:meth:`~repro.service.QueryService.apply_update`)
        authenticates with these.  Empty when the server runs without an
        identity provider or the path matches no pod.
        """
        if self.idp is None:
            return {}
        resolved = self._resolve(path)
        if resolved is None:
            return {}
        pod, _, _ = resolved
        return dict(self.idp.login(pod.webid).headers)

    def _record_write(self, url: str) -> None:
        self._write_clock += 1
        self._versions[url] = self._versions.get(url, 0) + 1
        self._modified[url] = self._write_clock
        for listener in list(self._change_listeners):
            listener(url)

    # ------------------------------------------------------------------
    # pod management
    # ------------------------------------------------------------------

    def mount(self, pod: Pod, acl: Optional[AccessControlList] = None) -> None:
        """Mount a pod; its base URL must live under this server's origin."""
        if not pod.base_url.startswith(self.origin + "/") and pod.base_url != self.origin + "/":
            raise ValueError(f"pod {pod.base_url} does not belong to origin {self.origin}")
        prefix = pod.base_url[len(self.origin):]
        self._pods[prefix] = pod
        effective_acl = acl if acl is not None else AccessControlList(pod.webid)
        # Documents flagged non-public get an owner-only ACL unless the
        # caller supplied explicit rules for them.
        for document in pod.documents():
            if not document.public and not effective_acl.has_rule(document.path):
                effective_acl.restrict(document.path)
        self._acls[prefix] = effective_acl

    def pods(self) -> list[Pod]:
        return [self._pods[prefix] for prefix in sorted(self._pods)]

    def acl_for(self, pod: Pod) -> AccessControlList:
        prefix = pod.base_url[len(self.origin):]
        return self._acls[prefix]

    def _resolve(self, path: str) -> Optional[tuple[Pod, AccessControlList, str]]:
        """Longest-prefix match of a request path to a mounted pod."""
        best: Optional[str] = None
        for prefix in self._pods:
            if path.startswith(prefix) and (best is None or len(prefix) > len(best)):
                best = prefix
        if best is None:
            return None
        return self._pods[best], self._acls[best], path[len(best):]

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------

    async def handle(self, request: Request) -> Response:
        if request.method not in ("GET", "HEAD", "PATCH", "PUT"):
            return Response(405, {"content-type": "text/plain"}, b"Method not allowed")
        resolved = self._resolve(request.path)
        if resolved is None:
            return Response.not_found(request.url)
        pod, acl, relative = resolved

        webid: Optional[str] = None
        if self.idp is not None:
            webid = self.idp.resolve_authorization_header(request.header("authorization"))

        if request.method == "PATCH":
            return self._handle_patch(request, pod, acl, relative, webid)
        if request.method == "PUT":
            return self._handle_put(request, pod, acl, relative, webid)

        if relative.endswith(".acl"):
            return self._serve_acl(request, pod, acl, relative, webid)

        is_container = relative == "" or relative.endswith("/")
        if is_container:
            container_path = relative
            if not pod.is_container(container_path):
                return Response.not_found(request.url)
            if not acl.allows(container_path, webid, AccessMode.READ):
                return Response.unauthorized() if webid is None else Response.forbidden()
            content_type = self._content_type(request)
            cache_key = (pod.base_url, container_path, content_type)
            body = self._render_cache.get(cache_key)
            if body is None:
                body = self._render(pod.container_triples(container_path), pod, request)
                self._render_cache[cache_key] = body
            headers = {
                "content-type": content_type,
                "link": _LDP_CONTAINER_LINK,
            }
            return self._finish(request, headers, body, url=pod.base_url + container_path)

        document = pod.document(relative)
        if document is None:
            # A URL without trailing slash may still denote a container.
            if pod.is_container(relative + "/"):
                location = pod.base_url + relative + "/"
                return Response(301, {"location": location, "content-type": "text/plain"}, b"")
            return Response.not_found(request.url)
        if not acl.allows(relative, webid, AccessMode.READ):
            return Response.unauthorized() if webid is None else Response.forbidden()
        content_type = self._content_type(request)
        cache_key = (pod.base_url, relative, content_type)
        body = self._render_cache.get(cache_key)
        if body is None:
            body = self._render(document.triples, pod, request)
            self._render_cache[cache_key] = body
        headers = {"content-type": content_type, "link": _LDP_RESOURCE_LINK}
        return self._finish(request, headers, body, url=pod.base_url + relative)

    def _serve_acl(
        self,
        request: Request,
        pod: Pod,
        acl: AccessControlList,
        relative: str,
        webid: Optional[str],
    ) -> Response:
        # Only pod owners may read ACL documents (WAC Control semantics).
        if webid != acl.owner:
            return Response.unauthorized() if webid is None else Response.forbidden()
        resource_path = relative[: -len(".acl")]
        resource_url = pod.base_url + resource_path
        acl_url = pod.base_url + relative
        triples = acl_document_triples(resource_url, acl_url, acl.rules_for(resource_path))
        body = self._render(triples, pod, request)
        return self._finish(
            request, {"content-type": self._content_type(request)}, body, url=acl_url
        )

    # ------------------------------------------------------------------
    # writes (Solid protocol: SPARQL-Update PATCH, Turtle PUT)
    # ------------------------------------------------------------------

    def _handle_patch(
        self,
        request: Request,
        pod: Pod,
        acl: AccessControlList,
        relative: str,
        webid: Optional[str],
    ) -> Response:
        from ..rdf.dataset import Graph
        from ..sparql.parser import SparqlParseError
        from ..sparql.update import DeleteData, DeleteWhere, InsertData, apply_update, parse_update

        if request.header("content-type").split(";")[0].strip() != "application/sparql-update":
            return Response(415, {"content-type": "text/plain"}, b"expected application/sparql-update")
        document = pod.document(relative)
        if document is None:
            return Response.not_found(request.url)
        try:
            operations = parse_update(request.body.decode("utf-8"))
        except (SparqlParseError, UnicodeDecodeError) as error:
            return Response(400, {"content-type": "text/plain"}, str(error).encode("utf-8"))

        # Pure additions need Append; anything that deletes needs Write.
        deletes = any(isinstance(op, (DeleteData, DeleteWhere)) or
                      (hasattr(op, "delete_template") and op.delete_template)
                      for op in operations)
        required = AccessMode.WRITE if deletes else AccessMode.APPEND
        if not (acl.allows(relative, webid, required) or acl.allows(relative, webid, AccessMode.WRITE)):
            return Response.unauthorized() if webid is None else Response.forbidden()

        graph = Graph(document.triples)
        counts = apply_update(graph, operations)
        document.triples[:] = list(graph)
        self._render_cache.clear()
        self._record_write(pod.base_url + relative)
        body = f"added {counts['added']}, removed {counts['removed']}".encode("utf-8")
        return Response(200, {"content-type": "text/plain"}, body)

    def _handle_put(
        self,
        request: Request,
        pod: Pod,
        acl: AccessControlList,
        relative: str,
        webid: Optional[str],
    ) -> Response:
        from ..rdf.turtle import TurtleParseError, parse_turtle

        if relative == "" or relative.endswith("/"):
            return Response(409, {"content-type": "text/plain"}, b"cannot PUT a container")
        if not acl.allows(relative, webid, AccessMode.WRITE):
            return Response.unauthorized() if webid is None else Response.forbidden()
        content_type = request.header("content-type").split(";")[0].strip()
        if content_type not in ("text/turtle", ""):
            return Response(415, {"content-type": "text/plain"}, b"expected text/turtle")
        try:
            triples = parse_turtle(
                request.body.decode("utf-8"), base_iri=pod.base_url + relative
            )
        except (TurtleParseError, UnicodeDecodeError) as error:
            return Response(400, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        existed = pod.has_document(relative)
        pod.add_document(relative, triples)
        self._render_cache.clear()
        self._record_write(pod.base_url + relative)
        return Response(204 if existed else 201, {"content-type": "text/plain"}, b"")

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------

    @staticmethod
    def _wants_ntriples(request: Request) -> bool:
        accept = request.header("accept")
        if "application/n-triples" not in accept:
            return False
        # Crude content negotiation: explicit n-triples preference wins only
        # when turtle is absent or lower-quality.
        return "text/turtle" not in accept.split("application/n-triples")[0]

    def _content_type(self, request: Request) -> str:
        return "application/n-triples" if self._wants_ntriples(request) else "text/turtle"

    def _render(self, triples, pod: Pod, request: Request) -> bytes:
        if self._wants_ntriples(request):
            return serialize_ntriples(triples).encode("utf-8")
        return serialize_turtle(triples, base_iri=pod.base_url).encode("utf-8")

    def _finish(
        self, request: Request, headers: dict[str, str], body: bytes, url: str = ""
    ) -> Response:
        # Validator over the representation, enabling client caching (the
        # browser disk cache visible in the paper's Fig. 4).  The body
        # hash is salted with the document's write version so every
        # accepted write — even one leaving the body byte-identical —
        # yields a distinct, monotone validator.
        import hashlib

        version = self._versions.get(url, 0)
        digest = hashlib.sha1(body).hexdigest()[:16]
        etag = f'"{digest}-v{version}"' if version else f'"{digest}"'
        headers = dict(headers)
        headers["etag"] = etag
        stamp = self._modified.get(url)
        if stamp is not None:
            headers["last-modified"] = _http_date(_WRITE_EPOCH + stamp)
        if request.header("if-none-match") == etag:
            return Response(304, headers, b"")
        if request.method == "HEAD":
            headers["content-length"] = str(len(body))
            return Response(200, headers, b"")
        return Response(200, headers, body)
