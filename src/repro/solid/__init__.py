"""The Solid decentralization substrate.

Pods (LDP document hierarchies), WebID profiles, Solid Type Indexes, WAC
access control, simulated Solid-OIDC authentication, and the pod server
app that exposes it all over :mod:`repro.net`.
"""

from .acl import AccessControlList, AccessMode, AclRule, acl_document_triples
from .auth import AuthSession, IdentityProvider
from .pod import Pod, PodDocument
from .server import SolidServer

__all__ = [
    "Pod",
    "PodDocument",
    "SolidServer",
    "AccessControlList",
    "AccessMode",
    "AclRule",
    "acl_document_triples",
    "IdentityProvider",
    "AuthSession",
]
