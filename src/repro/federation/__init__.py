"""Federated SPARQL baseline (the alternative the paper argues against).

§1 of the paper: federated SPARQL engines "are optimized for handling a
small number (~10) of large sources, whereas DKGs such as Solid are
characterized by a large number (>1000) of small sources", and they
"assume sources to be known prior to query execution".  This subpackage
provides that baseline — per-pod SPARQL endpoints plus a FedX-style
engine with ASK-based source selection — so bench E14 can quantify the
contrast against link traversal.
"""

from .endpoint import SparqlEndpointApp
from .engine import FederatedQueryEngine, FederationStats
from .setup import ENDPOINT_ORIGIN, EndpointDirectory, attach_pod_endpoints

__all__ = [
    "SparqlEndpointApp",
    "FederatedQueryEngine",
    "FederationStats",
    "EndpointDirectory",
    "attach_pod_endpoints",
    "ENDPOINT_ORIGIN",
]
