"""Wiring pods into a federation: one SPARQL endpoint per pod."""

from __future__ import annotations

from ..net.message import Request, Response
from ..net.router import App
from ..rdf.dataset import Graph
from ..solidbench.universe import SolidBenchUniverse
from .endpoint import SparqlEndpointApp

__all__ = ["EndpointDirectory", "attach_pod_endpoints"]

ENDPOINT_ORIGIN = "https://endpoints.example"


class EndpointDirectory(App):
    """Routes ``/pods/<id>/sparql`` paths to per-pod endpoint apps."""

    def __init__(self) -> None:
        self._endpoints: dict[str, SparqlEndpointApp] = {}

    def add(self, path: str, endpoint: SparqlEndpointApp) -> None:
        self._endpoints[path] = endpoint

    def endpoint_paths(self) -> list[str]:
        return sorted(self._endpoints)

    async def handle(self, request: Request) -> Response:
        from urllib.parse import urlsplit

        path = urlsplit(request.url).path  # request.path keeps the query string
        endpoint = self._endpoints.get(path)
        if endpoint is None:
            return Response.not_found(request.url)
        return await endpoint.handle(request)

    def total_queries_served(self) -> int:
        return sum(e.queries_served for e in self._endpoints.values())


def attach_pod_endpoints(universe: SolidBenchUniverse) -> list[str]:
    """Expose every pod as a SPARQL endpoint on the universe's internet.

    Each pod's full document contents become one endpoint at
    ``https://endpoints.example/pods/<id>/sparql`` — the "sources known
    prior to query execution" setup federated engines require.  Returns
    the endpoint URLs.
    """
    directory = EndpointDirectory()
    urls: list[str] = []
    for pod in universe.pods.values():
        graph = Graph()
        for document in pod.documents():
            graph.update(document.triples)
        pod_id = pod.base_url.rstrip("/").rsplit("/", 1)[-1]
        path = f"/pods/{pod_id}/sparql"
        endpoint = SparqlEndpointApp(graph, path=path)
        directory.add(path, endpoint)
        urls.append(ENDPOINT_ORIGIN + path)
    universe.internet.register(ENDPOINT_ORIGIN, directory)
    return urls
