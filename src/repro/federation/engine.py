"""A baseline federated SPARQL engine (FedX-style, simplified).

Implements the approach the paper positions LTQP against (§1): sources
are SPARQL endpoints, **known before query execution**.  The engine

1. performs *source selection*: an ``ASK``-probe per (triple pattern,
   endpoint) pair — FedX's technique [8] — to find which endpoints can
   answer which patterns;
2. evaluates each pattern at its relevant endpoints and unions the rows;
3. joins locally in pattern order (zero-knowledge ordering reused).

This deliberately mirrors the cost model the paper critiques: the number
of requests scales with ``#patterns × #endpoints`` regardless of where
the answers actually live, because federation has no notion of
*discovering* relevant sources — it must ask everyone.  The federation
bench (E14) measures exactly that against LTQP.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Optional, Sequence
from urllib.parse import quote

from ..net.client import HttpClient
from ..rdf.terms import BlankNode, Literal, NamedNode, Term, Variable, term_to_ntriples
from ..rdf.triples import TriplePattern
from ..sparql.algebra import BGP, Distinct, Project, Query, Slice
from ..sparql.bindings import Binding
from ..sparql.parser import parse_query
from ..sparql.planner import plan_bgp_order

__all__ = ["FederationStats", "FederatedQueryEngine"]


@dataclass(slots=True)
class FederationStats:
    """Request accounting for one federated execution."""

    endpoints: int = 0
    ask_probes: int = 0
    pattern_requests: int = 0
    result_count: int = 0
    relevant_sources: dict[str, int] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return self.ask_probes + self.pattern_requests


def _ask_query(pattern: TriplePattern) -> str:
    """Render a triple pattern as an ASK probe (source selection)."""
    parts = []
    for term in pattern:
        if isinstance(term, Variable):
            parts.append(f"?{term.value}")
        else:
            parts.append(term_to_ntriples(term))
    return f"ASK {{ {' '.join(parts)} }}"


def _batched_pattern_query(
    pattern: TriplePattern, shared: list[Variable], batch: list[Binding]
) -> str:
    """SELECT over the raw pattern, restricted by a VALUES block carrying
    the batch's bindings for the shared variables (FedX bound joins)."""
    parts = []
    for term in pattern:
        if isinstance(term, Variable):
            parts.append(f"?{term.value}")
        else:
            parts.append(term_to_ntriples(term))
    body = " ".join(parts)
    if not shared:
        return f"SELECT * WHERE {{ {body} }}"
    header = " ".join(f"?{v.value}" for v in shared)
    rows = []
    seen_rows: set[tuple] = set()
    for binding in batch:
        row_terms = tuple(binding.get(v) for v in shared)
        if row_terms in seen_rows:
            continue
        seen_rows.add(row_terms)
        rendered = " ".join(
            term_to_ntriples(t) if t is not None else "UNDEF" for t in row_terms
        )
        rows.append(f"({rendered})")
    values = " ".join(rows)
    return f"SELECT * WHERE {{ {body} VALUES ({header}) {{ {values} }} }}"


def _parse_json_bindings(payload: bytes) -> list[Binding]:
    document = json.loads(payload.decode("utf-8"))
    solutions = []
    for entry in document.get("results", {}).get("bindings", []):
        items = {}
        for name, term in entry.items():
            if term["type"] == "uri":
                value: Term = NamedNode(term["value"])
            elif term["type"] == "bnode":
                value = BlankNode(term["value"])
            elif "xml:lang" in term:
                value = Literal(term["value"], language=term["xml:lang"])
            elif "datatype" in term:
                value = Literal(term["value"], datatype=term["datatype"])
            else:
                value = Literal(term["value"])
            items[Variable(name)] = value
        solutions.append(Binding(items))
    return solutions


class FederatedQueryEngine:
    """Evaluates BGP queries over a fixed set of SPARQL endpoints."""

    def __init__(
        self, client: HttpClient, endpoints: Sequence[str], batch_size: int = 20
    ) -> None:
        self._client = client
        self._endpoints = list(endpoints)
        self._batch_size = max(1, batch_size)

    @property
    def client(self) -> HttpClient:
        return self._client

    async def execute(self, query_text: str) -> tuple[list[Binding], FederationStats]:
        query = parse_query(query_text)
        patterns, distinct = _extract_bgp(query)
        stats = FederationStats(endpoints=len(self._endpoints))

        # -- source selection: ASK every (pattern, endpoint) pair ---------
        relevant: dict[int, list[str]] = {}
        for index, pattern in enumerate(patterns):
            probes = await asyncio.gather(
                *[self._ask(endpoint, pattern) for endpoint in self._endpoints]
            )
            stats.ask_probes += len(self._endpoints)
            relevant[index] = [
                endpoint for endpoint, answer in zip(self._endpoints, probes) if answer
            ]
            stats.relevant_sources[str(pattern)] = len(relevant[index])

        # -- bound-join evaluation in planned order, with VALUES batching --
        # (FedX-style: ship batches of bindings to each source instead of
        # one request per binding.)
        ordered = plan_bgp_order(list(patterns))
        order_map = {id(p): i for i, p in enumerate(patterns)}
        solutions: list[Binding] = [Binding()]
        bound_so_far: set[Variable] = set()
        for pattern in ordered:
            sources = relevant[order_map[id(pattern)]]
            shared = sorted(
                (pattern.variables() & bound_so_far), key=lambda v: v.value
            )
            next_solutions: list[Binding] = []
            for batch_start in range(0, len(solutions), self._batch_size):
                batch = solutions[batch_start:batch_start + self._batch_size]
                rows = await self._evaluate_pattern_batch(
                    pattern, shared, batch, sources, stats
                )
                for binding in batch:
                    for row in rows:
                        merged = binding.merged(row)
                        if merged is not None:
                            next_solutions.append(merged)
            solutions = next_solutions
            bound_so_far |= pattern.variables()
            if not solutions:
                break

        projected = [s.projected(query.variables()) for s in solutions]
        if distinct:
            unique: list[Binding] = []
            seen: set[Binding] = set()
            for solution in projected:
                if solution not in seen:
                    seen.add(solution)
                    unique.append(solution)
            projected = unique
        stats.result_count = len(projected)
        return projected, stats

    def execute_sync(self, query_text: str) -> tuple[list[Binding], FederationStats]:
        return asyncio.run(self.execute(query_text))

    # ------------------------------------------------------------------

    async def _ask(self, endpoint: str, pattern: TriplePattern) -> bool:
        url = f"{endpoint}?query={quote(_ask_query(pattern))}"
        response = await self._client.fetch(url)
        if not response.ok:
            return False
        try:
            return bool(json.loads(response.text).get("boolean"))
        except (ValueError, AttributeError):
            return False

    async def _evaluate_pattern_batch(
        self,
        pattern: TriplePattern,
        shared: list[Variable],
        batch: list[Binding],
        sources: list[str],
        stats: FederationStats,
    ) -> list[Binding]:
        query = _batched_pattern_query(pattern, shared, batch)
        responses = await asyncio.gather(
            *[self._client.fetch(f"{endpoint}?query={quote(query)}") for endpoint in sources]
        )
        stats.pattern_requests += len(sources)
        rows: list[Binding] = []
        for response in responses:
            if response.ok:
                rows.extend(_parse_json_bindings(response.body))
        return rows


def _extract_bgp(query: Query) -> tuple[tuple[TriplePattern, ...], bool]:
    """This baseline supports (DISTINCT) SELECT over a single BGP."""
    node = query.where
    distinct = False
    while True:
        if isinstance(node, Distinct):
            distinct = True
            node = node.input
        elif isinstance(node, (Project, Slice)):
            node = node.input
        elif isinstance(node, BGP):
            if node.path_patterns:
                raise ValueError("the federation baseline does not support property paths")
            return node.patterns, distinct
        else:
            raise ValueError(
                f"the federation baseline supports single-BGP SELECT queries, got {type(node).__name__}"
            )
