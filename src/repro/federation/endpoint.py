"""A SPARQL endpoint app over the simulated Web.

The paper's §1 contrasts LTQP with *federated SPARQL processing* [8,9,10],
which assumes every source exposes a SPARQL endpoint and that all sources
are known up front.  To reproduce that comparison we need the substrate
the federation literature assumes: this module turns any dataset (e.g. a
pod's documents) into a ``GET /sparql?query=...`` endpoint speaking the
SPARQL JSON results format.
"""

from __future__ import annotations

import json
from typing import Union
from urllib.parse import parse_qs, unquote_plus, urlsplit

from ..net.message import Request, Response
from ..net.router import App
from ..rdf.dataset import Dataset, Graph
from ..sparql.eval import SnapshotEvaluator
from ..sparql.parser import SparqlParseError, parse_query
from ..sparql.results import results_to_sparql_json

__all__ = ["SparqlEndpointApp"]


class SparqlEndpointApp(App):
    """Answers SPARQL queries over a fixed dataset at ``/sparql``."""

    def __init__(self, data: Union[Graph, Dataset], path: str = "/sparql") -> None:
        self._data = data
        self._path = path
        self.queries_served = 0

    async def handle(self, request: Request) -> Response:
        parts = urlsplit(request.url)
        if parts.path != self._path:
            return Response.not_found(request.url)
        if request.method == "GET":
            query_text = parse_qs(parts.query).get("query", [""])[0]
        elif request.method == "POST":
            content_type = request.header("content-type").split(";")[0].strip()
            body = request.body.decode("utf-8")
            if content_type == "application/sparql-query":
                query_text = body
            else:  # application/x-www-form-urlencoded
                query_text = parse_qs(body).get("query", [""])[0]
        else:
            return Response(405, {"content-type": "text/plain"}, b"Method not allowed")
        query_text = unquote_plus(query_text) if "%" in query_text else query_text
        if not query_text:
            return Response(400, {"content-type": "text/plain"}, b"missing query parameter")
        try:
            query = parse_query(query_text)
        except SparqlParseError as error:
            return Response(400, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        evaluator = SnapshotEvaluator(self._data)
        self.queries_served += 1
        if query.form == "SELECT":
            bindings = list(evaluator.select(query))
            body = results_to_sparql_json(query.variables(), bindings)
            return Response(
                200, {"content-type": "application/sparql-results+json"}, body.encode("utf-8")
            )
        if query.form == "ASK":
            document = json.dumps({"head": {}, "boolean": evaluator.ask(query)})
            return Response(
                200, {"content-type": "application/sparql-results+json"}, document.encode("utf-8")
            )
        return Response(400, {"content-type": "text/plain"}, b"only SELECT/ASK supported")
