"""A SPARQL endpoint app over the simulated Web.

The paper's §1 contrasts LTQP with *federated SPARQL processing* [8,9,10],
which assumes every source exposes a SPARQL endpoint and that all sources
are known up front.  To reproduce that comparison we need the substrate
the federation literature assumes: this module turns any dataset (e.g. a
pod's documents) into a ``GET /sparql?query=...`` endpoint speaking the
SPARQL JSON results format.

The protocol plumbing (query extraction from GET/POST, parse errors as
400s) lives in :class:`SparqlProtocolApp` so other back-ends can reuse
it — the :class:`~repro.service.protocol.ServiceSparqlApp` serves the
same protocol backed by the live link-traversal
:class:`~repro.service.QueryService` instead of a fixed dataset.
"""

from __future__ import annotations

import json
from typing import Union
from urllib.parse import parse_qs, unquote_plus, urlsplit

from ..net.message import Request, Response
from ..net.router import App
from ..rdf.dataset import Dataset, Graph
from ..sparql.algebra import Query
from ..sparql.eval import SnapshotEvaluator
from ..sparql.parser import SparqlParseError, parse_query
from ..sparql.results import results_to_sparql_json

__all__ = ["SparqlProtocolApp", "SparqlEndpointApp"]


class SparqlProtocolApp(App):
    """SPARQL-protocol plumbing: request → parsed query → ``answer``.

    Subclasses implement :meth:`answer`; everything protocol-shaped —
    extracting the query text from ``GET ?query=`` or a POST body
    (``application/sparql-query`` or form-encoded), 400s for missing or
    unparsable queries, 405 for other methods — is handled here.
    """

    def __init__(self, path: str = "/sparql") -> None:
        self._path = path
        self.queries_served = 0

    @property
    def path(self) -> str:
        return self._path

    async def handle(self, request: Request) -> Response:
        parts = urlsplit(request.url)
        if parts.path != self._path:
            return await self.handle_other(request)
        if request.method == "GET":
            query_text = parse_qs(parts.query).get("query", [""])[0]
        elif request.method == "POST":
            content_type = request.header("content-type").split(";")[0].strip()
            body = request.body.decode("utf-8")
            if content_type == "application/sparql-query":
                query_text = body
            else:  # application/x-www-form-urlencoded
                query_text = parse_qs(body).get("query", [""])[0]
        else:
            return Response(405, {"content-type": "text/plain"}, b"Method not allowed")
        query_text = unquote_plus(query_text) if "%" in query_text else query_text
        if not query_text:
            return Response(400, {"content-type": "text/plain"}, b"missing query parameter")
        try:
            query = parse_query(query_text)
        except SparqlParseError as error:
            return Response(400, {"content-type": "text/plain"}, str(error).encode("utf-8"))
        self.queries_served += 1
        return await self.answer(query, request)

    async def handle_other(self, request: Request) -> Response:
        """Any path other than the endpoint's; 404 unless overridden."""
        return Response.not_found(request.url)

    async def answer(self, query: Query, request: Request) -> Response:
        raise NotImplementedError

    @staticmethod
    def select_response(variables, bindings) -> Response:
        body = results_to_sparql_json(variables, bindings)
        return Response(
            200, {"content-type": "application/sparql-results+json"}, body.encode("utf-8")
        )

    @staticmethod
    def ask_response(answer: bool) -> Response:
        document = json.dumps({"head": {}, "boolean": answer})
        return Response(
            200, {"content-type": "application/sparql-results+json"}, document.encode("utf-8")
        )


class SparqlEndpointApp(SparqlProtocolApp):
    """Answers SPARQL queries over a fixed dataset at ``/sparql``."""

    def __init__(self, data: Union[Graph, Dataset], path: str = "/sparql") -> None:
        super().__init__(path)
        self._data = data

    async def answer(self, query: Query, request: Request) -> Response:
        evaluator = SnapshotEvaluator(self._data)
        if query.form == "SELECT":
            return self.select_response(query.variables(), list(evaluator.select(query)))
        if query.form == "ASK":
            return self.ask_response(evaluator.ask(query))
        return Response(400, {"content-type": "text/plain"}, b"only SELECT/ASK supported")
