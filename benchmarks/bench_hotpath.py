"""Hot-path microbenchmarks: routing, interning, batching.

Companion to the hot-path overhaul (predicate-routed delta dispatch,
interned terms with cached hashes, micro-batched pipeline advancement).
Four metrics, each a pytest bench and an importable ``measure_*``
function so :mod:`check_hotpath_regression` can re-run them headlessly:

* **term construction throughput** — terms/s for a mixed IRI/literal
  workload (cached hashes + intern pool),
* **delta dispatch throughput** — quads/s pushed through a 3-pattern BGP
  pipeline where 19 of 20 quads are noise (predicate routing),
* **end-to-end Discover 8.5** — wall seconds for the paper's Fig. 5
  multi-pod query with oracle check (everything combined),
* **TTFR guard** — time-to-first-result for Discover 2.1 under realistic
  latency (batching must not delay the first answer).

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_hotpath.py`` rewrites the
committed baseline ``BENCH_hotpath.json``;
``python benchmarks/check_hotpath_regression.py`` gates against it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.bench import run_query
from repro.ltqp.pipeline import compile_pipeline
from repro.net import SeededJitterLatency
from repro.rdf import Dataset, Literal, NamedNode, Quad
from repro.solidbench import discover_query
from repro.sparql import parse_query

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"

#: Realistic per-document latency for the TTFR guard (matches E6).
REALISTIC = SeededJitterLatency(seed=9, min_rtt_seconds=0.02, max_rtt_seconds=0.08)


def measure_term_throughput(n: int = 200_000) -> float:
    """Terms constructed per second (mixed NamedNode / Literal workload)."""
    start = time.perf_counter()
    for i in range(n):
        NamedNode("http://example.org/entity/" + str(i % 512))
        Literal(str(i % 64))
    return 2 * n / (time.perf_counter() - start)


def measure_dispatch_throughput(n_quads: int = 60_000, chunk: int = 200) -> float:
    """Delta quads per second through a 3-pattern BGP pipeline.

    Only 1 in 20 quads carries a predicate any scan listens on — the
    router should make the other 19 nearly free.
    """
    query = parse_query(
        "PREFIX ex: <http://x/>\n"
        "SELECT ?m ?c WHERE { ?m ex:creator ex:me . ?m ex:content ?c . ?m ex:tag ?t }"
    )
    pipeline = compile_pipeline(query.where)
    dataset = Dataset()
    graph = NamedNode("https://h/doc")
    quads = []
    for i in range(n_quads):
        pred = ("creator", "content", "tag")[i % 3] if i % 20 == 0 else f"noise{i % 7}"
        quads.append(
            Quad(
                NamedNode(f"http://x/m{i % 500}"),
                NamedNode(f"http://x/{pred}"),
                Literal(str(i)),
                graph,
            )
        )
    start = time.perf_counter()
    for chunk_start in range(0, len(quads), chunk):
        for quad in quads[chunk_start:chunk_start + chunk]:
            dataset.add(quad)
        pipeline.advance(dataset)
    return len(quads) / (time.perf_counter() - start)


def measure_e2e_d85(universe) -> dict:
    """End-to-end Discover 8.5 (Fig. 5 shape) with oracle completeness."""
    query = discover_query(universe, 8, 4)
    start = time.perf_counter()
    report = run_query(
        universe, query, latency=SeededJitterLatency(seed=5), check_oracle=True
    )
    return {
        "wall_s": time.perf_counter() - start,
        "results": report.result_count,
        "complete": bool(report.complete),
    }


def measure_ttfr_d21(universe) -> float:
    """TTFR for Discover 2.1 under realistic (20-80 ms) latency."""
    report = run_query(
        universe, discover_query(universe, 2, 1), latency=REALISTIC, check_oracle=False
    )
    assert report.time_to_first_result is not None
    return report.time_to_first_result


def collect_metrics(universe) -> dict:
    """All hot-path metrics in the BENCH_hotpath.json schema.

    The two tight-loop throughputs are best-of-3: a single round is at
    the mercy of transient contention on single-core CI hosts, while a
    real regression slows every round.
    """
    e2e = measure_e2e_d85(universe)
    return {
        "terms_per_s": round(max(measure_term_throughput() for _ in range(3))),
        "dispatch_quads_per_s": round(
            max(measure_dispatch_throughput() for _ in range(3))
        ),
        "d85_wall_s": round(e2e["wall_s"], 3),
        "d85_results": e2e["results"],
        "d85_complete": e2e["complete"],
        "ttfr_d21_s": round(measure_ttfr_d21(universe), 4),
    }


# -- pytest benches ----------------------------------------------------------


def test_term_construction_throughput(benchmark):
    rate = benchmark.pedantic(measure_term_throughput, rounds=1, iterations=1)
    print(f"\nterm construction: {rate:,.0f} terms/s")
    assert rate > 100_000


def test_delta_dispatch_throughput(benchmark):
    rate = benchmark.pedantic(measure_dispatch_throughput, rounds=1, iterations=1)
    print(f"\ndelta dispatch: {rate:,.0f} quads/s")
    assert rate > 10_000


def test_e2e_discover_8_5(benchmark, universe):
    e2e = benchmark.pedantic(lambda: measure_e2e_d85(universe), rounds=1, iterations=1)
    print(f"\nDiscover 8.5: {e2e['wall_s']:.2f} s, {e2e['results']} results")
    assert e2e["complete"], "routing/batching must not lose answers"


def test_ttfr_guard(benchmark, universe):
    ttfr = benchmark.pedantic(lambda: measure_ttfr_d21(universe), rounds=1, iterations=1)
    print(f"\nTTFR Discover 2.1: {ttfr:.3f} s")
    # Batching must keep first results under the 1-second Nielsen threshold.
    assert ttfr < 1.0


def test_write_baseline(universe):
    """Rewrite BENCH_hotpath.json when REPRO_WRITE_BENCH=1 (no-op otherwise)."""
    if os.environ.get("REPRO_WRITE_BENCH") != "1":
        return
    metrics = collect_metrics(universe)
    BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
    print(f"\nwrote {BASELINE_PATH}: {metrics}")
