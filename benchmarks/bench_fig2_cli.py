"""E1 (paper Fig. 2): command-line query execution.

The paper shows ``comunica-sparql-link-traversal-solid --idp void <seed>
"<query>" --lenient`` printing one JSON object per result.  This bench
runs our CLI equivalent on a Discover query and checks the observable
shape: streamed JSON lines whose typed literals render as
``"value"^^datatype`` — exactly the format in the figure.
"""

from __future__ import annotations

import io
import json
from contextlib import redirect_stderr, redirect_stdout

from conftest import BENCH_SCALE, BENCH_SEED, print_banner

from repro.cli import main as cli_main


def run_cli() -> list[str]:
    stdout, stderr = io.StringIO(), io.StringIO()
    with redirect_stdout(stdout), redirect_stderr(stderr):
        code = cli_main(
            [
                "--simulate",
                str(BENCH_SCALE),
                "--bench-seed",
                str(BENCH_SEED),
                "--discover",
                "1.5",
                "--no-latency",
                "--lenient",
            ]
        )
    assert code == 0
    return stdout.getvalue().strip().splitlines()


def test_fig2_cli_streams_json_bindings(benchmark):
    lines = benchmark.pedantic(run_cli, rounds=3, iterations=1)

    print_banner("E1 / Fig. 2 — CLI execution of Discover 1.5")
    for line in lines[:8]:
        print(line)
    if len(lines) > 8:
        print(f"... and {len(lines) - 8} more result lines")

    # Shape: at least one result; every line is a JSON binding object; typed
    # literals keep the "value"^^datatype rendering of the paper's figure.
    assert lines, "Discover 1.5 must produce results"
    for line in lines:
        parsed = json.loads(line)
        assert parsed, "empty binding printed"
    typed = [json.loads(line)["messageId"] for line in lines]
    assert all(value.startswith('"') and "^^" in value for value in typed)
