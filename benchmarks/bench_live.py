"""Live-maintenance benchmark: signed refresh vs full re-execution.

Before standing queries, the demo's only way to keep a result set
current was the paper's "live data" observation: re-run the whole
traversal.  A :class:`~repro.ltqp.live.LiveQuery` instead re-derefereces
*one* changed document, diffs it against the growing source, and pushes
the signed delta through the retained pipeline — O(changed triples ×
affected operators), not O(re-execution).

This bench measures that claim directly on a friends-of-one-person
query (profile + one document per friend — a real multi-document
traversal).  Per edit (an owner-authenticated PATCH renaming one
friend):

* **maintain_s** — ``live.refresh(document)``: one conditional fetch,
  one diff, signed maintenance through the standing pipeline;
* **reexec_s** — what the demo did instead: a fresh engine re-running
  the full traversal over the current universe state.

Both sides see identical pod state per edit.  Two absolute checks ride
along: the maintained multiset must replay to exactly the fresh
execution's answer after every edit (the signed-delta correctness
anchor, enforced per edit), and the regression gate
(``check_hotpath_regression.py``) requires the median maintenance
refresh to stay at least ``10×`` faster than the median re-execution.

The bench builds a *private* universe (same knobs as the shared bench
fixture) because its edits mutate pod documents — the shared
session universe must stay pristine for the other gates.

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_live.py`` rewrites the
committed ``BENCH_live.json`` baseline (which pins the result count).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import Counter
from pathlib import Path
from statistics import median
from urllib.parse import urlsplit

from repro.ltqp.live import LiveQuery
from repro.net.message import Request
from repro.solidbench import SolidBenchConfig, build_universe

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_live.json"

FOAF = "http://xmlns.com/foaf/0.1/"

#: Number of edit/maintain/re-exec rounds (medians are taken over these).
EDITS = 5

LIVE_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
LIVE_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


def _key(binding):
    return tuple(sorted((v.value, str(t)) for v, t in binding.items()))


def _multiset(bindings) -> Counter:
    return Counter(_key(b) for b in bindings)


async def _patch(universe, url: str, update: str) -> None:
    parts = urlsplit(url)
    app = universe.internet.app_for(f"{parts.scheme}://{parts.netloc}")
    headers = {"content-type": "application/sparql-update"}
    headers.update(app.login_owner(parts.path))
    response = await universe.internet.dispatch(
        Request("PATCH", url, headers, update.encode("utf-8"))
    )
    if response.status >= 400:
        raise RuntimeError(f"bench PATCH rejected: HTTP {response.status} for {url}")


def measure_live(_shared_universe=None) -> dict:
    """Per-edit maintenance vs re-execution timings, plus replay checks."""
    universe = build_universe(SolidBenchConfig(scale=LIVE_SCALE, seed=LIVE_SEED))
    pod = next(iter(universe.pods.values()))
    query = (
        f"SELECT ?friend ?name WHERE {{ <{pod.webid}> <{FOAF}knows> ?friend . "
        f"?friend <{FOAF}name> ?name }}"
    )
    seeds = [pod.profile_url]

    async def scenario():
        live = LiveQuery(universe.fast_engine(), query, seeds=seeds)
        start = time.perf_counter()
        initial = await live.start()
        initial_wall = time.perf_counter() - start
        if not initial:
            raise RuntimeError("live bench query returned no initial results")

        # friend IRI -> (profile document, current name), from the results.
        friends = {}
        for binding in initial:
            entries = {var.value: term for var, term in binding.items()}
            friend = entries["friend"].value
            friends[friend] = (friend.split("#", 1)[0], entries["name"].value)
        targets = sorted(friends)

        maintain_walls, reexec_walls = [], []
        replay_identical = True
        for round_index in range(EDITS):
            friend = targets[round_index % len(targets)]
            document, old_name = friends[friend]
            new_name = f"Live Edit {round_index}"
            update = (
                f'DELETE DATA {{ <{friend}> <{FOAF}name> "{old_name}" }} ;\n'
                f'INSERT DATA {{ <{friend}> <{FOAF}name> "{new_name}" }}'
            )
            await _patch(universe, document, update)
            friends[friend] = (document, new_name)

            start = time.perf_counter()
            events = await live.refresh(document)
            maintain_walls.append(time.perf_counter() - start)
            if len(events) != 2:  # one retraction + one addition per rename
                raise RuntimeError(
                    f"rename produced {len(events)} events, expected 2"
                )

            start = time.perf_counter()
            fresh = await universe.fast_engine().query(query, seeds=seeds).gather()
            reexec_walls.append(time.perf_counter() - start)
            maintained = Counter()
            for binding, count in live.current_results().items():
                maintained[_key(binding)] += count
            if maintained != _multiset(fresh.bindings):
                replay_identical = False

        live.close()
        return initial, initial_wall, maintain_walls, reexec_walls, replay_identical

    initial, initial_wall, maintain_walls, reexec_walls, replay_identical = (
        asyncio.run(scenario())
    )
    maintain_s = median(maintain_walls)
    reexec_s = median(reexec_walls)
    return {
        "initial_wall_s": round(initial_wall, 6),
        "maintain_s": round(maintain_s, 6),
        "reexec_s": round(reexec_s, 6),
        "live_speedup": round(reexec_s / maintain_s, 2) if maintain_s else float("inf"),
        "edits": EDITS,
        "results": len(initial),
        "replay_identical": replay_identical,
    }


# -- pytest benches ----------------------------------------------------------


def test_maintenance_beats_reexecution(benchmark):
    metrics = benchmark.pedantic(measure_live, rounds=1, iterations=1)
    print(
        f"\ninitial {metrics['initial_wall_s'] * 1000:.2f} ms, "
        f"maintain {metrics['maintain_s'] * 1000:.3f} ms, "
        f"re-exec {metrics['reexec_s'] * 1000:.2f} ms "
        f"({metrics['live_speedup']}x), {metrics['results']} results"
    )
    assert metrics["replay_identical"]
    assert metrics["live_speedup"] > 10.0


def test_write_baseline():
    """Rewrite BENCH_live.json when REPRO_WRITE_BENCH=1 (no-op otherwise)."""
    if os.environ.get("REPRO_WRITE_BENCH") != "1":
        return
    metrics = measure_live()
    BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
    print(f"\nwrote {BASELINE_PATH}: {metrics}")
