"""Quiescence-flush benchmark: incremental finalize vs snapshot re-evaluation.

Companion to the unified execution stack.  Before it, any non-monotonic
query was answered by throwing away the pipeline at traversal quiescence
and re-evaluating the whole query over the final snapshot.  Now blocking
operators (OrderSlice, LeftJoin, GroupAggregate, ...) maintain their
state per delta during traversal and *finalize* in O(result) when the
link queue drains.

This bench measures that end-game directly, on non-monotonic variants of
the Discover templates (no Discover template is natively non-monotonic,
so the template bodies are wrapped with ORDER BY, OPTIONAL, and GROUP
BY).  The variants are *unanchored* — they range over every message in
the universe rather than one person's — because a person-anchored query
leaves both sides with microseconds of endgame work, which measures
timer noise, not the design.  The traversal itself is simulated by
feeding the universe's oracle dataset through ``pipeline.advance`` in
untimed chunks (that is the point of the unified stack: the join work
amortizes into traversal); the timed region is quiescence→last-result:

* **flush_s** — ``pipeline.finalize(dataset)`` on the fed pipeline,
* **snapshot_s** — what the seed engine did instead: build a
  :class:`SnapshotEvaluator` over the final dataset and evaluate the
  full query from scratch.

Both sides must produce identical result multisets; the committed
``BENCH_quiescence.json`` pins result counts and the regression gate
(``check_hotpath_regression.py``) requires the flush to stay at least
``3×`` faster than the snapshot re-evaluation.

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_quiescence.py`` rewrites
the committed baseline.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.ltqp.pipeline import compile_query_pipeline
from repro.rdf import Dataset
from repro.solidbench import discover_query
from repro.sparql import parse_query
from repro.sparql.eval import SnapshotEvaluator

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_quiescence.json"

#: Untimed feeding granularity (quads per pipeline.advance call).
FEED_CHUNK = 2000


def nonmonotonic_queries(universe) -> list[tuple[str, str]]:
    """Non-monotonic Discover variants: one per blocking-operator family.

    The bodies reuse the Discover template patterns (message / content /
    id / creator over snvoc:) with the person anchor removed, then wrap
    them with the operator under test.
    """
    prefixes = discover_query(universe, 1, 1).text.partition("SELECT")[0]
    ordered = prefixes + (
        "SELECT ?message ?messageId ?messageContent WHERE {\n"
        "  ?message snvoc:content ?messageContent ;\n"
        "    snvoc:id ?messageId .\n"
        "}\nORDER BY ?messageId ?message"
    )
    optional = prefixes + (
        "SELECT ?message ?messageContent ?date WHERE {\n"
        "  ?message snvoc:content ?messageContent .\n"
        "  OPTIONAL { ?message snvoc:creationDate ?date }\n"
        "}"
    )
    grouped = prefixes + (
        "SELECT ?creator (COUNT(?message) AS ?n) WHERE {\n"
        "  ?message snvoc:hasCreator ?creator ;\n"
        "    snvoc:content ?messageContent .\n"
        "}\nGROUP BY ?creator"
    )
    return [
        ("messages+order", ordered),
        ("messages+optional", optional),
        ("creators+group", grouped),
    ]


def _key(binding):
    return sorted((v.value, str(t)) for v, t in binding.items())


def measure_quiescence(universe) -> dict:
    """Flush vs snapshot timings for each non-monotonic Discover variant."""
    quads = universe.oracle_dataset().log_slice(0)
    per_query = {}
    for name, text in nonmonotonic_queries(universe):
        query = parse_query(text)
        pipeline = compile_query_pipeline(query)
        assert pipeline.blocking_nodes, f"{name} must compile to a blocking plan"

        dataset = Dataset()
        streamed = []
        for start in range(0, len(quads), FEED_CHUNK):
            for quad in quads[start : start + FEED_CHUNK]:
                dataset.add(quad)
            streamed.extend(pipeline.advance(dataset))

        start_time = time.perf_counter()
        flushed = pipeline.finalize(dataset)
        flush_s = time.perf_counter() - start_time

        start_time = time.perf_counter()
        snapshot = list(SnapshotEvaluator(dataset).evaluate(query.where))
        snapshot_s = time.perf_counter() - start_time

        incremental = streamed + flushed
        per_query[name] = {
            "flush_s": round(flush_s, 6),
            "snapshot_s": round(snapshot_s, 6),
            "speedup": round(snapshot_s / flush_s, 2) if flush_s else float("inf"),
            "results": len(incremental),
            "identical_results": sorted(map(_key, incremental))
            == sorted(map(_key, snapshot)),
        }

    return {
        "queries": per_query,
        "speedup_min": min(q["speedup"] for q in per_query.values()),
    }


# -- pytest benches ----------------------------------------------------------


def test_flush_beats_snapshot(benchmark, universe):
    metrics = benchmark.pedantic(
        lambda: measure_quiescence(universe), rounds=1, iterations=1
    )
    for name, entry in metrics["queries"].items():
        print(
            f"\n{name}: flush {entry['flush_s'] * 1000:.2f} ms, "
            f"snapshot {entry['snapshot_s'] * 1000:.2f} ms "
            f"({entry['speedup']}x), {entry['results']} results"
        )
        assert entry["identical_results"], name
    assert metrics["speedup_min"] > 3.0


def test_write_baseline(universe):
    """Rewrite BENCH_quiescence.json when REPRO_WRITE_BENCH=1 (no-op otherwise)."""
    if os.environ.get("REPRO_WRITE_BENCH") != "1":
        return
    metrics = measure_quiescence(universe)
    BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
    print(f"\nwrote {BASELINE_PATH}: {metrics}")
