"""E10 (paper §5, future work): adaptive query planning.

The paper names adaptive query planning [29,30] as the main future
optimization.  We implement cardinality-monitored replanning
(:mod:`repro.ltqp.adaptive`) and measure it against a naive static plan
on an adversarial query — one whose textually-first join pairs two
unselective patterns, flooding the pipeline with intermediate bindings
before the selective pattern prunes them.

Shape: the adaptive pipeline replans, produces identical answers, and its
cumulative intermediate-binding count (including the work of the
abandoned plan) stays well below the naive plan's.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import render_table
from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.ltqp.adaptive import AdaptivePipeline
from repro.ltqp.pipeline import compile_pipeline, total_work
from repro.net import NoLatency
from repro.rdf import Dataset, Literal, NamedNode, Quad
from repro.sparql import parse_query
from repro.solidbench import discover_query

EX = "PREFIX ex: <http://x/>\n"

#: Textual order joins the two unselective patterns (content × tag) first.
BAD_ORDER_QUERY = EX + (
    "SELECT ?m ?c ?t WHERE { ?m ex:content ?c . ?m ex:tag ?t . ?m ex:creator ex:me }"
)


def n(suffix):
    return NamedNode(f"http://x/{suffix}")


def skewed_quads(popular=300, selective=3):
    """Every message has content + 2 tags; only 3 are by ex:me.  The
    selective creator edges arrive early, as they would from a seed
    profile document."""
    quads = []
    for index in range(30):
        quads.append(Quad(n(f"m{index}"), n("content"), Literal(f"t{index}"), n("g")))
        quads.append(Quad(n(f"m{index}"), n("tag"), n(f"tag{index % 5}"), n("g")))
        quads.append(Quad(n(f"m{index}"), n("tag"), n(f"tag{(index + 1) % 5}"), n("g")))
    for index in range(selective):
        quads.append(Quad(n(f"m{index}"), n("creator"), n("me"), n("g")))
    for index in range(30, popular):
        quads.append(Quad(n(f"m{index}"), n("content"), Literal(f"t{index}"), n("g")))
        quads.append(Quad(n(f"m{index}"), n("tag"), n(f"tag{index % 5}"), n("g")))
        quads.append(Quad(n(f"m{index}"), n("tag"), n(f"tag{(index + 1) % 5}"), n("g")))
    return quads


def feed(pipeline, quads, chunk=30):
    dataset = Dataset()
    produced = []
    for start in range(0, len(quads), chunk):
        for quad in quads[start:start + chunk]:
            dataset.add(quad)
        produced.extend(pipeline.advance(dataset))
    return produced


def test_adaptive_replanning_reduces_intermediate_work(benchmark):
    query = parse_query(BAD_ORDER_QUERY)
    quads = skewed_quads()

    def run_both():
        naive = compile_pipeline(query.where, bgp_order=list)  # textual order
        naive_results = feed(naive, quads)

        # Adaptive starts from the same adversarial textual order.
        adaptive = AdaptivePipeline(query.where, check_interval=1, replan_factor=2.0)

        def textual_order(patterns):
            chosen = list(patterns)
            adaptive._current_order = chosen
            return chosen

        adaptive._pipeline = compile_pipeline(query.where, bgp_order=textual_order)
        adaptive_results = feed(adaptive, quads)
        return naive, naive_results, adaptive, adaptive_results

    naive, naive_results, adaptive, adaptive_results = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    naive_work = total_work(naive.root)
    adaptive_work = adaptive.total_work

    print_banner("E10 / §5 — static (bad) plan vs adaptive replanning")
    print(
        render_table(
            [
                {"plan": "naive textual order", "results": len(naive_results),
                 "intermediate_bindings": naive_work, "replans": 0},
                {"plan": "adaptive", "results": len(set(adaptive_results)),
                 "intermediate_bindings": adaptive_work, "replans": adaptive.replans},
            ]
        )
    )

    assert set(naive_results) == set(adaptive_results)
    assert adaptive.replans >= 1
    assert adaptive_work < naive_work


def test_adaptive_engine_end_to_end(benchmark, universe):
    query = discover_query(universe, 8, 4)

    def run_both():
        static_engine = LinkTraversalEngine(universe.client(latency=NoLatency()))
        static = static_engine.execute_sync(query.text, seeds=query.seeds)
        adaptive_engine = LinkTraversalEngine(
            universe.client(latency=NoLatency()), config=EngineConfig(adaptive=True)
        )
        adaptive = adaptive_engine.execute_sync(query.text, seeds=query.seeds)
        return static, adaptive

    static, adaptive = benchmark.pedantic(run_both, rounds=1, iterations=1)

    print_banner(f"E10 — adaptive engine on {query.name}")
    print(
        render_table(
            [
                {"engine": "zero-knowledge", "results": len(static),
                 "replans": static.stats.replans, "total_s": f"{static.stats.total_time:.2f}"},
                {"engine": "adaptive", "results": len(set(adaptive.bindings)),
                 "replans": adaptive.stats.replans, "total_s": f"{adaptive.stats.total_time:.2f}"},
            ]
        )
    )
    assert set(static.bindings) == set(adaptive.bindings)
