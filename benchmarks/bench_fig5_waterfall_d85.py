"""E4 (paper Fig. 5): the resource waterfall of Discover 8.5.

In contrast to Discover 1.5, the paper's Discover 8.5 ("all posts by
authors of posts that a given person likes") traverses *across multiple
Solid pods* automatically, and even reaches external documents (the
"Germany" dbpedia request visible in the figure).  Shape reproduced:

* multiple pods are touched (vs exactly one for Discover 1.5),
* substantially more requests than the single-pod query,
* external vocabulary documents are dereferenced,
* results remain complete w.r.t. the oracle.
"""

from __future__ import annotations

import re

from conftest import print_banner

from repro.bench import render_waterfall, run_query
from repro.net import SeededJitterLatency
from repro.solidbench import discover_query


def pods_touched(waterfall) -> set[str]:
    pods = set()
    for row in waterfall.rows:
        match = re.search(r"/pods/(\d+)/", row.url)
        if match:
            pods.add(match.group(1))
    return pods


def test_fig5_waterfall_discover_8_5(benchmark, universe):
    multi_query = discover_query(universe, 8, 4)
    single_query = discover_query(universe, 1, 5)

    multi = benchmark.pedantic(
        lambda: run_query(
            universe, multi_query, latency=SeededJitterLatency(seed=5), check_oracle=True
        ),
        rounds=1,
        iterations=1,
    )
    single = run_query(universe, single_query, check_oracle=False)

    print_banner("E4 / Fig. 5 — Resource Waterfall for Discover 8.5")
    print(render_waterfall(multi.waterfall, max_rows=25))
    print(
        f"pods touched: {len(pods_touched(multi.waterfall))} "
        f"(Discover 1.5 touches {len(pods_touched(single.waterfall))})"
    )
    print(f"requests: {multi.waterfall.request_count} vs {single.waterfall.request_count}")

    # Multi-pod traversal without user interaction.
    assert len(pods_touched(multi.waterfall)) > 1
    assert len(pods_touched(single.waterfall)) == 1

    # The multi-pod query costs substantially more requests.
    assert multi.waterfall.request_count > single.waterfall.request_count

    # External (non-pod) origins are reached, like "Germany" in the figure.
    assert multi.waterfall.origins >= 2

    assert multi.complete is True
