#!/usr/bin/env python
"""Shared performance regression gate runner.

Runs every registered gate against one freshly built universe and fails
(exit 1) if any gate reports a regression:

* **hot-path gate** — re-measures the hot-path metrics and compares them
  against the committed baseline ``BENCH_hotpath.json``: any *throughput*
  metric dropping more than ``TOLERANCE`` (20%) below baseline fails, as
  does a Discover 8.5 completeness or result-count change.  Wall-clock
  metrics are reported for context but not gated — they vary too much
  across machines; the throughput ratios are the stable signal.
* **fault-overhead gate** — the resilience layer (retry loop, breaker
  checks, installed-but-empty fault plan) must keep the zero-fault
  Discover 8.5 path within ``TOLERANCE`` of the plain client, measured
  in-process so machine speed cancels out.
* **warm-restart gate** — a service restarted against the same
  ``--store-path`` must answer the repeat query at least ``2×`` faster
  than the cold run that populated the store, with zero re-parses, zero
  network round-trips (not even 304 revalidations), and an identical
  result multiset (``BENCH_warmrestart.json`` pins the result count).
* **sharded scale-out gate** — a latency-dominated 8-query batch over
  four shared-nothing worker processes must run at least ``2.5×`` faster
  than the same batch serially (median of paired interleaved-round
  ratios), with per-query result multisets identical to the unsharded
  run and *zero* cross-shard re-parses on a warm repeat under per-origin
  routing (``BENCH_scaleout.json`` pins the result count).
* **quiescence-flush gate** — at traversal quiescence, blocking
  operators (ORDER BY, OPTIONAL, GROUP BY, ...) must flush their held
  state at least ``3×`` faster than the snapshot re-evaluation the old
  dual-path engine performed, with identical result multisets and the
  result counts pinned by ``BENCH_quiescence.json``.
* **tracing-overhead gate** — with tracing *disabled* (the default) the
  Discover 8.5 wall must stay within ``TRACING_DISABLED_TOLERANCE`` (5%)
  of the committed ``BENCH_tracing.json`` baseline — instrumentation
  points are identity checks, not work; with a live tracer + metrics
  registry the in-process overhead must stay within ``TOLERANCE`` (20%).
* **live-maintenance gate** — per pod edit, a standing query's signed
  refresh (conditional fetch + document diff + maintenance through the
  retained pipeline) must run at least ``10×`` faster than re-executing
  the full traversal, and after every edit the maintained multiset must
  replay to exactly the fresh execution's answer (``BENCH_live.json``
  pins the result count).
* **guided-traversal gate** — on a hinted universe (every pod publishes
  a ``settings/cardinality`` source index), ``--queue-policy guided``
  with the declared-origins subweb spec must answer all 37 Discover
  queries with result multisets identical to fifo's (100% recall) while
  fetching at least ``2×`` fewer documents per query on average, and
  with mean time-to-first-result (tick-clock event count, machine
  independent) no worse than fifo's.  ``BENCH_guided.json`` pins the
  per-query result counts.  Every number here is a deterministic
  function of the traversal, so there is no contention filter.
* **adversarial-hardening gate** — the full hardening stack (per-origin
  budgets, read/parse caps, fair queueing) must cost ≤10% over the
  unhardened engine on a benign Discover 8.5 run with identical results,
  while a hostile deployment's lure-induced work stays bounded: the
  hardened engine fetches at least ``10×`` fewer documents than the
  unhardened engine's global-backstop run, and a combined benign+lured
  run restricted to benign pods matches the adversary-free answer
  exactly (``BENCH_adversarial.json`` pins the result counts).

Usage::

    PYTHONPATH=src python benchmarks/check_hotpath_regression.py

Refresh the hot-path baseline after an intentional perf change::

    REPRO_WRITE_BENCH=1 PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_adversarial import (  # noqa: E402
    BASELINE_PATH as ADVERSARIAL_BASELINE_PATH,
    measure_adversarial,
    measure_benign_overhead,
)
from bench_faults import measure_zero_fault_overhead  # noqa: E402
from bench_guided import (  # noqa: E402
    BASELINE_PATH as GUIDED_BASELINE_PATH,
    DEREF_REDUCTION_FLOOR,
    build_hinted_universe,
    measure_guided,
)
from bench_hotpath import BASELINE_PATH, collect_metrics  # noqa: E402
from bench_live import (  # noqa: E402
    BASELINE_PATH as LIVE_BASELINE_PATH,
    measure_live,
)
from bench_quiescence import (  # noqa: E402
    BASELINE_PATH as QUIESCENCE_BASELINE_PATH,
    measure_quiescence,
)
from bench_scaleout import (  # noqa: E402
    BASELINE_PATH as SCALEOUT_BASELINE_PATH,
    measure_scaleout,
)
from bench_service import (  # noqa: E402
    BASELINE_PATH as SERVICE_BASELINE_PATH,
    measure_service,
)
from bench_tracing import (  # noqa: E402
    BASELINE_PATH as TRACING_BASELINE_PATH,
    measure_tracing_overhead,
)
from bench_warmrestart import (  # noqa: E402
    BASELINE_PATH as WARMRESTART_BASELINE_PATH,
    measure_warm_restart,
)

from repro.solidbench import SolidBenchConfig, build_universe  # noqa: E402

#: Maximum tolerated throughput drop (or overhead) relative to baseline.
TOLERANCE = 0.20

#: Disabled tracing must be free: ≤5% over the committed baseline wall.
TRACING_DISABLED_TOLERANCE = 0.05

#: Metrics gated as throughputs (higher is better).
THROUGHPUT_KEYS = ("terms_per_s", "dispatch_quads_per_s")


def gate_hotpath(universe) -> list[str]:
    """Throughput + completeness vs the committed BENCH_hotpath.json."""
    if not BASELINE_PATH.exists():
        return [f"no baseline at {BASELINE_PATH}; run with REPRO_WRITE_BENCH=1 first"]
    baseline = json.loads(BASELINE_PATH.read_text())
    current = collect_metrics(universe)

    failures = []
    print(f"{'metric':<24}{'baseline':>14}{'current':>14}{'ratio':>8}")
    for key in sorted(set(baseline) | set(current)):
        base, now = baseline.get(key), current.get(key)
        if key in THROUGHPUT_KEYS and isinstance(base, (int, float)) and base:
            ratio = now / base
            print(f"{key:<24}{base:>14,.0f}{now:>14,.0f}{ratio:>8.2f}")
            if ratio < 1.0 - TOLERANCE:
                failures.append(
                    f"{key} dropped {1 - ratio:.0%} (>{TOLERANCE:.0%} tolerated)"
                )
        else:
            print(f"{key:<24}{base!s:>14}{now!s:>14}{'':>8}")

    if not current.get("d85_complete"):
        failures.append("Discover 8.5 no longer matches the oracle")
    if current.get("d85_results") != baseline.get("d85_results"):
        failures.append(
            f"Discover 8.5 result count changed: "
            f"{baseline.get('d85_results')} -> {current.get('d85_results')}"
        )
    return failures


def gate_fault_overhead(universe) -> list[str]:
    """The zero-fault resilient path must cost <20% over the plain client."""
    overhead = measure_zero_fault_overhead(universe)
    print(
        f"{'d85 plain_wall_s':<24}{'':>14}{overhead['plain_wall_s']:>14}{'':>8}\n"
        f"{'d85 resilient_wall_s':<24}{'':>14}{overhead['resilient_wall_s']:>14}"
        f"{overhead['overhead_ratio']:>8.2f}"
    )
    if overhead["overhead_ratio"] > 1.0 + TOLERANCE:
        return [
            f"zero-fault resilience overhead {overhead['overhead_ratio']:.2f}x "
            f"(>{1 + TOLERANCE:.2f}x tolerated)"
        ]
    return []


def gate_tracing_overhead(universe) -> list[str]:
    """Disabled tracing ≤5% vs committed baseline; enabled ≤20% in-process.

    A 5% wall gate needs like-for-like process state, so the baseline is
    (re)written by *this script* under ``REPRO_WRITE_BENCH=1`` — measured
    at the same position in the gate sequence it is later compared at.
    On an over-threshold reading the gate re-measures once and keeps the
    better of the two attempts: single-core CI hosts see transient
    contention spikes that a second sample filters out, while a real
    regression fails both attempts.
    """
    import os

    current = measure_tracing_overhead(universe)
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        TRACING_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {TRACING_BASELINE_PATH}: {current}")
        return []
    if not TRACING_BASELINE_PATH.exists():
        return [
            f"no baseline at {TRACING_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(TRACING_BASELINE_PATH.read_text())

    def disabled_ratio_of(measured):
        if not baseline.get("plain_wall_s"):
            return 1.0
        return measured["plain_wall_s"] / baseline["plain_wall_s"]

    if (
        disabled_ratio_of(current) > 1.0 + TRACING_DISABLED_TOLERANCE
        or current["enabled_ratio"] > 1.0 + TOLERANCE
    ):
        print("over threshold; re-measuring once (contention filter)")
        retry = measure_tracing_overhead(universe)
        current = {
            **current,
            "plain_wall_s": min(current["plain_wall_s"], retry["plain_wall_s"]),
            "traced_wall_s": min(current["traced_wall_s"], retry["traced_wall_s"]),
            "enabled_ratio": min(current["enabled_ratio"], retry["enabled_ratio"]),
        }
    disabled_ratio = disabled_ratio_of(current)
    print(f"{'metric':<24}{'baseline':>14}{'current':>14}{'ratio':>8}")
    print(
        f"{'d85 disabled_wall_s':<24}{baseline['plain_wall_s']:>14}"
        f"{current['plain_wall_s']:>14}{disabled_ratio:>8.2f}"
    )
    print(
        f"{'d85 traced_wall_s':<24}{baseline['traced_wall_s']:>14}"
        f"{current['traced_wall_s']:>14}{current['enabled_ratio']:>8.2f}"
    )
    print(f"{'trace spans':<24}{baseline.get('spans')!s:>14}{current['spans']!s:>14}")

    failures = []
    if disabled_ratio > 1.0 + TRACING_DISABLED_TOLERANCE:
        failures.append(
            f"disabled-tracing hot path {disabled_ratio:.2f}x baseline "
            f"(>{1 + TRACING_DISABLED_TOLERANCE:.2f}x tolerated)"
        )
    if current["enabled_ratio"] > 1.0 + TOLERANCE:
        failures.append(
            f"enabled-tracing overhead {current['enabled_ratio']:.2f}x "
            f"(>{1 + TOLERANCE:.2f}x tolerated)"
        )
    if current["results"] != baseline.get("results"):
        failures.append(
            f"Discover 8.5 result count changed under tracing: "
            f"{baseline.get('results')} -> {current['results']}"
        )
    return failures


#: A warm service query must stay at least this much faster than cold.
SERVICE_WARM_SPEEDUP_FLOOR = 2.0


def gate_service(universe) -> list[str]:
    """Warm service runs: ≥2× faster, zero re-parses, identical results.

    These are *absolute* properties of the shared-cache design, not
    machine-relative ones: a warm query that re-parses documents or
    diverges from its cold run is a correctness bug, and a warm speedup
    under 2× means the document store stopped doing its job.  The
    committed ``BENCH_service.json`` baseline pins the result count and
    is refreshed by this script under ``REPRO_WRITE_BENCH=1``.  Like the
    tracing gate, an under-floor speedup is re-measured once so a
    transient contention spike on the cold/warm timing cannot flake.
    """
    import os

    current = measure_service(universe)
    if current["warm_speedup"] < SERVICE_WARM_SPEEDUP_FLOOR:
        print("under speedup floor; re-measuring once (contention filter)")
        retry = measure_service(universe)
        if retry["warm_speedup"] > current["warm_speedup"]:
            current = retry
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        SERVICE_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {SERVICE_BASELINE_PATH}: {current}")
        return []
    if not SERVICE_BASELINE_PATH.exists():
        return [
            f"no baseline at {SERVICE_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(SERVICE_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in ("cold_wall_s", "warm_wall_s", "warm_speedup", "concurrent_speedup"):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")
    print(
        f"{'warm_reparses':<24}{baseline.get('warm_reparses')!s:>14}"
        f"{current['warm_reparses']!s:>14}"
    )

    failures = []
    if current["warm_speedup"] < SERVICE_WARM_SPEEDUP_FLOOR:
        failures.append(
            f"warm service speedup {current['warm_speedup']}x "
            f"(≥{SERVICE_WARM_SPEEDUP_FLOOR}x required)"
        )
    if current["warm_reparses"] != 0:
        failures.append(
            f"warm service run re-parsed {current['warm_reparses']} documents "
            "(document store must make warm parses free)"
        )
    if not current["identical_results"]:
        failures.append("warm service results diverged from the cold run")
    if current["results"] != baseline.get("results"):
        failures.append(
            f"service bench result count changed: "
            f"{baseline.get('results')} -> {current['results']}"
        )
    return failures


#: A restart against the same store path must stay at least this much
#: faster than the cold run that populated it.
WARMRESTART_SPEEDUP_FLOOR = 2.0


def gate_warmrestart(universe) -> list[str]:
    """Restart over the same store: ≥2× faster, zero re-parses/re-fetches.

    The persistence tier's claim in absolute form: fresh process state
    reopening the SQLite store must answer the repeat query from disk —
    no parse (documents decode from the stored wire form), no network
    (HTTP entries are still inside their freshness window, so not even a
    304 goes out), identical result multiset.  The committed
    ``BENCH_warmrestart.json`` pins the result count and is refreshed by
    this script under ``REPRO_WRITE_BENCH=1``; an under-floor speedup is
    re-measured once (contention filter) before failing.
    """
    import os

    current = measure_warm_restart(universe)
    if current["warm_speedup"] < WARMRESTART_SPEEDUP_FLOOR:
        print("under speedup floor; re-measuring once (contention filter)")
        retry = measure_warm_restart(universe)
        if retry["warm_speedup"] > current["warm_speedup"]:
            current = retry
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        WARMRESTART_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {WARMRESTART_BASELINE_PATH}: {current}")
        return []
    if not WARMRESTART_BASELINE_PATH.exists():
        return [
            f"no baseline at {WARMRESTART_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(WARMRESTART_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in (
        "cold_wall_s",
        "warm_wall_s",
        "warm_speedup",
        "warm_reparses",
        "warm_refetches",
    ):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")

    failures = []
    if current["warm_speedup"] < WARMRESTART_SPEEDUP_FLOOR:
        failures.append(
            f"warm restart speedup {current['warm_speedup']}x "
            f"(≥{WARMRESTART_SPEEDUP_FLOOR}x required)"
        )
    if current["warm_reparses"] != 0:
        failures.append(
            f"restarted service re-parsed {current['warm_reparses']} documents "
            "(the reopened store must make warm parses free)"
        )
    if current["warm_refetches"] != 0:
        failures.append(
            f"restarted service made {current['warm_refetches']} network "
            "round-trips (reopened HTTP entries must still be fresh)"
        )
    if not current["identical_results"]:
        failures.append("restarted service results diverged from the cold run")
    if current["results"] != baseline.get("results"):
        failures.append(
            f"warm-restart bench result count changed: "
            f"{baseline.get('results')} -> {current['results']}"
        )
    return failures


#: A 4-worker sharded batch must beat the serial run by at least this.
SCALEOUT_SPEEDUP_FLOOR = 2.5


def gate_scaleout(universe) -> list[str]:
    """4-worker sharded batch ≥2.5× faster than serial, bit-identical.

    The scale-out claim in absolute form: spreading a latency-dominated
    batch over four shared-nothing worker processes must recover the
    latency/CPU overlap a single event loop cannot, while changing
    *nothing* observable — per-query result multisets identical to the
    unsharded run, zero cross-shard re-parses on a warm repeat under
    per-origin routing.  The measurement interleaves serial and sharded
    rounds and takes the median of paired per-round ratios, so machine
    drift largely cancels; an under-floor median is still re-measured
    once (contention filter) before failing.  ``BENCH_scaleout.json``
    pins the result count and is refreshed under ``REPRO_WRITE_BENCH=1``.
    """
    import os

    current = measure_scaleout(universe)
    if current["scaleout_speedup"] < SCALEOUT_SPEEDUP_FLOOR:
        print("under speedup floor; re-measuring once (contention filter)")
        retry = measure_scaleout(universe)
        if retry["scaleout_speedup"] > current["scaleout_speedup"]:
            current = retry
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        SCALEOUT_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {SCALEOUT_BASELINE_PATH}: {current}")
        return []
    if not SCALEOUT_BASELINE_PATH.exists():
        return [
            f"no baseline at {SCALEOUT_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(SCALEOUT_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in (
        "serial_walls_s",
        "sharded_walls_s",
        "scaleout_speedup",
        "warm_repeat_reparses",
    ):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")

    failures = []
    if current["scaleout_speedup"] < SCALEOUT_SPEEDUP_FLOOR:
        failures.append(
            f"4-worker scale-out speedup {current['scaleout_speedup']}x "
            f"(≥{SCALEOUT_SPEEDUP_FLOOR}x required)"
        )
    if not current["identical_results"]:
        failures.append("sharded results diverged from the serial run")
    if not current["warm_repeat_identical"]:
        failures.append("sharded warm repeat diverged from the cold run")
    if current["warm_repeat_reparses"] != 0:
        failures.append(
            f"warm sharded repeat re-parsed {current['warm_repeat_reparses']} "
            "documents across shards (per-origin routing must keep each pod "
            "parsed on exactly one shard)"
        )
    if not current["warm_repeat_from_store"]:
        failures.append(
            "warm sharded repeat fetched documents instead of serving "
            "them from the per-shard stores"
        )
    if current["results_total"] != baseline.get("results_total"):
        failures.append(
            f"scale-out bench result count changed: "
            f"{baseline.get('results_total')} -> {current['results_total']}"
        )
    return failures


#: The quiescence flush must beat snapshot re-evaluation by at least this.
QUIESCENCE_SPEEDUP_FLOOR = 3.0


def gate_quiescence(universe) -> list[str]:
    """Blocking-operator finalize ≥3× faster than snapshot re-evaluation.

    This is the unified execution stack's claim in absolute form: at
    traversal quiescence a blocking plan flushes held state in O(result),
    which must beat rebuilding a :class:`SnapshotEvaluator` and
    re-evaluating the whole query from scratch — per non-monotonic query
    variant, not just on average.  Machine speed cancels out (both sides
    run in-process on the same dataset).  The committed
    ``BENCH_quiescence.json`` pins result counts and is refreshed by this
    script under ``REPRO_WRITE_BENCH=1``.  An under-floor speedup is
    re-measured once so a transient contention spike cannot flake.
    """
    import os

    current = measure_quiescence(universe)
    if current["speedup_min"] < QUIESCENCE_SPEEDUP_FLOOR:
        print("under speedup floor; re-measuring once (contention filter)")
        retry = measure_quiescence(universe)
        if retry["speedup_min"] > current["speedup_min"]:
            current = retry
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        QUIESCENCE_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {QUIESCENCE_BASELINE_PATH}: {current}")
        return []
    if not QUIESCENCE_BASELINE_PATH.exists():
        return [
            f"no baseline at {QUIESCENCE_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(QUIESCENCE_BASELINE_PATH.read_text())

    failures = []
    print(f"{'query':<24}{'flush_s':>14}{'snapshot_s':>14}{'speedup':>8}")
    for name, entry in current["queries"].items():
        print(
            f"{name:<24}{entry['flush_s']:>14}{entry['snapshot_s']:>14}"
            f"{entry['speedup']:>8}"
        )
        if entry["speedup"] < QUIESCENCE_SPEEDUP_FLOOR:
            failures.append(
                f"{name} quiescence flush only {entry['speedup']}x faster than "
                f"snapshot re-evaluation (≥{QUIESCENCE_SPEEDUP_FLOOR}x required)"
            )
        if not entry["identical_results"]:
            failures.append(f"{name} flush results diverged from the snapshot")
        pinned = baseline.get("queries", {}).get(name, {}).get("results")
        if entry["results"] != pinned:
            failures.append(
                f"{name} result count changed: {pinned} -> {entry['results']}"
            )
    return failures


#: Benign-workload overhead ceiling for the full hardening stack.
ADVERSARIAL_OVERHEAD_CEILING = 1.10

#: Hardened lure-only traversal must induce ≥10× less work than unhardened.
CONTAINMENT_FLOOR = 10.0


def gate_adversarial(universe) -> list[str]:
    """Hardening ≤10% on benign runs; hostile induced work bounded ≥10×.

    Two absolute claims from DESIGN.md §4e.  The benign side is
    wall-relative (interleaved paired rounds, median ratio) so machine
    speed cancels; an over-ceiling reading is re-measured once
    (contention filter) before failing.  The hostile side is counted in
    documents, not seconds — the containment ratio replays exactly.
    ``BENCH_adversarial.json`` pins both result counts and is refreshed
    by this script under ``REPRO_WRITE_BENCH=1``.
    """
    import os

    current = measure_adversarial(universe)
    if current["overhead_ratio"] >= ADVERSARIAL_OVERHEAD_CEILING:
        print("over overhead ceiling; re-measuring once (contention filter)")
        retry = measure_benign_overhead(universe)
        if retry["overhead_ratio"] < current["overhead_ratio"]:
            current = {**current, **retry}
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        ADVERSARIAL_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {ADVERSARIAL_BASELINE_PATH}: {current}")
        return []
    if not ADVERSARIAL_BASELINE_PATH.exists():
        return [
            f"no baseline at {ADVERSARIAL_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(ADVERSARIAL_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in (
        "plain_wall_s",
        "hardened_wall_s",
        "overhead_ratio",
        "unhardened_induced",
        "hardened_induced",
        "containment_ratio",
    ):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")

    failures = []
    if current["overhead_ratio"] >= ADVERSARIAL_OVERHEAD_CEILING:
        failures.append(
            f"benign hardening overhead {current['overhead_ratio']:.2f}x "
            f"(<{ADVERSARIAL_OVERHEAD_CEILING:.2f}x required)"
        )
    if not current["identical_results"]:
        failures.append("hardened benign results diverged from the plain run")
    if current["containment_ratio"] < CONTAINMENT_FLOOR:
        failures.append(
            f"hostile containment only {current['containment_ratio']}x "
            f"(≥{CONTAINMENT_FLOOR}x induced-work reduction required)"
        )
    if not current["benign_identical"]:
        failures.append(
            "benign-restricted results under attack diverged from the "
            "adversary-free run"
        )
    if current["results"] != baseline.get("results"):
        failures.append(
            f"benign bench result count changed: "
            f"{baseline.get('results')} -> {current['results']}"
        )
    if current["benign_results"] != baseline.get("benign_results"):
        failures.append(
            f"adversary-free reference result count changed: "
            f"{baseline.get('benign_results')} -> {current['benign_results']}"
        )
    return failures


def gate_guided(universe) -> list[str]:
    """Guided traversal: ≥2× fewer derefs at 100% recall, TTFR no worse.

    The source-selection subsystem's claim in absolute form, per
    DESIGN.md §4g: on a hinted universe the guided discipline plus the
    declared-origins subweb spec must answer every Discover query with
    fifo's exact result multiset while averaging at least
    ``DEREF_REDUCTION_FLOOR`` times fewer dereferences, and its mean
    tick-clock time-to-first-result must not exceed fifo's.  The shared
    gate universe has no hint documents, so the bench builds its own
    (same scale and seed, ``emit_hints=True``).  Dereference counts and
    tick TTFRs are deterministic replay properties — no re-measurement,
    no tolerance band.  ``BENCH_guided.json`` pins the per-query result
    counts and is refreshed by this script under ``REPRO_WRITE_BENCH=1``.
    """
    import os

    del universe  # the gate needs a *hinted* universe
    current = measure_guided(build_hinted_universe())
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        GUIDED_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {GUIDED_BASELINE_PATH}")
        return []
    if not GUIDED_BASELINE_PATH.exists():
        return [
            f"no baseline at {GUIDED_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(GUIDED_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in (
        "fifo_derefs_total",
        "guided_derefs_total",
        "deref_ratio_mean",
        "ttfr_ratio_mean",
    ):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")

    failures = []
    if not current["all_identical"]:
        broken = [
            name
            for name, entry in current["queries"].items()
            if not entry["identical_results"]
        ]
        failures.append(f"guided lost results on {', '.join(broken)}")
    if current["deref_ratio_mean"] < DEREF_REDUCTION_FLOOR:
        failures.append(
            f"guided dereference reduction {current['deref_ratio_mean']}x "
            f"(≥{DEREF_REDUCTION_FLOOR}x required)"
        )
    if current["ttfr_ratio_mean"] > 1.0:
        failures.append(
            f"guided mean TTFR ratio {current['ttfr_ratio_mean']} "
            "(must not exceed fifo's, ≤1.0)"
        )
    for name, entry in current["queries"].items():
        pinned = baseline.get("queries", {}).get(name, {}).get("results")
        if entry["results"] != pinned:
            failures.append(
                f"{name} result count changed: {pinned} -> {entry['results']}"
            )
    return failures


#: A live maintenance refresh must beat full re-execution by at least this.
LIVE_SPEEDUP_FLOOR = 10.0


def gate_live(universe) -> list[str]:
    """Standing-query maintenance ≥10× faster than re-execution, exact replay.

    The live-query claim in absolute form: per pod edit, one signed
    refresh (conditional fetch + document diff + maintenance through the
    retained pipeline) must beat re-running the whole traversal by at
    least ``10×`` (median over the bench's edit rounds; in practice the
    margin is two orders of magnitude), and after *every* edit the
    maintained multiset must replay to exactly the fresh execution's
    answer — a speedup bought with a wrong result set is a failure, not
    a win.  Machine speed cancels (both sides run in-process on the same
    simulated pods).  The bench mutates pod documents, so it builds a
    private universe; the shared gate universe is left untouched.
    ``BENCH_live.json`` pins the result count and is refreshed by this
    script under ``REPRO_WRITE_BENCH=1``.  An under-floor speedup is
    re-measured once (contention filter) before failing.
    """
    import os

    current = measure_live(universe)
    if current["live_speedup"] < LIVE_SPEEDUP_FLOOR:
        print("under speedup floor; re-measuring once (contention filter)")
        retry = measure_live(universe)
        if retry["live_speedup"] > current["live_speedup"]:
            current = retry
    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        LIVE_BASELINE_PATH.write_text(json.dumps(current, indent=1) + "\n")
        print(f"wrote {LIVE_BASELINE_PATH}: {current}")
        return []
    if not LIVE_BASELINE_PATH.exists():
        return [
            f"no baseline at {LIVE_BASELINE_PATH}; "
            "run this script with REPRO_WRITE_BENCH=1 first"
        ]
    baseline = json.loads(LIVE_BASELINE_PATH.read_text())

    print(f"{'metric':<24}{'baseline':>14}{'current':>14}")
    for key in ("initial_wall_s", "maintain_s", "reexec_s", "live_speedup"):
        print(f"{key:<24}{baseline.get(key)!s:>14}{current.get(key)!s:>14}")

    failures = []
    if current["live_speedup"] < LIVE_SPEEDUP_FLOOR:
        failures.append(
            f"live maintenance speedup {current['live_speedup']}x "
            f"(≥{LIVE_SPEEDUP_FLOOR}x required)"
        )
    if not current["replay_identical"]:
        failures.append(
            "maintained live results diverged from re-execution after edits"
        )
    if current["results"] != baseline.get("results"):
        failures.append(
            f"live bench result count changed: "
            f"{baseline.get('results')} -> {current['results']}"
        )
    return failures


GATES = (
    ("hot path vs baseline", gate_hotpath),
    ("zero-fault resilience overhead", gate_fault_overhead),
    ("tracing overhead", gate_tracing_overhead),
    ("service warm/concurrent", gate_service),
    ("warm restart (persistent store)", gate_warmrestart),
    ("sharded scale-out", gate_scaleout),
    ("quiescence flush", gate_quiescence),
    ("guided traversal", gate_guided),
    ("live maintenance", gate_live),
    ("adversarial hardening", gate_adversarial),
)


def main() -> int:
    universe = build_universe(SolidBenchConfig(scale=0.02, seed=42))
    failures = []
    for title, gate in GATES:
        print(f"\n== {title} ==")
        failures.extend(gate(universe))

    if failures:
        print("\nREGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nall gates within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
