#!/usr/bin/env python
"""Hot-path performance regression gate.

Re-measures the hot-path metrics and compares them against the committed
baseline ``BENCH_hotpath.json``.  Fails (exit 1) when any *throughput*
metric drops more than ``TOLERANCE`` (20%) below baseline, or when the
Discover 8.5 run loses completeness.  Wall-clock metrics are reported for
context but not gated — they vary too much across machines; the
throughput ratios are the stable signal.

Usage::

    PYTHONPATH=src python benchmarks/check_hotpath_regression.py

Refresh the baseline after an intentional perf change::

    REPRO_WRITE_BENCH=1 PYTHONPATH=src python -m pytest benchmarks/bench_hotpath.py
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_hotpath import BASELINE_PATH, collect_metrics  # noqa: E402

from repro.solidbench import SolidBenchConfig, build_universe  # noqa: E402

#: Maximum tolerated throughput drop relative to the committed baseline.
TOLERANCE = 0.20

#: Metrics gated as throughputs (higher is better).
THROUGHPUT_KEYS = ("terms_per_s", "dispatch_quads_per_s")


def main() -> int:
    if not BASELINE_PATH.exists():
        print(f"no baseline at {BASELINE_PATH}; run with REPRO_WRITE_BENCH=1 first")
        return 1
    baseline = json.loads(BASELINE_PATH.read_text())

    universe = build_universe(SolidBenchConfig(scale=0.02, seed=42))
    current = collect_metrics(universe)

    failures = []
    print(f"{'metric':<24}{'baseline':>14}{'current':>14}{'ratio':>8}")
    for key in sorted(set(baseline) | set(current)):
        base, now = baseline.get(key), current.get(key)
        if key in THROUGHPUT_KEYS and isinstance(base, (int, float)) and base:
            ratio = now / base
            print(f"{key:<24}{base:>14,.0f}{now:>14,.0f}{ratio:>8.2f}")
            if ratio < 1.0 - TOLERANCE:
                failures.append(
                    f"{key} dropped {1 - ratio:.0%} (>{TOLERANCE:.0%} tolerated)"
                )
        else:
            print(f"{key:<24}{base!s:>14}{now!s:>14}{'':>8}")

    if not current.get("d85_complete"):
        failures.append("Discover 8.5 no longer matches the oracle")
    if current.get("d85_results") != baseline.get("d85_results"):
        failures.append(
            f"Discover 8.5 result count changed: "
            f"{baseline.get('d85_results')} -> {current.get('d85_results')}"
        )

    if failures:
        print("\nREGRESSION:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nhot-path throughput within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
