"""Guided-traversal benchmark: dereferences-per-result and TTFR vs fifo.

Runs every one of the 37 Discover queries twice against a *hinted*
SolidBench universe (``emit_hints=True``: every pod publishes a
``settings/cardinality`` source index):

* **fifo** — the zero-knowledge baseline.  No selector, no hints; the
  engine crawls everything reachable (it never even fetches the hint
  documents: no extractor follows ``subweb:cardinalityIndex`` without a
  selector installed).
* **guided** — ``queue_policy="guided"`` plus the declared-origins subweb
  specification below.  The selector prunes LDP infrastructure and
  irrelevant containers from the pods' own summaries, admits foreign
  sources only through the SolidBench linking predicates, and the queue
  orders links by provenance tier, result feedback, and hint
  cardinalities.

Both runs use :class:`~repro.obs.TickClock` tracing and no simulated
latency, so every number — dereference counts *and* time-to-first-result
— is a deterministic function of the traversal, not of machine speed.
TTFR here is therefore an *event-count* proxy (clock ticks once per
recorded event): stable across machines, comparable between runs.

The committed ``BENCH_guided.json`` pins per-query result counts and the
summary ratios; ``check_hotpath_regression.py``'s ``gate_guided``
re-measures and requires

* identical result multisets between fifo and guided on every query
  (100% recall),
* mean per-query dereference ratio (fifo/guided) ≥ 2.0,
* mean TTFR ratio (guided/fifo) ≤ 1.0 — guiding must not delay first
  results on average.

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_guided.py`` rewrites the
committed baseline.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from conftest import BENCH_SCALE, BENCH_SEED, print_banner

from repro.ltqp import EngineConfig, LinkTraversalEngine
from repro.ltqp.guided import SubwebSpecification
from repro.net import NoLatency
from repro.obs import TickClock, Tracer
from repro.rdf.namespaces import SNVOC
from repro.solidbench import SolidBenchConfig, build_universe, discover_suite

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_guided.json"

#: Required mean fifo/guided dereference ratio across the Discover suite.
DEREF_REDUCTION_FLOOR = 2.0


def declared_spec() -> SubwebSpecification:
    """The bench subweb spec: sources are pods (origin + 2 path segments),
    foreign pods admitted only via the predicates SolidBench uses to link
    them — exactly the reachability the Discover answers need."""
    return SubwebSpecification(
        origins="declared",
        source_depth=2,
        admit_origins_via=(
            SNVOC.likes.value,
            SNVOC.hasPost.value,
            SNVOC.hasComment.value,
            SNVOC.hasReply.value,
            SNVOC.hasModerator.value,
        ),
    )


def build_hinted_universe():
    return build_universe(
        SolidBenchConfig(scale=BENCH_SCALE, seed=BENCH_SEED, emit_hints=True)
    )


def _run(universe, query, **config_kwargs):
    engine = LinkTraversalEngine(
        universe.client(latency=NoLatency()), config=EngineConfig(**config_kwargs)
    )
    tracer = Tracer(clock=TickClock())
    return engine.query(query.text, seeds=query.seeds, tracer=tracer).run_sync()


def _multiset(execution) -> list[str]:
    return sorted(repr(binding) for binding in execution.bindings)


def measure_guided(universe=None) -> dict:
    """fifo vs guided across the full Discover suite on a hinted universe.

    ``universe`` must be a hinted universe (or None to build one); the
    shared bench universe is *not* reusable here because hint documents
    only exist with ``emit_hints``.
    """
    if universe is None:
        universe = build_hinted_universe()
    spec = declared_spec()
    per_query = {}
    deref_ratios: list[float] = []
    ttfr_ratios: list[float] = []
    for query in discover_suite(universe):
        fifo = _run(universe, query, queue_policy="fifo")
        guided = _run(universe, query, queue_policy="guided", subweb=spec)
        fifo_derefs = fifo.stats.documents_fetched
        guided_derefs = guided.stats.documents_fetched
        deref_ratio = fifo_derefs / guided_derefs if guided_derefs else float("inf")
        fifo_ttfr = fifo.stats.time_to_first_result
        guided_ttfr = guided.stats.time_to_first_result
        ttfr_ratio = (
            guided_ttfr / fifo_ttfr if fifo_ttfr and guided_ttfr is not None else None
        )
        deref_ratios.append(deref_ratio)
        if ttfr_ratio is not None:
            ttfr_ratios.append(ttfr_ratio)
        per_query[query.name] = {
            "results": len(fifo.bindings),
            "identical_results": _multiset(fifo) == _multiset(guided),
            "fifo_derefs": fifo_derefs,
            "guided_derefs": guided_derefs,
            "deref_ratio": round(deref_ratio, 3),
            "fifo_ttfr_ticks": round(fifo_ttfr, 4) if fifo_ttfr is not None else None,
            "guided_ttfr_ticks": (
                round(guided_ttfr, 4) if guided_ttfr is not None else None
            ),
            "links_pruned": guided.stats.links_pruned,
        }
    return {
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "queries": per_query,
        "fifo_derefs_total": sum(q["fifo_derefs"] for q in per_query.values()),
        "guided_derefs_total": sum(q["guided_derefs"] for q in per_query.values()),
        "deref_ratio_mean": round(sum(deref_ratios) / len(deref_ratios), 3),
        "ttfr_ratio_mean": round(sum(ttfr_ratios) / len(ttfr_ratios), 3),
        "all_identical": all(q["identical_results"] for q in per_query.values()),
    }


# -- pytest benches ----------------------------------------------------------


def test_guided_cuts_dereferences_at_full_recall(benchmark):
    metrics = benchmark.pedantic(measure_guided, rounds=1, iterations=1)
    print_banner("Guided traversal — fifo vs guided across the Discover suite")
    for name, entry in metrics["queries"].items():
        print(
            f"{name}: {entry['fifo_derefs']} -> {entry['guided_derefs']} derefs "
            f"({entry['deref_ratio']}x), {entry['results']} results, "
            f"identical={entry['identical_results']}"
        )
    print(
        f"\nmean deref ratio {metrics['deref_ratio_mean']}x, "
        f"mean TTFR ratio {metrics['ttfr_ratio_mean']}, "
        f"totals {metrics['fifo_derefs_total']} -> {metrics['guided_derefs_total']}"
    )
    assert metrics["all_identical"], "guided lost results somewhere"
    assert metrics["deref_ratio_mean"] >= DEREF_REDUCTION_FLOOR
    assert metrics["ttfr_ratio_mean"] <= 1.0


def test_write_baseline():
    """Rewrite BENCH_guided.json when REPRO_WRITE_BENCH=1 (no-op otherwise)."""
    if os.environ.get("REPRO_WRITE_BENCH") != "1":
        return
    metrics = measure_guided()
    BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
    print(f"\nwrote {BASELINE_PATH}")
