"""Scale-out benchmark: sharded 4-worker service vs serial single process.

One :class:`~repro.service.QueryService` is one event loop: CPU-bound
stretches (parsing, joining) block the loop and delay every concurrent
query's simulated network timers, which caps single-process concurrency
well below the latency/CPU overlap a real deployment gets.  Worker
*processes* restore that overlap — the OS preempts across them — so a
latency-dominated batch spread over shards must finish materially
faster than the same batch run serially.

Measurement recipe (same discipline as the other wall-clock gates):

* **interleaved rounds** — each round measures the serial wall and the
  sharded wall back-to-back, so machine-load drift hits both sides;
* **median of paired per-round ratios** — the reported speedup is the
  median of per-round serial/sharded ratios, not a ratio of means;
* **cold on both sides** — every round uses a fresh in-process service
  and a freshly spawned shard pool (spawn time excluded from timing);
* **correctness pinned** — per-query result multisets must be identical
  to the unsharded run, and a warm repeat of the whole batch (per-origin
  routing) must re-parse *zero* documents on any shard.

The batch is balanced by construction: queries are chosen so per-origin
routing places the same number on every shard (the router itself is
consulted at selection time — deterministic, SHA-1 based).

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_scaleout.py`` rewrites the
committed ``BENCH_scaleout.json``;
``python benchmarks/check_hotpath_regression.py`` gates against it.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

from conftest import print_banner

from bench_service import run_serial_batch

from repro.bench import render_table
from repro.service import ShardRouter, ShardSpec, ShardedQueryService
from repro.solidbench import discover_query

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_scaleout.json"

WORKERS = 4
ROUTING = "origin"
#: Queries routed to each shard (batch size = WORKERS * PER_SHARD).
PER_SHARD = 2
#: Simulated-RTT multiplier: the batch must be latency-dominated for the
#: overlap claim to be the thing measured (not raw parse throughput).
LATENCY_SCALE = 16.0
ROUNDS = 3


def pick_balanced_queries(universe, workers: int = WORKERS, per_shard: int = PER_SHARD):
    """Discover-1 queries over distinct pods, ``per_shard`` per shard.

    Selection consults the real router so the benchmark load is spread
    evenly by construction; the choice is deterministic (SHA-1 ring,
    deterministic universe).
    """
    router = ShardRouter([f"shard-{i}" for i in range(workers)], mode=ROUTING)
    buckets: dict[str, list] = {name: [] for name in router.ring.nodes}
    for person_index in range(universe.person_count):
        named = discover_query(universe, 1, 1, person_index=person_index)
        shard = router.route(named.text, list(named.seeds))
        if len(buckets[shard]) < per_shard:
            buckets[shard].append(named)
        if all(len(chosen) == per_shard for chosen in buckets.values()):
            break
    queries = [named for chosen in zip(*buckets.values()) for named in chosen]
    if len(queries) != workers * per_shard:
        raise RuntimeError(
            f"universe too small to balance {workers}x{per_shard} queries "
            f"(got {len(queries)})"
        )
    return queries


def _multiset(result) -> list[str]:
    return sorted(repr(timed.binding) for timed in result.results)


def run_sharded_batch(spec, queries, warm_repeat: bool = False):
    """One cold concurrent pass over a fresh shard pool.

    Returns ``(wall, results, warm)`` where ``warm`` (only when
    ``warm_repeat``) re-runs the whole batch on the now-warm pool and
    reports the parse delta across all shards plus per-query store hits.
    """

    async def scenario():
        service = ShardedQueryService(spec, workers=WORKERS, routing=ROUTING)
        await service.start()
        try:
            start = time.perf_counter()
            handles = [
                service.submit(named.text, seeds=list(named.seeds))
                for named in queries
            ]
            results = await asyncio.gather(*(handle.wait() for handle in handles))
            wall = time.perf_counter() - start
            warm = None
            if warm_repeat:
                before = (await service.status())["totals"]["document_store"]
                repeat = await asyncio.gather(
                    *(
                        service.run(named.text, seeds=list(named.seeds))
                        for named in queries
                    )
                )
                after = (await service.status())["totals"]["document_store"]
                warm = {
                    "reparses": after["parses"] - before["parses"],
                    "invalidations": after["invalidations"] - before["invalidations"],
                    "fully_from_store": all(
                        r.stats.documents_from_store == r.stats.documents_fetched
                        for r in repeat
                    ),
                    "identical": [
                        _multiset(a) == _multiset(b)
                        for a, b in zip(results, repeat)
                    ],
                    "shards": sorted({r.shard for r in results}),
                }
            return wall, results, warm
        finally:
            await service.stop()

    return asyncio.run(scenario())


def measure_scaleout(universe) -> dict:
    queries = pick_balanced_queries(universe)
    spec = ShardSpec(
        config=universe.config,
        latency_seed=13,
        latency_scale=LATENCY_SCALE,
        max_concurrent=PER_SHARD,
    )
    serial_walls: list[float] = []
    sharded_walls: list[float] = []
    ratios: list[float] = []
    identical = True
    results_total = 0
    warm = None
    for round_index in range(ROUNDS):
        serial_wall, serial_results = run_serial_batch(
            universe, queries, latency_scale=LATENCY_SCALE
        )
        last = round_index == ROUNDS - 1
        sharded_wall, sharded_results, warm_info = run_sharded_batch(
            spec, queries, warm_repeat=last
        )
        serial_walls.append(round(serial_wall, 4))
        sharded_walls.append(round(sharded_wall, 4))
        ratios.append(round(serial_wall / sharded_wall, 4))
        if round_index == 0:
            results_total = sum(len(r.results) for r in serial_results)
            identical = all(
                _multiset(a) == _multiset(b)
                for a, b in zip(serial_results, sharded_results)
            )
        if last:
            warm = warm_info
    return {
        "workers": WORKERS,
        "routing": ROUTING,
        "batch_size": len(queries),
        "latency_scale": LATENCY_SCALE,
        "rounds": ROUNDS,
        "serial_walls_s": serial_walls,
        "sharded_walls_s": sharded_walls,
        "ratios": ratios,
        "scaleout_speedup": round(statistics.median(ratios), 2),
        "identical_results": identical,
        "results_total": results_total,
        "warm_repeat_reparses": warm["reparses"] if warm else None,
        "warm_repeat_from_store": bool(warm and warm["fully_from_store"]),
        "warm_repeat_identical": bool(warm and all(warm["identical"])),
        "shards_used": warm["shards"] if warm else [],
    }


def _report(metrics: dict) -> None:
    print_banner(
        f"Scale-out — {metrics['batch_size']} queries, serial vs "
        f"{metrics['workers']} sharded workers ({metrics['routing']} routing)"
    )
    print(
        render_table(
            [
                {
                    "round": i + 1,
                    "serial_s": s,
                    "sharded_s": c,
                    "ratio": r,
                }
                for i, (s, c, r) in enumerate(
                    zip(
                        metrics["serial_walls_s"],
                        metrics["sharded_walls_s"],
                        metrics["ratios"],
                    )
                )
            ]
        )
    )
    print(
        f"scale-out speedup (median of paired ratios): "
        f"{metrics['scaleout_speedup']}x over {metrics['shards_used']}"
    )
    print(
        f"identical multisets: {metrics['identical_results']}; "
        f"warm repeat re-parses: {metrics['warm_repeat_reparses']} "
        f"(fully from store: {metrics['warm_repeat_from_store']})"
    )


def test_scaleout(universe):
    metrics = measure_scaleout(universe)
    _report(metrics)

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
        print(f"wrote {BASELINE_PATH}")

    assert metrics["identical_results"]
    assert metrics["warm_repeat_identical"]
    assert metrics["warm_repeat_reparses"] == 0
    assert metrics["warm_repeat_from_store"]
    # The gate enforces the full 2.5x floor with a contention re-measure;
    # the pytest assertion leaves slack for loaded CI boxes.
    assert metrics["scaleout_speedup"] >= 2.0
