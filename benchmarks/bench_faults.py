"""Fault-tolerance benchmark: Discover recall vs injected fault rate.

For each transient fault rate, run Discover-suite queries twice — once
with the default resilient :class:`NetworkPolicy` (retries + backoff +
breaker + link re-queueing) and once with resilience disabled — and
report **recall** (results returned / fault-free results).  The resilient
engine should hold recall at 1.0 until faults outlast its retry budget;
the naive client degrades immediately, and the stats' completeness
report quantifies what it lost.

Also measures the **zero-fault overhead** of the resilience layer: the
wall-clock cost of running Discover 8.5 with an installed-but-empty fault
plan and full retry machinery, which :mod:`check_hotpath_regression`
gates at 20% against the plain hot-path run.

Run as a bench (prints the recall table + ASCII plot)::

    PYTHONPATH=src python -m pytest benchmarks/bench_faults.py -s

or headlessly via ``collect_fault_metrics(universe)``.
"""

from __future__ import annotations

import time

from repro.ltqp import EngineConfig, LinkTraversalEngine, NetworkPolicy
from repro.net import NoLatency
from repro.net.faults import FaultPlan
from repro.net.resilience import RetryPolicy
from repro.solidbench import discover_query

#: Transient fault rates swept by the recall benchmark.
FAULT_RATES = (0.0, 0.1, 0.2, 0.3, 0.5)

#: Discover queries in the sweep: (template, variant).
SUITE = ((1, 5), (8, 5))

FAULT_SEED = 13


def _fast_retry_network() -> NetworkPolicy:
    """Default resilience semantics with negligible backoff sleeps."""
    return NetworkPolicy(retry=RetryPolicy(base_delay=0.0001, max_delay=0.001))


def _run(universe, query, plan, network):
    universe.internet.install_fault_plan(plan)
    try:
        engine = LinkTraversalEngine(
            universe.client(latency=NoLatency()),
            config=EngineConfig(network=network),
        )
        return engine.query(query.text, seeds=query.seeds).run_sync()
    finally:
        universe.internet.install_fault_plan(None)


def collect_fault_metrics(universe) -> dict:
    """The recall-vs-fault-rate table for the Discover suite."""
    rows = []
    for template, variant in SUITE:
        query = discover_query(universe, template, variant)
        baseline = _run(universe, query, None, _fast_retry_network())
        base_count = len(baseline) or 1
        for rate in FAULT_RATES:
            plan = lambda: FaultPlan.transient(rate=rate, seed=FAULT_SEED)
            resilient = _run(universe, query, plan(), _fast_retry_network())
            naive = _run(universe, query, plan(), NetworkPolicy.no_retry())
            rows.append(
                {
                    "query": query.name,
                    "rate": rate,
                    "baseline_results": len(baseline),
                    "resilient_recall": round(len(resilient) / base_count, 4),
                    "naive_recall": round(len(naive) / base_count, 4),
                    "http_retries": resilient.stats.http_retries,
                    "documents_retried": resilient.stats.documents_retried,
                    "naive_abandoned": naive.stats.documents_abandoned,
                    "naive_estimated_missing_links": (
                        naive.stats.estimated_missing_links()
                    ),
                }
            )
    return {"rows": rows}


def measure_zero_fault_overhead(universe, rounds: int = 3) -> dict:
    """Discover 8.5 wall time: plain client vs resilient client + empty plan.

    Both runs share latency model and universe; the ratio isolates what
    the retry/breaker machinery costs when nothing ever fails.  Rounds
    are interleaved (plain, resilient, plain, ...) and the overhead
    ratio is the median of per-pair ratios, so transient contention on
    single-core hosts hits both sides of the division instead of
    skewing a one-shot comparison.
    """
    query = discover_query(universe, 8, 4)

    plain_walls, resilient_walls = [], []
    plain_count = resilient_count = 0
    for _ in range(rounds):
        start = time.perf_counter()
        plain = _run(universe, query, None, NetworkPolicy.no_retry())
        plain_walls.append(time.perf_counter() - start)
        plain_count = len(plain)

        start = time.perf_counter()
        resilient = _run(
            universe, query, FaultPlan.transient(rate=0.0), NetworkPolicy()
        )
        resilient_walls.append(time.perf_counter() - start)
        resilient_count = len(resilient)

    assert plain_count == resilient_count, "zero-fault plan must not change answers"
    pair_ratios = sorted(r / p for p, r in zip(plain_walls, resilient_walls))
    return {
        "plain_wall_s": round(min(plain_walls), 3),
        "resilient_wall_s": round(min(resilient_walls), 3),
        "overhead_ratio": round(pair_ratios[len(pair_ratios) // 2], 3),
        "results": resilient_count,
    }


def render_recall_plot(rows, width: int = 40) -> str:
    """ASCII recall-vs-fault-rate curves (resilient `#` vs naive `o`)."""
    lines = [f"{'query':<14}{'rate':>6}  recall  0{'─' * (width - 2)}1"]
    for row in rows:
        for label, marker in (("resilient_recall", "#"), ("naive_recall", "o")):
            recall = row[label]
            bar = marker * max(0, round(recall * width))
            lines.append(
                f"{row['query']:<14}{row['rate']:>6.0%}  {recall:>6.2f}  {bar}"
            )
    return "\n".join(lines)


# -- pytest benches ----------------------------------------------------------


def test_recall_vs_fault_rate(universe):
    metrics = collect_fault_metrics(universe)
    print()
    print(render_recall_plot(metrics["rows"]))
    for row in metrics["rows"]:
        # Transient faults (1 failed attempt/URL) are fully masked while
        # the retry budget lasts; at 50% on Discover 8.5 the default
        # 1024-retry budget runs out and recall degrades gracefully —
        # still far above the naive client, and reported in the stats.
        if row["rate"] <= 0.3:
            assert row["resilient_recall"] == 1.0, row
        else:
            assert row["resilient_recall"] >= 0.9, row
        if row["rate"] >= 0.3:
            assert row["naive_recall"] < 1.0, row
        assert row["resilient_recall"] >= row["naive_recall"], row


def test_zero_fault_overhead(universe):
    overhead = measure_zero_fault_overhead(universe)
    print(f"\nzero-fault overhead: {overhead}")
    assert overhead["overhead_ratio"] < 1.2
