"""E5 (paper §4.2): SolidBench default-scale dataset statistics.

    "we host 1.531 Solid pods that were generated using the default
     settings of the SolidBench dataset generator, which consists of
     3.556.159 triples spread over 158.233 RDF files across these pods"

At bench scale we verify the *per-pod ratios* (files/pod ≈ 103.4,
triples/file ≈ 22.5) and extrapolate; set ``REPRO_FULL_SCALE=1`` to
generate the full 1,531-pod universe and check the absolute numbers
(within tolerance — our generator is a reimplementation, not a byte
replica of LDBC datagen).
"""

from __future__ import annotations

import os

from conftest import BENCH_SEED, print_banner

from repro.solidbench import PAPER_SCALE_TARGETS, SolidBenchConfig, build_universe

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE") == "1"
STATS_SCALE = 1.0 if FULL_SCALE else 0.05


def generate():
    universe = build_universe(SolidBenchConfig(scale=STATS_SCALE, seed=BENCH_SEED))
    return universe.statistics()


def test_dataset_statistics_match_paper_ratios(benchmark):
    stats = benchmark.pedantic(generate, rounds=1, iterations=1)

    scale_factor = PAPER_SCALE_TARGETS["pods"] / stats["pods"]
    extrapolated_files = stats["files"] * scale_factor
    extrapolated_triples = stats["triples"] * scale_factor

    print_banner("E5 / §4.2 — SolidBench dataset statistics")
    print(f"{'':24}{'paper':>12}{'measured*':>14}")
    print(f"{'pods':24}{PAPER_SCALE_TARGETS['pods']:>12}{stats['pods'] * scale_factor:>14.0f}")
    print(f"{'RDF files':24}{PAPER_SCALE_TARGETS['files']:>12}{extrapolated_files:>14.0f}")
    print(f"{'triples':24}{PAPER_SCALE_TARGETS['triples']:>12}{extrapolated_triples:>14.0f}")
    print(f"{'files / pod':24}{PAPER_SCALE_TARGETS['files_per_pod']:>12.1f}{stats['files_per_pod']:>14.1f}")
    print(f"{'triples / file':24}{PAPER_SCALE_TARGETS['triples_per_file']:>12.1f}{stats['triples_per_file']:>14.1f}")
    print(f"(*extrapolated from scale {STATS_SCALE}; REPRO_FULL_SCALE=1 for absolute)")

    tolerance = 0.15
    assert (
        abs(stats["files_per_pod"] - PAPER_SCALE_TARGETS["files_per_pod"])
        / PAPER_SCALE_TARGETS["files_per_pod"]
        < tolerance
    )
    assert (
        abs(stats["triples_per_file"] - PAPER_SCALE_TARGETS["triples_per_file"])
        / PAPER_SCALE_TARGETS["triples_per_file"]
        < tolerance
    )
    if FULL_SCALE:
        assert stats["pods"] == PAPER_SCALE_TARGETS["pods"]
        assert abs(stats["files"] - PAPER_SCALE_TARGETS["files"]) / PAPER_SCALE_TARGETS["files"] < tolerance
        assert (
            abs(stats["triples"] - PAPER_SCALE_TARGETS["triples"]) / PAPER_SCALE_TARGETS["triples"]
            < tolerance
        )


def test_generation_is_deterministic(benchmark):
    def twice():
        first = build_universe(SolidBenchConfig(scale=0.01, seed=123)).statistics()
        second = build_universe(SolidBenchConfig(scale=0.01, seed=123)).statistics()
        return first, second

    first, second = benchmark.pedantic(twice, rounds=1, iterations=1)
    assert first == second
