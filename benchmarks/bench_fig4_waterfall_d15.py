"""E3 (paper Fig. 4): the resource waterfall of Discover 1.5.

The paper opens the browser Network tab while Discover 1.5 runs: the
waterfall shows ``card`` → ``publicTypeIndex`` → pod containers (posts/,
profile/, comments/, settings/, noise/) → date-fragmented post files
(2010-10-12, 2011-11-21, ...), with dependent requests starting after
their parent and independent ones overlapping.  Shape reproduced here:

* the traversal stays within a *single* pod (plus the vocabulary host),
* the first request is the seed WebID profile (``card``),
* the dependency tree is at least 3 deep (card → root → container → file),
* date-named post documents appear in the request list.
"""

from __future__ import annotations

import re

from conftest import print_banner

from repro.bench import render_waterfall, run_query
from repro.net import SeededJitterLatency
from repro.solidbench import discover_query

_DATE_NAME = re.compile(r"\d{4}-\d{2}-\d{2}$")


def pods_touched(waterfall) -> set[str]:
    pods = set()
    for row in waterfall.rows:
        match = re.search(r"/pods/(\d+)/", row.url)
        if match:
            pods.add(match.group(1))
    return pods


def test_fig4_waterfall_discover_1_5(benchmark, universe):
    query = discover_query(universe, 1, 5)
    report = benchmark.pedantic(
        lambda: run_query(
            universe, query, latency=SeededJitterLatency(seed=4), check_oracle=True
        ),
        rounds=1,
        iterations=1,
    )
    waterfall = report.waterfall

    print_banner("E3 / Fig. 4 — Resource Waterfall for Discover 1.5")
    print(render_waterfall(waterfall, max_rows=25))

    # Single-pod traversal (Fig. 4 targets one person's pod).
    assert len(pods_touched(waterfall)) == 1

    # The seed WebID document is fetched first.
    assert waterfall.rows[0].short_name == "card"

    # Dependency chain card → pod root → container → dated file.
    assert waterfall.max_depth >= 3

    # Date-fragmented post documents are visible, as in the figure.
    dated = [row for row in waterfall.rows if _DATE_NAME.search(row.short_name)]
    assert dated, "expected date-fragmented message documents in the waterfall"

    # Requests overlap (the engine fetches in parallel like the browser).
    assert waterfall.max_parallelism >= 2

    # And the query is still answered completely.
    assert report.complete is True
