"""E13 (paper §1): traversal cost is local, not global.

The motivation for LTQP over federation/indexing (paper §1): DKGs have
*many small sources*, and a central index must grow with the whole web,
whereas traversal-based execution only pays for the *reachable* part.
We grow the universe (2×, 4× pods) and measure a single-pod query
(Discover 1): its request count stays flat while the universe — and the
oracle's work — grows linearly.  The multi-pod query's cost grows with
the social neighbourhood instead, as expected.
"""

from __future__ import annotations

from conftest import BENCH_SEED, print_banner

from repro.bench import render_table, run_query
from repro.solidbench import SolidBenchConfig, build_universe, discover_query

SCALES = [0.01, 0.02, 0.04]


def run_scaling():
    rows = []
    for scale in SCALES:
        universe = build_universe(SolidBenchConfig(scale=scale, seed=BENCH_SEED))
        # Fix the seed person by index so the query's own pod stays
        # comparable while the universe around it grows.
        single = discover_query(universe, 1, 1, person_index=3)
        report = run_query(universe, single, check_oracle=True)
        rows.append(
            {
                "scale": scale,
                "pods": universe.person_count,
                "triples": universe.statistics()["triples"],
                "requests": report.waterfall.request_count,
                "documents": report.documents_fetched,
                "complete": "yes" if report.complete else "NO",
            }
        )
    return rows


def test_single_pod_query_cost_is_scale_invariant(benchmark):
    rows = benchmark.pedantic(run_scaling, rounds=1, iterations=1)

    print_banner("E13 / §1 — universe grows, single-pod traversal cost doesn't")
    print(render_table(rows))

    assert all(row["complete"] == "yes" for row in rows)
    # Universe grows ~4×...
    assert rows[-1]["pods"] >= 3 * rows[0]["pods"]
    assert rows[-1]["triples"] >= 3 * rows[0]["triples"]
    # ...while the single-pod query's cost stays flat (±25% tolerance for
    # per-person activity noise across regenerated universes).
    baseline = rows[0]["requests"]
    for row in rows[1:]:
        assert abs(row["requests"] - baseline) / baseline < 0.25
