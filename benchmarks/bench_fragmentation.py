"""E12 ([14], SolidBench design axis): fragmentation strategy ablation.

SolidBench supports multiple data fragmentation strategies; the paper's
demo runs the dated default (visible as ``posts/2010-10-12`` files in
Fig. 4).  This bench compares traversal cost across layouts for the same
abstract data: the answers are invariant, the request count tracks the
granularity (one big document ≪ per-date files ≤ per-message files).
"""

from __future__ import annotations

from conftest import BENCH_SEED, print_banner

from repro.bench import render_table, run_query
from repro.solidbench import Fragmentation, SolidBenchConfig, build_universe, discover_query

SCALE = 0.01


def run_all_modes():
    rows = []
    answers = set()
    for mode in Fragmentation:
        universe = build_universe(
            SolidBenchConfig(scale=SCALE, seed=BENCH_SEED, fragmentation=mode)
        )
        query = discover_query(universe, 2, 1)
        report = run_query(universe, query, check_oracle=True)
        stats = universe.statistics()
        rows.append(
            {
                "fragmentation": mode.value,
                "files": stats["files"],
                "results": report.result_count,
                "complete": "yes" if report.complete else "NO",
                "requests": report.waterfall.request_count,
                "bytes": report.waterfall.total_bytes,
            }
        )
        answers.add(report.result_count)
    return rows, answers


def test_fragmentation_ablation(benchmark):
    rows, answers = benchmark.pedantic(run_all_modes, rounds=1, iterations=1)

    print_banner("E12 / [14] — fragmentation strategy ablation (Discover 2.1)")
    print(render_table(rows))

    by_mode = {row["fragmentation"]: row for row in rows}
    # Answers invariant across layouts.
    assert len(answers) == 1
    assert all(row["complete"] == "yes" for row in rows)
    # Coarser layout → fewer requests.
    assert by_mode["single"]["requests"] < by_mode["dated"]["requests"]
    assert by_mode["dated"]["requests"] <= by_mode["per-resource"]["requests"]
    # File counts track granularity.
    assert by_mode["single"]["files"] < by_mode["dated"]["files"]
