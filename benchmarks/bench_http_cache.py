"""E11 (paper Fig. 4, "(disk cache)"): client-side HTTP caching.

Every request in the paper's waterfall screenshots is served from the
browser's disk cache in single-digit milliseconds.  Our reproduction adds
the same layer (:class:`repro.net.HttpCache`): the first execution of a
query pays full network cost; re-running it against a warm cache answers
most requests locally.

Shape: identical answers, near-total cache hit rate on the second run,
and a large reduction in bytes transferred.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import render_table
from repro.ltqp import LinkTraversalEngine
from repro.net import HttpCache, HttpClient, RequestLog, SeededJitterLatency
from repro.solidbench import discover_query


def test_warm_cache_run_matches_and_saves_transfer(benchmark, universe):
    query = discover_query(universe, 1, 5)
    cache = HttpCache(default_max_age=3600)

    def run_twice():
        cold_log, warm_log = RequestLog(), RequestLog()
        latency = SeededJitterLatency(seed=11)
        cold_client = HttpClient(
            universe.internet, latency=latency, log=cold_log, cache=cache
        )
        cold = LinkTraversalEngine(cold_client).execute_sync(query.text, seeds=query.seeds)
        warm_client = HttpClient(
            universe.internet, latency=latency, log=warm_log, cache=cache
        )
        warm = LinkTraversalEngine(warm_client).execute_sync(query.text, seeds=query.seeds)
        return cold, warm, cold_log, warm_log

    cold, warm, cold_log, warm_log = benchmark.pedantic(run_twice, rounds=1, iterations=1)

    cold_cached = sum(1 for r in cold_log.records if r.from_cache)
    warm_cached = sum(1 for r in warm_log.records if r.from_cache)

    print_banner("E11 / Fig. 4 '(disk cache)' — cold vs warm execution")
    print(
        render_table(
            [
                {"run": "cold", "results": len(cold), "requests": len(cold_log),
                 "from_cache": cold_cached, "total_s": f"{cold.stats.total_time:.3f}"},
                {"run": "warm", "results": len(warm), "requests": len(warm_log),
                 "from_cache": warm_cached, "total_s": f"{warm.stats.total_time:.3f}"},
            ]
        )
    )
    print(f"cache statistics: {cache.statistics()}")

    assert set(cold.bindings) == set(warm.bindings)
    assert cold_cached == 0
    # Nearly everything on the warm run comes from cache (failed fetches
    # like 404 vocabulary documents are not cached).
    ok_requests = sum(1 for r in warm_log.records if r.ok)
    assert warm_cached >= 0.9 * ok_requests
    assert warm.stats.total_time <= cold.stats.total_time
