"""E9 (paper §5, after [34]): link queue evolution during traversal.

The paper cites "How Does the Link Queue Evolve during Traversal-Based
Query Processing?" as the basis for future link-queue enhancements.  We
record queue-length samples at every push/pop and compare Discover 1.5
(single pod) against Discover 8.5 (multi-pod):

* the queue grows then drains back to zero for both,
* the multi-pod query's queue peaks higher and processes more links,
* a priority queue (structural documents first) does not change the
  answer, only the traversal order.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import queue_sparkline, render_table
from repro.ltqp import LinkTraversalEngine, PriorityLinkQueue
from repro.net import NoLatency
from repro.solidbench import discover_query


def run_with_queue(universe, query, queue_factory):
    engine = LinkTraversalEngine(
        universe.client(latency=NoLatency()), queue_factory=queue_factory
    )
    execution = engine.execute_sync(query.text, seeds=query.seeds)
    return execution


def queue_profile(execution):
    samples = execution.stats.queue_samples
    lengths = [s.queue_length for s in samples]
    return {
        "pushed": samples[-1].pushed_total if samples else 0,
        "peak": max(lengths, default=0),
        "final": lengths[-1] if lengths else 0,
    }


def test_queue_evolution_single_vs_multi_pod(benchmark, universe):
    single_query = discover_query(universe, 1, 5)
    multi_query = discover_query(universe, 8, 4)

    def run_both():
        from repro.ltqp import FifoLinkQueue

        return (
            run_with_queue(universe, single_query, FifoLinkQueue),
            run_with_queue(universe, multi_query, FifoLinkQueue),
        )

    single, multi = benchmark.pedantic(run_both, rounds=1, iterations=1)
    single_profile, multi_profile = queue_profile(single), queue_profile(multi)

    print_banner("E9 / [34] — link queue evolution")
    print(
        render_table(
            [
                {"query": single_query.name, **single_profile},
                {"query": multi_query.name, **multi_profile},
            ]
        )
    )
    print(f"{single_query.name}: {queue_sparkline(single.stats.queue_samples)}")
    print(f"{multi_query.name}: {queue_sparkline(multi.stats.queue_samples)}")

    # The queue always drains: traversal terminates.
    assert single_profile["final"] == 0
    assert multi_profile["final"] == 0
    # Multi-pod traversal queues more links and peaks higher.
    assert multi_profile["pushed"] > single_profile["pushed"]
    assert multi_profile["peak"] >= single_profile["peak"]


def test_queue_disciplines_preserve_answers(benchmark, universe):
    """FIFO (paper default), LIFO (depth-first), and priority ordering all
    terminate with identical answers; only arrival order differs."""
    query = discover_query(universe, 2, 1)

    def run_all():
        from repro.ltqp import FifoLinkQueue, LifoLinkQueue

        return {
            "fifo": run_with_queue(universe, query, FifoLinkQueue),
            "lifo": run_with_queue(universe, query, LifoLinkQueue),
            "priority": run_with_queue(universe, query, PriorityLinkQueue),
        }

    executions = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print_banner("E9 — queue disciplines (FIFO vs LIFO vs priority)")
    print(
        render_table(
            [
                {"queue": name, "results": len(execution), **queue_profile(execution)}
                for name, execution in executions.items()
            ]
        )
    )
    answer_sets = [frozenset(execution.bindings) for execution in executions.values()]
    assert len(set(answer_sets)) == 1
