"""E6 (paper §1/§5): time-to-first-result and total query time.

    "non-complex queries can be completed in the order of seconds, with
     first results showing up in less than a second" ... "Many queries
     start producing results in less than a second, which is below the
     threshold for obstructive delay in human perception"

Our substrate is an in-process simulation with millisecond latencies, so
absolute times are far below the paper's; the *shape* assertions:

* every streaming Discover query produces its first result well before it
  finishes (pipelined execution pays off),
* with realistic per-request latency, most queries' TTFR stays under
  Nielsen's 1-second threshold while total times may exceed it,
* simpler templates (1-5, single pod) finish faster than template 8
  (multi-pod).
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import render_table, run_query
from repro.net import SeededJitterLatency
from repro.solidbench import discover_query

#: Realistic per-document latency: 20-80 ms RTT, like a nearby server.
REALISTIC = SeededJitterLatency(seed=9, min_rtt_seconds=0.02, max_rtt_seconds=0.08)


def run_templates(universe):
    reports = []
    for template in range(1, 9):
        query = discover_query(universe, template, 1)
        reports.append(run_query(universe, query, latency=REALISTIC, check_oracle=False))
    return reports


def test_ttfr_below_one_second_threshold(benchmark, universe):
    reports = benchmark.pedantic(lambda: run_templates(universe), rounds=1, iterations=1)

    rows = []
    for report in reports:
        rows.append(
            {
                "query": report.query.name,
                "results": report.result_count,
                "ttfr_s": f"{report.time_to_first_result:.3f}"
                if report.time_to_first_result is not None
                else "-",
                "total_s": f"{report.total_time:.3f}",
                "requests": report.waterfall.request_count,
            }
        )
    print_banner("E6 / §5 — time-to-first-result per Discover template")
    print(render_table(rows))

    streaming = [r for r in reports if r.result_count and r.time_to_first_result is not None]
    assert streaming, "no streaming results at all"

    # First results arrive before the query completes (pipelining).
    for report in streaming:
        assert report.time_to_first_result < report.total_time

    # Nielsen threshold: most queries show first results < 1 s.
    under_threshold = sum(1 for r in streaming if r.time_to_first_result < 1.0)
    assert under_threshold / len(streaming) >= 0.75

    # Multi-pod template 8 costs more than single-pod template 1.
    by_template = {r.query.template: r for r in reports}
    assert by_template[8].total_time > by_template[1].total_time


def test_first_result_arrives_in_first_half(benchmark, universe):
    query = discover_query(universe, 2, 1)
    report = benchmark.pedantic(
        lambda: run_query(universe, query, latency=REALISTIC, check_oracle=False),
        rounds=1,
        iterations=1,
    )
    print_banner("E6 — result arrival profile for Discover 2.1")
    times = report.result_times
    print(f"results: {len(times)}; first at {times[0]:.3f}s, last at {times[-1]:.3f}s, "
          f"traversal total {report.total_time:.3f}s")
    assert times[0] < report.total_time / 2
