"""E7 (paper §4.2): the 37 default Discover queries all execute.

    "we provide a total of 37 default queries that can be selected in the
     dropdown-list of queries"

This bench runs every default query end-to-end through the traversal
engine and reports one row each.  Shape assertions: exactly 37 queries,
every one executes without error, all are answered completely w.r.t. the
oracle, and the large majority return results on the bench universe.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import render_table, run_suite
from repro.solidbench import discover_suite


def test_all_37_default_queries_execute(benchmark, universe):
    queries = discover_suite(universe)
    assert len(queries) == 37

    reports = benchmark.pedantic(
        lambda: run_suite(universe, queries, check_oracle=True),
        rounds=1,
        iterations=1,
    )

    print_banner("E7 / §4.2 — the 37 default Discover queries")
    print(render_table([report.row() for report in reports]))

    assert len(reports) == 37
    # Completeness relative to the oracle for every query.
    incomplete = [r.query.name for r in reports if r.complete is not True]
    assert not incomplete, f"incomplete queries: {incomplete}"
    # The demo expects queries to show answers: most templates have data.
    with_results = sum(1 for r in reports if r.result_count > 0)
    assert with_results / len(reports) >= 0.9
    # All streamed through the monotonic pipeline.
    assert all(r.streaming for r in reports)
