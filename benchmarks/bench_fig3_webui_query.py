"""E2 (paper Fig. 3): the demo UI query — "[SolidBench] Discover 6.5".

The screenshot shows Discover 6.5 returning 27 results in 3.8 s, listing
forum ids and titles ("Wall of Eli Peretz", "Album 11 of Eli Peretz", ...).
Absolute numbers depend on the seed person's activity; the shape we check:
the query completes in seconds, returns tens of results, every result is a
(forumId, forumTitle) pair, and the titles follow the Wall/Album format.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import run_query
from repro.net import SeededJitterLatency
from repro.rdf import Variable
from repro.solidbench import discover_query


def test_fig3_discover_6_5(benchmark, universe):
    query = discover_query(universe, 6, 4)

    report = benchmark.pedantic(
        lambda: run_query(
            universe,
            query,
            latency=SeededJitterLatency(seed=7),
            check_oracle=True,
        ),
        rounds=1,
        iterations=1,
    )

    print_banner("E2 / Fig. 3 — demo UI query Discover 6.x")
    print(f"query:   {query.name} ({query.description})")
    print(f"results: {report.result_count} in {report.total_time:.2f}s "
          f"(paper screenshot: 27 results in 3.8s)")
    print(f"complete vs oracle: {report.complete}")

    assert report.result_count > 0
    assert report.complete is True
    assert report.total_time < 30.0  # "in the order of seconds"


def test_fig3_result_shape(benchmark, universe):
    query = discover_query(universe, 6, 4)
    report = benchmark.pedantic(
        lambda: run_query(universe, query, check_oracle=False), rounds=1, iterations=1
    )

    # Every result binds forumId + forumTitle; titles are Walls or Albums.
    from repro.ltqp import LinkTraversalEngine  # noqa: F401 (docs cross-ref)

    engine = universe.fast_engine()
    execution = engine.execute_sync(query.text, seeds=query.seeds)
    for binding in execution.bindings:
        assert Variable("forumId") in binding
        title = binding[Variable("forumTitle")].value
        assert title.startswith(("Wall of ", "Album ")), title
    print_banner("E2 — result titles (Fig. 3 style)")
    for timed in execution.results[:6]:
        print(
            timed.binding[Variable("forumId")].value,
            "→",
            timed.binding[Variable("forumTitle")].value,
        )
    assert report.result_count == len(execution.bindings)
