"""Shared fixtures for the benchmark suite.

Scale is configurable through ``REPRO_BENCH_SCALE`` (default 0.02 ≈ 31
pods, fast enough for CI).  ``REPRO_FULL_SCALE=1`` switches the dataset
statistics bench (E5) to the paper's full scale (1,531 pods — several
minutes and a few GB of RAM).
"""

from __future__ import annotations

import os

import pytest

from repro.solidbench import SolidBenchConfig, build_universe

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "42"))


@pytest.fixture(scope="session")
def universe():
    """The simulated demo environment all benches run against."""
    return build_universe(SolidBenchConfig(scale=BENCH_SCALE, seed=BENCH_SEED))


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
