"""Service-mode benchmarks: cold vs warm latency, concurrent throughput.

The :class:`~repro.service.QueryService` exists to amortize work across
queries: one HTTP cache and one parsed-document store serve every
execution.  Two claims to measure:

* **warm speedup** — re-running a Discover query against a warm service
  must be at least 2× faster than the cold run (every document comes
  from the HTTP cache, every parse from the document store), with a
  byte-identical result multiset and *zero* re-parses;
* **concurrent throughput** — running a mixed query batch concurrently
  through one service must beat running the same batch serially on the
  same simulated network (traversal latency overlaps).

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_service.py`` rewrites the
committed baseline ``BENCH_service.json``;
``python benchmarks/check_hotpath_regression.py`` gates against it.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

from conftest import print_banner

from repro.bench import render_table
from repro.net import SeededJitterLatency
from repro.service import QueryService, SharedResources
from repro.solidbench import discover_query

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_service.json"

#: The mixed batch for the throughput comparison (template, variant).
BATCH = ((1, 5), (2, 5), (4, 5), (5, 5))


def _service(universe, latency_scale: float = 1.0, **kwargs) -> QueryService:
    resources = SharedResources.for_universe(
        universe, latency=SeededJitterLatency(seed=13), latency_scale=latency_scale
    )
    return QueryService(resources, **kwargs)


def measure_cold_vs_warm(universe) -> dict:
    """One query, cold then warm, through a fresh service."""
    service = _service(universe)
    named = discover_query(universe, 1, 5)

    async def scenario():
        start = time.perf_counter()
        cold = await service.run(named.text, seeds=named.seeds)
        cold_wall = time.perf_counter() - start
        parses_after_cold = service.resources.document_store.parses
        start = time.perf_counter()
        warm = await service.run(named.text, seeds=named.seeds)
        warm_wall = time.perf_counter() - start
        return cold, cold_wall, parses_after_cold, warm, warm_wall

    cold, cold_wall, parses_after_cold, warm, warm_wall = asyncio.run(scenario())
    store = service.resources.document_store
    identical = sorted(repr(t.binding) for t in cold.results) == sorted(
        repr(t.binding) for t in warm.results
    )
    return {
        "cold_wall_s": round(cold_wall, 4),
        "warm_wall_s": round(warm_wall, 4),
        "warm_speedup": round(cold_wall / warm_wall, 2) if warm_wall else 0.0,
        "warm_reparses": store.parses - parses_after_cold,
        "warm_from_store": warm.stats.documents_from_store,
        "warm_fetched": warm.stats.documents_fetched,
        "identical_results": identical,
        "results": len(cold.results),
    }


def measure_concurrency(
    universe,
    batch=BATCH,
    max_concurrent=None,
    latency_scale: float = 1.0,
) -> dict:
    """A query batch serially vs concurrently, each on a fresh (cold) service.

    Parametrized so one harness serves both the in-process concurrency
    baseline (``BENCH_service.json``, default 4-query batch) and the
    scale-out comparison (``bench_scaleout.py`` reuses the serial side
    with a bigger batch, more admission slots, and scaled-up latency).
    """
    queries = [
        named if hasattr(named, "text") else discover_query(universe, *named)
        for named in batch
    ]
    slots = max_concurrent if max_concurrent is not None else len(queries)

    async def serial():
        service = _service(universe, max_concurrent=1, latency_scale=latency_scale)
        start = time.perf_counter()
        for named in queries:
            await service.run(named.text, seeds=named.seeds)
        return time.perf_counter() - start

    async def concurrent():
        service = _service(
            universe, max_concurrent=slots, latency_scale=latency_scale
        )
        start = time.perf_counter()
        handles = [service.submit(n.text, seeds=n.seeds) for n in queries]
        await asyncio.gather(*(h.wait() for h in handles))
        return time.perf_counter() - start

    serial_wall = asyncio.run(serial())
    concurrent_wall = asyncio.run(concurrent())
    return {
        "serial_wall_s": round(serial_wall, 4),
        "concurrent_wall_s": round(concurrent_wall, 4),
        "concurrent_speedup": (
            round(serial_wall / concurrent_wall, 2) if concurrent_wall else 0.0
        ),
        "batch_size": len(queries),
        "max_concurrent": slots,
    }


def run_serial_batch(universe, queries, latency_scale: float = 1.0) -> tuple[float, list]:
    """One cold serial pass over ``queries``; returns (wall, results).

    The serial half of the scale-out comparison: a fresh single-slot
    in-process service, same latency model the shard workers use.
    """

    async def scenario():
        service = _service(universe, max_concurrent=1, latency_scale=latency_scale)
        results = []
        start = time.perf_counter()
        for named in queries:
            results.append(await service.run(named.text, seeds=named.seeds))
        return time.perf_counter() - start, results

    return asyncio.run(scenario())


def measure_service(universe) -> dict:
    return {**measure_cold_vs_warm(universe), **measure_concurrency(universe)}


def _report(metrics: dict) -> None:
    print_banner("QueryService — cold vs warm, serial vs concurrent")
    print(
        render_table(
            [
                {"run": "cold", "wall_s": metrics["cold_wall_s"],
                 "results": metrics["results"], "from_store": 0},
                {"run": "warm", "wall_s": metrics["warm_wall_s"],
                 "results": metrics["results"],
                 "from_store": metrics["warm_from_store"]},
            ]
        )
    )
    print(
        f"warm speedup: {metrics['warm_speedup']}x "
        f"(re-parses: {metrics['warm_reparses']}, "
        f"identical: {metrics['identical_results']})"
    )
    print(
        f"batch of {metrics['batch_size']}: serial {metrics['serial_wall_s']}s, "
        f"concurrent {metrics['concurrent_wall_s']}s "
        f"({metrics['concurrent_speedup']}x)"
    )


def test_service_warm_and_concurrent(universe):
    metrics = measure_service(universe)
    _report(metrics)

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
        print(f"wrote {BASELINE_PATH}")

    assert metrics["identical_results"]
    assert metrics["warm_reparses"] == 0
    assert metrics["warm_from_store"] == metrics["warm_fetched"]
    assert metrics["warm_speedup"] >= 2.0
    assert metrics["concurrent_speedup"] > 1.0
