"""E14 (paper §1): link traversal vs federated SPARQL.

    "While techniques have been introduced that enable the execution of
     SPARQL federated queries, they are optimized for handling a small
     number (~10) of large sources, whereas DKGs such as Solid are
     characterized by a large number (>1000) of small sources.
     Additionally, federated SPARQL query processing assumes sources to
     be known prior to query execution, which is not feasible in DKGs."

We give the federation baseline everything it needs — a SPARQL endpoint
per pod and the complete source list — and compare against LTQP on a
single-pod query.  Expected shape:

* both produce the complete answer;
* federation's request count scales with ``#patterns × #pods`` (every
  endpoint is probed), LTQP's with the *relevant* subweb only;
* doubling the universe grows federation's cost but not LTQP's.
"""

from __future__ import annotations

from conftest import BENCH_SEED, print_banner

from repro.bench import render_table, run_query
from repro.bench.harness import oracle_bindings
from repro.federation import FederatedQueryEngine, attach_pod_endpoints
from repro.net import NoLatency
from repro.solidbench import SolidBenchConfig, build_universe, discover_query


def compare_at_scale(scale: float):
    universe = build_universe(SolidBenchConfig(scale=scale, seed=BENCH_SEED))
    endpoints = attach_pod_endpoints(universe)
    query = discover_query(universe, 1, 1, person_index=3)

    federation = FederatedQueryEngine(universe.client(latency=NoLatency()), endpoints)
    fed_results, fed_stats = federation.execute_sync(query.text)

    ltqp = run_query(universe, query, check_oracle=True)
    expected = oracle_bindings(universe, query)

    return {
        "scale": scale,
        "pods": universe.person_count,
        "fed_requests": fed_stats.total_requests,
        "fed_probes": fed_stats.ask_probes,
        "ltqp_requests": ltqp.waterfall.request_count,
        "fed_complete": set(fed_results) == expected,
        "ltqp_complete": ltqp.complete,
    }


def test_federation_cost_scales_with_pods_ltqp_does_not(benchmark):
    rows = benchmark.pedantic(
        lambda: [compare_at_scale(0.01), compare_at_scale(0.02)], rounds=1, iterations=1
    )

    print_banner("E14 / §1 — federated SPARQL vs link traversal (Discover 1)")
    print(
        render_table(
            [
                {
                    "pods": row["pods"],
                    "federation_requests": row["fed_requests"],
                    "  (ask probes)": row["fed_probes"],
                    "ltqp_requests": row["ltqp_requests"],
                    "both_complete": "yes"
                    if row["fed_complete"] and row["ltqp_complete"]
                    else "NO",
                }
                for row in rows
            ]
        )
    )

    small, large = rows
    assert small["fed_complete"] and small["ltqp_complete"]
    assert large["fed_complete"] and large["ltqp_complete"]

    # Federation probes every endpoint; its cost grows with the universe.
    assert large["fed_probes"] > small["fed_probes"]
    assert large["fed_requests"] > small["fed_requests"] * 1.5

    # LTQP's cost tracks the single relevant pod, not the universe.
    assert abs(large["ltqp_requests"] - small["ltqp_requests"]) / small["ltqp_requests"] < 0.25

    # At the larger scale the traversal engine wins outright.
    assert large["ltqp_requests"] < large["fed_requests"]
