"""Warm-restart benchmark: a service reopening its store starts warm.

The persistence tier's claim (ROADMAP: persistent storage tier): a
service restarted against the same ``--store-path`` must answer a repeat
query from the reopened SQLite file —

* at least **2× faster** than the cold run that populated it,
* with **zero re-parses** (every document decodes from the stored
  term-table wire form) and **zero re-fetches** (every HTTP entry is
  still inside its freshness window, so not even a 304 revalidation
  goes out),
* with a **byte-identical result multiset**.

The "restart" builds a completely fresh :class:`SharedResources` over
the same store file — new backend connection, new HTTP client, empty
in-memory LRUs — which is exactly what a new process sees, minus the
interpreter startup that would only add noise to the comparison.

``REPRO_WRITE_BENCH=1 pytest benchmarks/bench_warmrestart.py`` rewrites
the committed baseline ``BENCH_warmrestart.json``;
``python benchmarks/check_hotpath_regression.py`` gates against it.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import time
from pathlib import Path

from conftest import print_banner

from repro.bench import render_table
from repro.net import SeededJitterLatency
from repro.service import QueryService, SharedResources
from repro.solidbench import discover_query

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_warmrestart.json"


def _run_once(universe, store_path: str, named) -> dict:
    """One service lifetime over ``store_path``: run the query, close."""
    resources = SharedResources.for_universe(
        universe, latency=SeededJitterLatency(seed=13), store_path=store_path
    )
    service = QueryService(resources)

    async def scenario():
        start = time.perf_counter()
        result = await service.run(named.text, seeds=named.seeds)
        return result, time.perf_counter() - start

    result, wall = asyncio.run(scenario())
    cache = resources.http_cache
    outcome = {
        "wall_s": round(wall, 4),
        "results": sorted(repr(timed.binding) for timed in result.results),
        "reparses": resources.document_store.parses,
        "refetches": cache.misses + cache.revalidations,
        "from_store": result.stats.documents_from_store,
        "fetched": result.stats.documents_fetched,
        "file_bytes": resources.storage.file_bytes(),
    }
    resources.close()  # flush + release: the next lifetime reopens warm
    return outcome


def measure_warm_restart(universe) -> dict:
    """Cold lifetime populates the store; a fresh lifetime reopens it."""
    named = discover_query(universe, 1, 5)
    with tempfile.TemporaryDirectory() as tmp:
        store_path = os.path.join(tmp, "service.sqlite")
        cold = _run_once(universe, store_path, named)
        warm = _run_once(universe, store_path, named)
    return {
        "cold_wall_s": cold["wall_s"],
        "warm_wall_s": warm["wall_s"],
        "warm_speedup": (
            round(cold["wall_s"] / warm["wall_s"], 2) if warm["wall_s"] else 0.0
        ),
        "warm_reparses": warm["reparses"],
        "warm_refetches": warm["refetches"],
        "warm_from_store": warm["from_store"],
        "warm_fetched": warm["fetched"],
        "identical_results": cold["results"] == warm["results"],
        "results": len(cold["results"]),
        "store_file_bytes": cold["file_bytes"],
    }


def _report(metrics: dict) -> None:
    print_banner("Warm restart — same store path, fresh process state")
    print(
        render_table(
            [
                {"run": "cold (populates store)", "wall_s": metrics["cold_wall_s"],
                 "reparses": "-", "refetches": "-"},
                {"run": "warm (reopens store)", "wall_s": metrics["warm_wall_s"],
                 "reparses": metrics["warm_reparses"],
                 "refetches": metrics["warm_refetches"]},
            ]
        )
    )
    print(
        f"restart speedup: {metrics['warm_speedup']}x over "
        f"{metrics['store_file_bytes']} stored bytes "
        f"(identical: {metrics['identical_results']})"
    )


def test_warm_restart(universe):
    metrics = measure_warm_restart(universe)
    _report(metrics)

    if os.environ.get("REPRO_WRITE_BENCH") == "1":
        BASELINE_PATH.write_text(json.dumps(metrics, indent=1) + "\n")
        print(f"wrote {BASELINE_PATH}")

    assert metrics["identical_results"]
    assert metrics["warm_reparses"] == 0
    assert metrics["warm_refetches"] == 0
    assert metrics["warm_from_store"] == metrics["warm_fetched"]
    assert metrics["warm_speedup"] >= 2.0
