"""Tracing-overhead benchmark: the observability layer must stay cheap.

Measures Discover 8.5 wall time in two modes over the same universe:

* **disabled** — ``tracer=None`` (the default): every instrumentation
  point is a single identity check, so this must track the committed
  pre-instrumentation wall time within 5%;
* **enabled** — a live :class:`~repro.obs.Tracer` plus
  :class:`~repro.obs.Metrics`, recording the full span tree (~10k spans
  for this query), gated in-process at 20% over the disabled run.

Rounds are interleaved (plain, traced, plain, ...) and the enabled
ratio is the *median of paired per-round ratios*: adjacent runs see the
same machine state, so per-pair ratios stay stable even when individual
walls swing on a contended host.  ``check_hotpath_regression`` runs both
gates against the committed ``BENCH_tracing.json``.

Refresh the baseline after an intentional change (via the gate script,
so it is measured at the same process position it is compared at)::

    REPRO_WRITE_BENCH=1 PYTHONPATH=src python benchmarks/check_hotpath_regression.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.ltqp import LinkTraversalEngine
from repro.net import NoLatency
from repro.obs import Metrics, Tracer
from repro.solidbench import discover_query

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_tracing.json"

#: Best-of rounds per mode (wall-clock minimum is the stable statistic;
#: 5 paired rounds keep the minima stable on noisy single-core hosts).
ROUNDS = 5


def _run_d85(universe, tracer=None, metrics=None):
    query = discover_query(universe, 8, 5)
    engine = LinkTraversalEngine(universe.client(latency=NoLatency()))
    start = time.perf_counter()
    execution = engine.query(
        query.text, seeds=query.seeds, tracer=tracer, metrics=metrics
    ).run_sync()
    return time.perf_counter() - start, execution


def measure_tracing_overhead(universe, rounds: int = ROUNDS) -> dict:
    """Interleaved Discover 8.5 walls: tracing disabled vs enabled.

    Rounds are interleaved (plain, traced, plain, ...) so both modes see
    the same process state drift (heap growth, GC pressure).  The
    enabled ratio is the median of per-pair ratios — each pair runs
    back-to-back, so contention noise hits both sides of the division —
    rather than a ratio of minima, which is skewed whenever one mode
    draws a single lucky round.
    """
    plain_walls, traced_walls = [], []
    plain_results = traced_results = 0
    span_count = 0
    for _ in range(rounds):
        wall, execution = _run_d85(universe)
        plain_walls.append(wall)
        plain_results = len(execution)
        tracer = Tracer()
        wall, execution = _run_d85(universe, tracer=tracer, metrics=Metrics())
        traced_walls.append(wall)
        traced_results = len(execution)
        span_count = len(tracer)
    assert plain_results == traced_results, "tracing must not change answers"
    pair_ratios = sorted(t / p for p, t in zip(plain_walls, traced_walls))
    return {
        "plain_wall_s": round(min(plain_walls), 3),
        "traced_wall_s": round(min(traced_walls), 3),
        "enabled_ratio": round(pair_ratios[len(pair_ratios) // 2], 3),
        "spans": span_count,
        "results": traced_results,
    }


# -- pytest benches ----------------------------------------------------------


def test_tracing_overhead(universe):
    overhead = measure_tracing_overhead(universe)
    print(f"\ntracing overhead: {overhead}")
    # In-process gate: a full span tree may cost at most 20% wall time.
    assert overhead["enabled_ratio"] < 1.2
