"""E8 (paper §2, and [14]): ablation of link extraction strategies.

The approach's key optimization is "link extraction strategies [that]
understand the structural properties of Solid pods, and use this to
optimize LTQP in terms of the number of links that need to be followed".
We compare extractor stacks on the same queries:

* ``solid-aware`` — the paper's default (cMatch + LDP + storage + type index)
* ``cmatch-only`` — Solid-agnostic reachability [19]
* ``call``        — follow *every* IRI (cAll)

Expected shape (who wins, by what): cAll follows the most links by a wide
margin; cMatch alone follows few links but *misses answers* (it cannot
discover pod structure); the Solid-aware stack reaches the complete
answer with far fewer links than cAll.
"""

from __future__ import annotations

from conftest import print_banner

from repro.bench import render_table, run_query
from repro.ltqp import (
    AllIriExtractor,
    LdpContainerExtractor,
    MatchIriExtractor,
    StorageExtractor,
    TypeIndexExtractor,
)
from repro.solidbench import discover_query

CONFIGS = {
    "solid-aware": lambda: [
        MatchIriExtractor(),
        LdpContainerExtractor(),
        StorageExtractor(),
        TypeIndexExtractor(),
    ],
    "cmatch-only": lambda: [MatchIriExtractor()],
    "call": lambda: [AllIriExtractor()],
}


def run_ablation(universe, query):
    rows = {}
    for name, factory in CONFIGS.items():
        report = run_query(universe, query, extractors=factory(), check_oracle=True)
        rows[name] = report
    return rows


def test_extractor_ablation_discover_1(benchmark, universe):
    query = discover_query(universe, 1, 5)
    rows = benchmark.pedantic(lambda: run_ablation(universe, query), rounds=1, iterations=1)

    print_banner(f"E8 — extractor ablation on {query.name}")
    print(
        render_table(
            [
                {
                    "config": name,
                    "results": report.result_count,
                    "oracle": report.oracle_count,
                    "complete": "yes" if report.complete else "NO",
                    "links": report.links_queued,
                    "documents": report.documents_fetched,
                }
                for name, report in rows.items()
            ]
        )
    )

    solid_aware, cmatch, call = rows["solid-aware"], rows["cmatch-only"], rows["call"]

    # The Solid-aware stack answers completely.
    assert solid_aware.complete is True
    # Blind cAll also answers completely but follows far more links.
    assert call.complete is True
    assert call.links_queued > solid_aware.links_queued
    # cMatch alone cannot discover pod structure → incomplete.
    assert cmatch.result_count < solid_aware.result_count


def test_extractor_ablation_discover_8(benchmark, universe):
    query = discover_query(universe, 8, 4)
    rows = benchmark.pedantic(lambda: run_ablation(universe, query), rounds=1, iterations=1)

    print_banner(f"E8 — extractor ablation on {query.name} (multi-pod)")
    print(
        render_table(
            [
                {
                    "config": name,
                    "results": report.result_count,
                    "complete": "yes" if report.complete else "NO",
                    "links": report.links_queued,
                    "documents": report.documents_fetched,
                }
                for name, report in rows.items()
            ]
        )
    )

    assert rows["solid-aware"].complete is True
    assert rows["call"].links_queued > rows["solid-aware"].links_queued


def test_type_index_reduces_documents_for_class_queries(benchmark, universe):
    """The type-index-scoped configuration (the pruning of [14]) answers
    class-constrained queries completely while skipping irrelevant subtrees
    (noise/, settings/, comments/ for a posts-only query)."""
    from repro.ltqp import ScopedLdpContainerExtractor

    query = discover_query(universe, 1, 5)

    def compare():
        type_index = TypeIndexExtractor()
        with_index = run_query(
            universe,
            query,
            extractors=[
                MatchIriExtractor(),
                StorageExtractor(),
                type_index,
                ScopedLdpContainerExtractor(type_index),
            ],
            check_oracle=True,
        )
        without_index = run_query(
            universe,
            query,
            extractors=[MatchIriExtractor(), StorageExtractor(), LdpContainerExtractor()],
            check_oracle=True,
        )
        return with_index, without_index

    with_index, without_index = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_banner("E8 — type-index-guided vs container-crawling traversal")
    print(
        render_table(
            [
                {"config": "type-index", "documents": with_index.documents_fetched,
                 "complete": "yes" if with_index.complete else "NO"},
                {"config": "ldp-crawl", "documents": without_index.documents_fetched,
                 "complete": "yes" if without_index.complete else "NO"},
            ]
        )
    )
    assert with_index.complete is True
    assert without_index.complete is True
    assert with_index.documents_fetched < without_index.documents_fetched
