"""Adversarial-hardening benchmark: benign runs stay cheap, hostile runs stay bounded.

Two claims, measured over the same universe (DESIGN.md §4e):

* **Benign overhead** — with the full hardening stack armed (per-origin
  budgets sized so they never fire, read/parse caps, fair queueing) a
  Discover 8.5 run must cost ≤10% over the unhardened engine, with an
  identical result multiset.  Rounds are interleaved (plain, hardened,
  plain, ...) and the ratio is the median of paired per-round ratios,
  so contention noise cancels.
* **Hostile containment** — lured into a hostile deployment (link trap,
  growing document, oversized document, poisoner — each on its own
  origin), the hardened engine's *induced work* is deterministically
  bounded: lure-only traversal fetches at least ``10×`` fewer documents
  than an unhardened engine saved only by its global document backstop.
  Induced work counts every fetch the lures cause — including benign
  documents the poisoner's fabricated links drag in, which hostile
  request counts alone would miss.  And a hardened run over benign
  seeds *plus* lures still produces exactly the adversary-free answer
  once restricted to benign pods.

``check_hotpath_regression`` gates both against ``BENCH_adversarial.json``.
Refresh the baseline after an intentional change (via the gate script,
so it is measured at the same process position it is compared at)::

    REPRO_WRITE_BENCH=1 PYTHONPATH=src python benchmarks/check_hotpath_regression.py
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.ltqp import EngineConfig, LinkTraversalEngine, TraversalPolicy
from repro.net import NoLatency
from repro.net.resilience import BreakerPolicy, NetworkPolicy, RetryPolicy
from repro.solidbench import discover_query
from repro.solidbench.adversary import (
    AdversaryPlan,
    deploy_adversary,
    restrict_to_benign,
)

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_adversarial.json"

#: Paired rounds for the benign-overhead wall measurement.
ROUNDS = 5

#: Hardening profile for the benign run: every mechanism armed, budgets
#: sized so a benign workload never trips them — this measures the cost
#: of the machinery (budget ledger, fair lanes, cap checks), not of
#: refusals.
BENIGN_HARDENED = dict(
    max_origin_derefs=1_000_000,
    max_origin_bytes=1 << 40,
    max_parse_bytes=16 << 20,
    queue_policy="fair",
)

#: Attack classes for the containment measurement (slow-trickle is
#: excluded: its cost is wall-clock, the rest are request-countable).
HOSTILE_KINDS = ("link-trap", "growing-doc", "oversized-doc", "poison")

#: Global document backstop that saves the unhardened engine.
UNHARDENED_BACKSTOP = 240

#: Per-origin budget for the hardened lure-only run.
HARDENED_ORIGIN_DEREFS = 4


def _no_retry_network(**kwargs) -> NetworkPolicy:
    kwargs.setdefault("retry", RetryPolicy.disabled())
    kwargs.setdefault("breaker", BreakerPolicy(failure_threshold=0))
    kwargs.setdefault("max_link_requeues", 0)
    return NetworkPolicy(**kwargs)


def _run(universe, query, config, seeds):
    engine = LinkTraversalEngine(universe.client(latency=NoLatency()), config=config)
    start = time.perf_counter()
    execution = engine.query(query.text, seeds=seeds).run_sync()
    return time.perf_counter() - start, execution


def measure_benign_overhead(universe, rounds: int = ROUNDS) -> dict:
    """Interleaved Discover 8.5 walls: hardening disarmed vs fully armed."""
    query = discover_query(universe, 8, 5)
    plain_walls, hardened_walls = [], []
    plain_bindings = hardened_bindings = None
    for _ in range(rounds):
        wall, execution = _run(universe, query, EngineConfig(), list(query.seeds))
        plain_walls.append(wall)
        plain_bindings = sorted(map(repr, execution.bindings))
        wall, execution = _run(
            universe,
            query,
            EngineConfig(traversal=TraversalPolicy(**BENIGN_HARDENED)),
            list(query.seeds),
        )
        hardened_walls.append(wall)
        hardened_bindings = sorted(map(repr, execution.bindings))
        assert execution.stats.documents_refused == 0, (
            "benign-sized budgets must never fire on the benign workload"
        )
    pair_ratios = sorted(h / p for p, h in zip(plain_walls, hardened_walls))
    return {
        "plain_wall_s": round(min(plain_walls), 3),
        "hardened_wall_s": round(min(hardened_walls), 3),
        "overhead_ratio": round(pair_ratios[len(pair_ratios) // 2], 3),
        "identical_results": plain_bindings == hardened_bindings,
        "results": len(plain_bindings or []),
    }


def measure_hostile_containment(universe) -> dict:
    """Deterministic attack-cost comparison plus benign-result identity.

    Request counts (answered by the hostile apps) are the cost measure —
    no wall clock, so the numbers replay exactly.
    """
    query = discover_query(universe, 1, 5)
    reference = sorted(
        map(
            repr,
            _run(
                universe,
                query,
                EngineConfig(network=_no_retry_network()),
                list(query.seeds),
            )[1].bindings,
        )
    )
    plan = AdversaryPlan(
        seed=11,
        kinds=HOSTILE_KINDS,
        origin_prefix="adv-bench",
        oversized_bytes=256 * 1024,
    )
    deployment = deploy_adversary(
        universe.internet, plan, targets=[universe.webid(query.person_index)]
    )
    try:
        # Lure-only: pure attack cost, no benign seeds — every fetch in
        # these runs (hostile or poison-induced benign) is induced work.
        _, unhardened = _run(
            universe,
            query,
            EngineConfig(
                network=_no_retry_network(), max_documents=UNHARDENED_BACKSTOP
            ),
            list(deployment.lures),
        )
        unhardened_induced = unhardened.stats.documents_fetched
        unhardened_requests = deployment.total_requests()
        _, hardened = _run(
            universe,
            query,
            EngineConfig(
                network=_no_retry_network(max_response_bytes=32 * 1024),
                traversal=TraversalPolicy(
                    max_origin_derefs=HARDENED_ORIGIN_DEREFS,
                    max_parse_bytes=32 * 1024,
                    queue_policy="fair",
                ),
            ),
            list(deployment.lures),
        )
        hardened_induced = hardened.stats.documents_fetched
        hardened_requests = deployment.total_requests() - unhardened_requests

        # Benign seeds + lures, hardened with budgets generous enough for
        # the benign origin: results restricted to benign pods must equal
        # the adversary-free run exactly.
        before = deployment.total_requests()
        _, execution = _run(
            universe,
            query,
            EngineConfig(
                network=_no_retry_network(max_response_bytes=256 * 1024),
                traversal=TraversalPolicy(
                    max_origin_derefs=512,
                    max_parse_bytes=256 * 1024,
                    queue_policy="fair",
                ),
            ),
            list(query.seeds) + list(deployment.lures),
        )
        combined_requests = deployment.total_requests() - before
        benign = sorted(map(repr, restrict_to_benign(execution.bindings)))
    finally:
        deployment.uninstall()
    return {
        "unhardened_induced": unhardened_induced,
        "hardened_induced": hardened_induced,
        "containment_ratio": round(unhardened_induced / max(1, hardened_induced), 2),
        "unhardened_requests": unhardened_requests,
        "hardened_requests": hardened_requests,
        "combined_requests": combined_requests,
        "combined_refused": execution.stats.documents_refused,
        "benign_identical": benign == reference,
        "benign_results": len(reference),
    }


def measure_adversarial(universe) -> dict:
    overhead = measure_benign_overhead(universe)
    containment = measure_hostile_containment(universe)
    return {**overhead, **containment}


# -- pytest benches ----------------------------------------------------------


def test_benign_overhead(universe):
    overhead = measure_benign_overhead(universe)
    if overhead["overhead_ratio"] >= 1.10:
        # Contention filter (same policy as the regression gates): a
        # transient spike is re-measured once; a real regression fails
        # both attempts.
        retry = measure_benign_overhead(universe)
        if retry["overhead_ratio"] < overhead["overhead_ratio"]:
            overhead = retry
    print(f"\nbenign hardening overhead: {overhead}")
    assert overhead["identical_results"]
    assert overhead["overhead_ratio"] < 1.10


def test_hostile_containment(universe):
    containment = measure_hostile_containment(universe)
    print(f"\nhostile containment: {containment}")
    assert containment["benign_identical"]
    assert containment["containment_ratio"] >= 10.0
